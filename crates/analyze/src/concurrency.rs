//! Interprocedural concurrency analysis: the lock-order graph (L009),
//! blocking-under-lock (L010), and atomic-ordering discipline (L011).
//!
//! Built on the function-granular index in [`crate::source`]: every `fn`
//! body is walked with an L005-style guard-liveness tracker (straight-line
//! scopes, `drop()`, condvar-consuming reassignment), but unlike L005 the
//! tracker knows *which lock* each guard came from and follows direct
//! calls through a per-crate call graph at bounded depth.
//!
//! Deliberate conservatisms (documented in DESIGN.md):
//! * Calls resolve only when unambiguous: free calls `name(…)` and
//!   `self.name(…)` method calls resolve to the unique fn of that bare
//!   name within the same crate; path-qualified calls (`Type::f`,
//!   `module::f`) and non-`self` method calls do not resolve. A lint this
//!   deep in CI must under-approximate, never guess.
//! * Guard births are recognized on single-ident `let` bindings and
//!   reassignments, matching the repo's `unwrap_or_else(|e| e.into_inner())`
//!   idiom; chained temporaries (`rx.lock()….recv()`) hold their guard for
//!   one expression and are intentionally out of scope.
//! * Call depth is bounded by [`MAX_CALL_DEPTH`] fn hops.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, Token};
use crate::lints::Diagnostic;
use crate::source::{FnItem, SourceFile};

/// How many fn hops the interprocedural summaries follow. Depth 1 is the
/// callee's own body; 3 covers every real chain in this workspace while
/// keeping the analysis obviously terminating.
pub const MAX_CALL_DEPTH: usize = 3;

/// Blocking operations flagged *directly* under a live guard by L010.
/// `.lock(`/`.recv(`/condvar waits are deliberately absent here: direct
/// occurrences of those are L005's domain (with its consuming-wait and
/// through-guard exemptions); L010 adds the I/O-and-sleep family plus the
/// interprocedural view.
const DIRECT_BLOCKING: &[&str] = &[
    "sync_all",
    "sync_data",
    "sleep",
    "read_exact",
    "write_all",
    "flush",
];

/// Blocking operations that count toward a callee's *transitive* summary:
/// the direct set plus channel reads and condvar waits — a callee that
/// parks on any of these stalls the caller's held guard no matter how
/// sanctioned the wait is locally.
const TRANSITIVE_BLOCKING: &[&str] = &[
    "sync_all",
    "sync_data",
    "sleep",
    "read_exact",
    "write_all",
    "flush",
    "recv",
    "recv_timeout",
    "wait",
    "wait_timeout",
    "wait_while",
];

/// Idents that look like calls but are control flow or bindings.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "move", "unsafe", "let", "else", "in", "as",
    "fn", "impl", "break", "continue", "where", "drop",
];

// ----------------------------------------------------------------- model

/// One fn in the workspace model.
struct FnRef<'a> {
    file: &'a SourceFile,
    item: &'a FnItem,
}

impl FnRef<'_> {
    /// Stable memo key.
    fn key(&self) -> String {
        format!("{}#{}", self.file.path, self.item.decl)
    }
}

/// The per-workspace (really per-scope-slice) analysis model: the call
/// graph index plus the set of known lock-field names.
pub struct Model<'a> {
    /// crate prefix (`crates/serve`) → bare fn name → candidate fns.
    fns: BTreeMap<String, BTreeMap<String, Vec<FnRef<'a>>>>,
    /// Field/static names declared as `name: Mutex<…>` / `name: RwLock<…>`.
    lock_names: BTreeSet<String>,
}

/// The crate prefix of a workspace-relative path: its first two segments
/// (`crates/serve/src/wal.rs` → `crates/serve`).
fn crate_of(path: &str) -> String {
    path.split('/').take(2).collect::<Vec<_>>().join("/")
}

impl<'a> Model<'a> {
    /// Indexes every non-test fn and every declared lock field.
    pub fn build(files: &[&'a SourceFile]) -> Model<'a> {
        let mut fns: BTreeMap<String, BTreeMap<String, Vec<FnRef<'a>>>> = BTreeMap::new();
        let mut lock_names = BTreeSet::new();
        for file in files {
            let krate = crate_of(&file.path);
            for item in &file.fns {
                if file.in_test_code(item.decl) {
                    continue;
                }
                fns.entry(krate.clone())
                    .or_default()
                    .entry(item.name.clone())
                    .or_default()
                    .push(FnRef { file, item });
            }
            // Lock-field discovery: `name: Mutex<…>` / `name: RwLock<…>`
            // (struct fields, statics, and fn params alike).
            let ts = &file.tokens;
            for i in 0..ts.len() {
                if file.in_test_code(i) {
                    continue;
                }
                let Tok::Ident(name) = &ts[i].tok else {
                    continue;
                };
                // A single `:` (not `::`) after the name — a declaration,
                // not a path segment.
                if !ts.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
                    || ts.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
                {
                    continue;
                }
                let declares_lock = (i + 2..(i + 10).min(ts.len().saturating_sub(1))).any(|j| {
                    (ts[j].tok.is_ident("Mutex") || ts[j].tok.is_ident("RwLock"))
                        && ts[j + 1].tok.is_punct('<')
                });
                if declares_lock {
                    lock_names.insert(name.clone());
                }
            }
        }
        Model { fns, lock_names }
    }

    /// Resolves a bare call name within `krate` — only when exactly one fn
    /// carries that name (ambiguity means no resolution, by design).
    fn resolve(&self, krate: &str, name: &str) -> Option<&FnRef<'a>> {
        match self.fns.get(krate).and_then(|m| m.get(name)) {
            Some(v) if v.len() == 1 => v.first(),
            _ => None,
        }
    }

    /// Whether `item`'s return type names a guard type (`MutexGuard`,
    /// `RwLockReadGuard`, any `…Guard`).
    fn returns_guard(f: &FnRef<'_>) -> bool {
        let (s, e) = f.item.ret;
        f.file.tokens[s..e]
            .iter()
            .any(|t| matches!(&t.tok, Tok::Ident(n) if n.ends_with("Guard")))
    }

    /// The lock a guard-returning fn hands out: its body's first direct
    /// acquisition, falling back to the fn's own name.
    fn guard_fn_lock(&self, f: &FnRef<'_>) -> String {
        direct_acquisitions(self, f)
            .into_iter()
            .next()
            .map(|(lock, _)| lock)
            .unwrap_or_else(|| f.item.name.clone())
    }
}

// ------------------------------------------------- token-level detectors

/// The nearest ident before token `i`, scanning back a few tokens — the
/// receiver name of a method call (`self.shared.state.lock()` → `state`).
fn receiver_ident(ts: &[Token], i: usize) -> Option<String> {
    for k in (i.saturating_sub(1)..i).rev() {
        if let Tok::Ident(n) = &ts[k].tok {
            return Some(n.clone());
        }
    }
    None
}

/// A direct lock acquisition at token `i`: `.lock(` on anything, or
/// `.read(`/`.write(` whose receiver is a known lock name or a fn whose
/// return type names a lock (`cell().read()`). Returns the lock name and
/// the site token (the method ident).
fn direct_acquire_at(model: &Model<'_>, file: &SourceFile, i: usize) -> Option<(String, usize)> {
    let ts = &file.tokens;
    if !ts[i].tok.is_punct('.') {
        return None;
    }
    let (Some(name_t), Some(paren)) = (ts.get(i + 1), ts.get(i + 2)) else {
        return None;
    };
    if !paren.tok.is_punct('(') {
        return None;
    }
    let Tok::Ident(method) = &name_t.tok else {
        return None;
    };
    let krate = crate_of(&file.path);
    match method.as_str() {
        "lock" => {
            let recv = receiver_ident(ts, i).unwrap_or_else(|| "<anon>".into());
            Some((recv, i + 1))
        }
        "read" | "write" => {
            let recv = receiver_ident(ts, i)?;
            let is_lock = model.lock_names.contains(&recv)
                || model.resolve(&krate, &recv).is_some_and(|f| {
                    let (s, e) = f.item.ret;
                    f.file.tokens[s..e]
                        .iter()
                        .any(|t| t.tok.is_ident("RwLock") || t.tok.is_ident("Mutex"))
                });
            is_lock.then(|| (recv, i + 1))
        }
        _ => None,
    }
}

/// A directly-blocking operation at token `i`: `.op(` for the
/// [`DIRECT_BLOCKING`] family, or path-called `::sleep(`.
fn direct_blocking_at(file: &SourceFile, i: usize) -> Option<(&'static str, usize)> {
    let ts = &file.tokens;
    if ts[i].tok.is_punct('.') {
        if let (Some(Tok::Ident(m)), Some(true)) = (
            ts.get(i + 1).map(|t| &t.tok),
            ts.get(i + 2).map(|t| t.tok.is_punct('(')),
        ) {
            if let Some(op) = DIRECT_BLOCKING.iter().find(|&&o| o == m) {
                return Some((op, i + 1));
            }
        }
        return None;
    }
    // `thread::sleep(…)` / `std::thread::sleep(…)`.
    if ts[i].tok.is_ident("sleep")
        && ts.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
        && i > 0
        && ts[i - 1].tok.is_punct(':')
    {
        return Some(("sleep", i));
    }
    None
}

/// A resolvable call at token `i`: a free call `name(…)` (not
/// path-qualified, not a macro, not a definition) or a `self.name(…)`
/// method call. Returns the callee name and the site token index.
fn call_at(ts: &[Token], i: usize) -> Option<(String, usize)> {
    let Tok::Ident(name) = &ts[i].tok else {
        return None;
    };
    if !ts.get(i + 1).is_some_and(|t| t.tok.is_punct('(')) {
        return None;
    }
    if CALL_KEYWORDS.contains(&name.as_str()) {
        return None;
    }
    let prev = i.checked_sub(1).map(|k| &ts[k].tok);
    match prev {
        // `self.name(`: resolvable method call.
        Some(t) if t.is_punct('.') => {
            let self_recv = i >= 2 && ts[i - 2].tok.is_ident("self");
            self_recv.then(|| (name.clone(), i))
        }
        // Path-qualified (`mod::f`, `Type::f`) or a definition — skip.
        Some(t) if t.is_punct(':') || t.is_ident("fn") => None,
        _ => Some((name.clone(), i)),
    }
}

// ----------------------------------------------- interprocedural summaries

/// Every direct lock acquisition in `f`'s body (non-test tokens).
fn direct_acquisitions(model: &Model<'_>, f: &FnRef<'_>) -> Vec<(String, usize)> {
    let (s, e) = f.item.body;
    let mut out = Vec::new();
    for i in s..e.min(f.file.tokens.len()) {
        if f.file.in_test_code(i) {
            continue;
        }
        if let Some(a) = direct_acquire_at(model, f.file, i) {
            out.push(a);
        }
    }
    out
}

/// The set of locks `f` may acquire within `depth` fn hops.
fn transitive_locks(
    model: &Model<'_>,
    f: &FnRef<'_>,
    depth: usize,
    visiting: &mut BTreeSet<String>,
) -> BTreeSet<String> {
    let mut locks = BTreeSet::new();
    if depth == 0 || !visiting.insert(f.key()) {
        return locks;
    }
    locks.extend(direct_acquisitions(model, f).into_iter().map(|(l, _)| l));
    let krate = crate_of(&f.file.path);
    let (s, e) = f.item.body;
    for i in s..e.min(f.file.tokens.len()) {
        if f.file.in_test_code(i) {
            continue;
        }
        if let Some((callee, _)) = call_at(&f.file.tokens, i) {
            if let Some(g) = model.resolve(&krate, &callee) {
                locks.extend(transitive_locks(model, g, depth - 1, visiting));
            }
        }
    }
    visiting.remove(&f.key());
    locks
}

/// The first blocking operation reachable from `f` within `depth` fn hops:
/// `(op, call-chain)` where the chain starts at `f`'s own name.
fn transitive_blocking(
    model: &Model<'_>,
    f: &FnRef<'_>,
    depth: usize,
    visiting: &mut BTreeSet<String>,
) -> Option<(String, String)> {
    if depth == 0 || !visiting.insert(f.key()) {
        return None;
    }
    let ts = &f.file.tokens;
    let (s, e) = f.item.body;
    let mut found = None;
    for i in s..e.min(ts.len()) {
        if f.file.in_test_code(i) {
            continue;
        }
        // Own blocking op (both `.op(` and `::sleep(` forms, plus the
        // transitive-only channel/condvar family in method form).
        let own = if ts[i].tok.is_punct('.') {
            match (ts.get(i + 1).map(|t| &t.tok), ts.get(i + 2)) {
                (Some(Tok::Ident(m)), Some(p)) if p.tok.is_punct('(') => {
                    TRANSITIVE_BLOCKING.iter().find(|&&o| o == m).copied()
                }
                _ => None,
            }
        } else {
            direct_blocking_at(f.file, i).map(|(op, _)| op)
        };
        if let Some(op) = own {
            found = Some((op.to_string(), f.item.name.clone()));
            break;
        }
        if let Some((callee, _)) = call_at(ts, i) {
            let krate = crate_of(&f.file.path);
            if let Some(g) = model.resolve(&krate, &callee) {
                if let Some((op, chain)) = transitive_blocking(model, g, depth - 1, visiting) {
                    found = Some((op, format!("{} → {}", f.item.name, chain)));
                    break;
                }
            }
        }
    }
    visiting.remove(&f.key());
    found
}

// -------------------------------------------------- guard-liveness walk

/// One acquisition-order edge: while a guard of `held` was live, `acquired`
/// was (or may be, via `via`) acquired at `site`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Edge {
    /// Lock whose guard was live.
    pub held: String,
    /// Lock acquired under it.
    pub acquired: String,
    /// File the site is in.
    pub path: String,
    /// Site position.
    pub line: u32,
    /// Site position.
    pub col: u32,
    /// `None` for a direct acquisition; `Some(callee)` when the edge comes
    /// from a call whose transitive lock set contains `acquired`.
    pub via: Option<String>,
}

/// Everything one fn-body walk finds.
#[derive(Default)]
struct BodyFindings {
    edges: Vec<Edge>,
    /// (op, chain-if-interprocedural, held guard var, held lock, site idx)
    blocking: Vec<(String, Option<String>, String, String, usize)>,
    /// All direct acquisitions, guard-held or not — the graph's node set.
    acquired: Vec<String>,
}

/// Walks one fn body tracking guard liveness, recording lock-order edges
/// and blocking-under-guard events.
fn scan_body(model: &Model<'_>, f: &FnRef<'_>) -> BodyFindings {
    #[derive(Debug)]
    struct Guard {
        var: String,
        lock: String,
        depth: i32,
        live: bool,
    }
    let ts = &f.file.tokens;
    let file = f.file;
    let krate = crate_of(&file.path);
    let (body_start, body_end) = f.item.body;
    let body_end = body_end.min(ts.len());
    let mut out = BodyFindings::default();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = body_start;

    let stmt_end = |start: usize| -> usize {
        let mut j = start;
        let mut d = 0i32;
        while j < body_end {
            match &ts[j].tok {
                t if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') => d += 1,
                t if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') => d -= 1,
                t if t.is_punct(';') && d <= 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        body_end
    };

    // What a binding's RHS acquires: a direct acquisition, or a call to a
    // guard-returning fn.
    let rhs_lock = |from: usize, to: usize| -> Option<String> {
        for k in from..to {
            if let Some((lock, _)) = direct_acquire_at(model, file, k) {
                return Some(lock);
            }
            if let Some((callee, _)) = call_at(ts, k) {
                if let Some(g) = model.resolve(&krate, &callee) {
                    if Model::returns_guard(g) {
                        return Some(model.guard_fn_lock(g));
                    }
                }
            }
        }
        None
    };

    // Records events in [from, to) against the guards live right now
    // (minus the binding target, for binding statements).
    #[allow(clippy::too_many_arguments)]
    fn events(
        model: &Model<'_>,
        file: &SourceFile,
        krate: &str,
        from: usize,
        to: usize,
        guards: &[Guard],
        binding_of: Option<&str>,
        out: &mut BodyFindings,
    ) {
        let ts = &file.tokens;
        let live: Vec<&Guard> = guards
            .iter()
            .filter(|g| g.live && Some(g.var.as_str()) != binding_of)
            .collect();
        for k in from..to {
            if file.in_test_code(k) {
                continue;
            }
            if let Some((lock, site)) = direct_acquire_at(model, file, k) {
                out.acquired.push(lock.clone());
                for g in &live {
                    out.edges.push(Edge {
                        held: g.lock.clone(),
                        acquired: lock.clone(),
                        path: file.path.clone(),
                        line: ts[site].line,
                        col: ts[site].col,
                        via: None,
                    });
                }
                continue;
            }
            if live.is_empty() {
                continue;
            }
            if let Some((op, site)) = direct_blocking_at(file, k) {
                if let Some(g) = live.first() {
                    out.blocking
                        .push((op.to_string(), None, g.var.clone(), g.lock.clone(), site));
                }
                continue;
            }
            if let Some((callee, site)) = call_at(ts, k) {
                if let Some(g_fn) = model.resolve(krate, &callee) {
                    let locks = transitive_locks(model, g_fn, MAX_CALL_DEPTH, &mut BTreeSet::new());
                    for lock in &locks {
                        for g in &live {
                            out.edges.push(Edge {
                                held: g.lock.clone(),
                                acquired: lock.clone(),
                                path: file.path.clone(),
                                line: ts[site].line,
                                col: ts[site].col,
                                via: Some(callee.clone()),
                            });
                        }
                    }
                    if let Some((op, chain)) =
                        transitive_blocking(model, g_fn, MAX_CALL_DEPTH, &mut BTreeSet::new())
                    {
                        // A call whose only blocking step is acquiring a
                        // lock is L009's business; only report real waits.
                        if let Some(g) = live.first() {
                            out.blocking.push((
                                op,
                                Some(chain),
                                g.var.clone(),
                                g.lock.clone(),
                                site,
                            ));
                        }
                    }
                }
            }
        }
    }

    while i < body_end {
        if file.in_test_code(i) {
            i += 1;
            continue;
        }
        match &ts[i].tok {
            t if t.is_punct('{') => {
                depth += 1;
                i += 1;
                continue;
            }
            t if t.is_punct('}') => {
                depth -= 1;
                for g in &mut guards {
                    if g.live && depth < g.depth {
                        g.live = false;
                    }
                }
                i += 1;
                continue;
            }
            _ => {}
        }

        // `drop(name)` kills a guard.
        let is_drop = ts[i].tok.is_ident("drop")
            && ts.get(i + 1).is_some_and(|t| t.tok.is_punct('('))
            && matches!(ts.get(i + 2).map(|t| &t.tok), Some(Tok::Ident(_)))
            && ts.get(i + 3).is_some_and(|t| t.tok.is_punct(')'));
        if is_drop {
            if let Tok::Ident(name) = &ts[i + 2].tok {
                for g in &mut guards {
                    if g.live && g.var == *name {
                        g.live = false;
                    }
                }
            }
            i += 4;
            continue;
        }

        // Guard-relevant bindings: `let [mut] NAME = …;` or `NAME = …;`
        // reassignment of a known guard variable.
        let binding = if ts[i].tok.is_ident("let") {
            let mut j = i + 1;
            if ts.get(j).is_some_and(|t| t.tok.is_ident("mut")) {
                j += 1;
            }
            match (ts.get(j).map(|t| &t.tok), ts.get(j + 1).map(|t| &t.tok)) {
                (Some(Tok::Ident(name)), Some(t))
                    if t.is_punct('=') && !ts.get(j + 2).is_some_and(|n| n.tok.is_punct('=')) =>
                {
                    Some((name.clone(), i))
                }
                _ => None,
            }
        } else if let Tok::Ident(name) = &ts[i].tok {
            let reassign = ts.get(i + 1).is_some_and(|t| t.tok.is_punct('='))
                && !ts.get(i + 2).is_some_and(|t| t.tok.is_punct('='))
                && guards.iter().any(|g| g.var == *name);
            if reassign {
                Some((name.clone(), i))
            } else {
                None
            }
        } else {
            None
        };

        if let Some((name, start)) = binding {
            let end = stmt_end(start);
            events(
                model,
                file,
                &krate,
                start,
                end,
                &guards,
                Some(&name),
                &mut out,
            );
            if let Some(lock) = rhs_lock(start, end) {
                if let Some(g) = guards.iter_mut().find(|g| g.var == name) {
                    g.live = true;
                    g.lock = lock;
                } else {
                    guards.push(Guard {
                        var: name,
                        lock,
                        depth,
                        live: true,
                    });
                }
            }
            // A consuming condvar reassignment (`st = cv.wait(st)…`) keeps
            // the guard live; any other RHS leaves its state unchanged,
            // matching L005.
            for t in &ts[start..end] {
                if t.tok.is_punct('{') {
                    depth += 1;
                } else if t.tok.is_punct('}') {
                    depth -= 1;
                }
            }
            i = end;
            continue;
        }

        events(model, file, &krate, i, i + 1, &guards, None, &mut out);
        i += 1;
    }
    out
}

// --------------------------------------------------------------- the lints

/// Collects findings over every fn of every in-scope file.
fn scan_all(files: &[&SourceFile]) -> (Vec<Edge>, Vec<Diagnostic>, BTreeSet<String>) {
    let model = Model::build(files);
    let mut edges = Vec::new();
    let mut blocking = Vec::new();
    let mut nodes = BTreeSet::new();
    for file in files {
        for item in &file.fns {
            if file.in_test_code(item.decl) {
                continue;
            }
            let f = FnRef { file, item };
            let found = scan_body(&model, &f);
            nodes.extend(found.acquired);
            edges.extend(found.edges);
            for (op, chain, var, lock, site) in found.blocking {
                let t = &file.tokens[site];
                let message = match chain {
                    None => format!(
                        "blocking `{op}` while guard `{var}` of lock `{lock}` is live — \
                         blocking I/O or sleeps under a lock stall every waiter; drop the \
                         guard first or hoist the blocking work out"
                    ),
                    Some(chain) => format!(
                        "call reaches blocking `{op}` (path: {chain}) while guard `{var}` of \
                         lock `{lock}` is live — drop the guard before the call or hoist \
                         the blocking work out"
                    ),
                };
                blocking.push(Diagnostic::new("L010", file, t, message));
            }
        }
    }
    (edges, blocking, nodes)
}

/// L009 lock-order: build the cross-file lock-acquisition graph and report
/// every edge that participates in a cycle (including self-edges — a
/// re-acquired non-reentrant `Mutex` is a self-deadlock).
pub fn l009_lock_order(files: &[&SourceFile], out: &mut Vec<Diagnostic>) {
    let (edges, _, _) = scan_all(files);
    let adj = adjacency(&edges);
    let mut seen = BTreeSet::new();
    for e in &edges {
        if !reaches(&adj, &e.acquired, &e.held) {
            continue;
        }
        if !seen.insert((
            e.held.clone(),
            e.acquired.clone(),
            e.line,
            e.col,
            e.path.clone(),
        )) {
            continue;
        }
        let via = match &e.via {
            Some(callee) => format!(" (via call to `{callee}`)"),
            None => String::new(),
        };
        let message = if e.held == e.acquired {
            format!(
                "lock-order cycle: re-acquiring `{}`{via} while already holding it — \
                 a non-reentrant Mutex self-deadlocks; drop the guard first",
                e.held
            )
        } else {
            format!(
                "lock-order cycle: acquiring `{}` while holding `{}`{via}, and another \
                 path acquires them in the opposite order — two threads interleaving \
                 those paths deadlock; acquire locks in one global order",
                e.acquired, e.held
            )
        };
        // Synthesize the diagnostic from the edge site directly: the edge
        // already carries exact position.
        out.push(Diagnostic {
            lint: "L009".into(),
            path: e.path.clone(),
            line: e.line,
            col: e.col,
            message,
        });
    }
}

/// L010 blocking-under-lock: `sync_all`/`sleep`/socket-write family (and,
/// interprocedurally, channel reads and condvar waits) reachable while a
/// guard is live.
pub fn l010_blocking_under_lock(files: &[&SourceFile], out: &mut Vec<Diagnostic>) {
    let (_, blocking, _) = scan_all(files);
    out.extend(blocking);
}

/// L011 atomic-ordering: `Ordering::Relaxed` outside the telemetry plane.
/// The one structural exemption: statements mentioning `metrics` — counter
/// updates on the `Metrics` struct are monotonic telemetry whose staleness
/// is harmless by design (DESIGN.md). Everything else needs a written
/// `logcl-allow(L011)` justification or a stronger ordering.
pub fn l011_atomic_ordering(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    for i in 0..ts.len() {
        if file.in_test_code(i) || file.in_use_statement(i) {
            continue;
        }
        let relaxed = ts[i].tok.is_ident("Ordering")
            && ts.get(i + 1).is_some_and(|t| t.tok.is_punct(':'))
            && ts.get(i + 2).is_some_and(|t| t.tok.is_punct(':'))
            && ts.get(i + 3).is_some_and(|t| t.tok.is_ident("Relaxed"));
        if !relaxed {
            continue;
        }
        // Statement span: back to the nearest `;`/`{`/`}`, forward to the
        // nearest `;` (bounded). Good enough to spot a `metrics` mention.
        let back = (0..i)
            .rev()
            .take(48)
            .find(|&k| {
                ts[k].tok.is_punct(';') || ts[k].tok.is_punct('{') || ts[k].tok.is_punct('}')
            })
            .map(|k| k + 1)
            .unwrap_or_else(|| i.saturating_sub(48));
        let fwd = (i..ts.len())
            .take(48)
            .find(|&k| ts[k].tok.is_punct(';'))
            .unwrap_or((i + 48).min(ts.len() - 1));
        let telemetry = ts[back..=fwd].iter().any(|t| t.tok.is_ident("metrics"));
        if telemetry {
            continue;
        }
        out.push(Diagnostic::new(
            "L011",
            file,
            &ts[i + 3],
            "`Ordering::Relaxed` on an atomic outside the telemetry plane — cross-thread \
             signalling needs Acquire/Release (or stronger) to order the data it publishes; \
             if this site is genuinely order-free, justify it with `// logcl-allow(L011): why`"
                .into(),
        ));
    }
}

// ------------------------------------------------------------------ graph

fn adjacency(edges: &[Edge]) -> BTreeMap<&str, BTreeSet<&str>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.held.as_str())
            .or_default()
            .insert(e.acquired.as_str());
    }
    adj
}

/// Whether `to` is reachable from `from` over the edge set (trivially true
/// when `from == to` *and* a self-edge or cycle brings it back).
fn reaches(adj: &BTreeMap<&str, BTreeSet<&str>>, from: &str, to: &str) -> bool {
    let mut stack = vec![from];
    let mut seen = BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = adj.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Renders the lock-acquisition graph as GraphViz DOT. Cycle-participating
/// edges are highlighted; every edge carries its site as a label.
pub fn lock_graph_dot(files: &[&SourceFile]) -> String {
    let (edges, _, nodes) = scan_all(files);
    let adj = adjacency(&edges);
    let mut all_nodes: BTreeSet<&str> = nodes.iter().map(String::as_str).collect();
    for e in &edges {
        all_nodes.insert(&e.held);
        all_nodes.insert(&e.acquired);
    }
    let mut uniq: BTreeSet<(String, String, String)> = BTreeSet::new();
    for e in &edges {
        let file = e.path.rsplit('/').next().unwrap_or(&e.path);
        let label = match &e.via {
            Some(callee) => format!("{}:{} via {}", file, e.line, callee),
            None => format!("{}:{}", file, e.line),
        };
        uniq.insert((e.held.clone(), e.acquired.clone(), label));
    }
    let mut out = String::from("digraph lock_order {\n  rankdir=LR;\n");
    for n in &all_nodes {
        out.push_str(&format!("  \"{n}\";\n"));
    }
    for (held, acquired, label) in &uniq {
        let in_cycle = reaches(&adj, acquired.as_str(), held.as_str());
        let attrs = if in_cycle {
            format!("label=\"{label}\", color=red, penwidth=2")
        } else {
            format!("label=\"{label}\"")
        };
        out.push_str(&format!("  \"{held}\" -> \"{acquired}\" [{attrs}];\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, src)
    }

    fn run_ws(
        lint: fn(&[&SourceFile], &mut Vec<Diagnostic>),
        files: &[&SourceFile],
    ) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        lint(files, &mut out);
        out
    }

    #[test]
    fn call_graph_resolves_unique_names_within_a_crate() {
        let a = parse(
            "crates/serve/src/a.rs",
            "fn caller() { helper(); }\nfn local() {}\n",
        );
        let b = parse(
            "crates/serve/src/b.rs",
            "pub fn helper() { std::thread::sleep(d); }\n",
        );
        let other = parse(
            "crates/tensor/src/kernels/c.rs",
            "pub fn helper() {}\n", // same name, different crate: no clash
        );
        let files = [&a, &b, &other];
        let model = Model::build(&files);
        assert!(model.resolve("crates/serve", "helper").is_some());
        assert!(model.resolve("crates/serve", "missing").is_none());
        let resolved = model.resolve("crates/serve", "helper").unwrap();
        assert_eq!(resolved.file.path, "crates/serve/src/b.rs");
        // Cross-file blocking summary flows through the resolution.
        let blocked = transitive_blocking(&model, resolved, MAX_CALL_DEPTH, &mut BTreeSet::new());
        assert_eq!(blocked, Some(("sleep".into(), "helper".into())));
    }

    #[test]
    fn ambiguous_names_do_not_resolve() {
        let a = parse("crates/serve/src/a.rs", "fn helper() {}\n");
        let b = parse("crates/serve/src/b.rs", "fn helper() {}\n");
        let model = Model::build(&[&a, &b]);
        assert!(model.resolve("crates/serve", "helper").is_none());
    }

    #[test]
    fn guard_liveness_drop_and_scope_exit() {
        // After drop(g) and after the inner scope closes, no guard is live,
        // so the sleeps are clean; the one under the live guard fires.
        let f = parse(
            "crates/serve/src/x.rs",
            "fn f(m: &std::sync::Mutex<u8>) {\n\
               let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
               std::thread::sleep(d);\n\
               drop(g);\n\
               std::thread::sleep(d);\n\
               { let h = m.lock().unwrap_or_else(|e| e.into_inner()); touch(&h); }\n\
               std::thread::sleep(d);\n\
             }\n",
        );
        let d = run_ws(l010_blocking_under_lock, &[&f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].line, 3);
    }

    #[test]
    fn guard_returning_fn_births_a_guard_interprocedurally() {
        let src = "\
struct P { state: std::sync::Mutex<u8> }
fn lock_state(p: &P) -> std::sync::MutexGuard<'_, u8> {
    p.state.lock().unwrap_or_else(|e| e.into_inner())
}
fn f(p: &P) {
    let st = lock_state(p);
    std::thread::sleep(d);
}
";
        let f = parse("crates/serve/src/x.rs", src);
        let d = run_ws(l010_blocking_under_lock, &[&f]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`state`"), "{}", d[0].message);
    }

    #[test]
    fn l010_respects_the_call_depth_bound() {
        let within = "\
fn f(m: &std::sync::Mutex<u8>) { let g = m.lock().unwrap_or_else(|e| e.into_inner()); a(); }
fn a() { b(); }
fn b() { c(); }
fn c() { x.sync_all(); }
";
        let beyond = "\
fn f(m: &std::sync::Mutex<u8>) { let g = m.lock().unwrap_or_else(|e| e.into_inner()); a(); }
fn a() { b(); }
fn b() { c(); }
fn c() { d(); }
fn d() { x.sync_all(); }
";
        // a → b → c is 3 hops: found. a → b → c → d is 4: out of budget.
        let f1 = parse("crates/serve/src/x.rs", within);
        assert_eq!(run_ws(l010_blocking_under_lock, &[&f1]).len(), 1);
        let f2 = parse("crates/serve/src/x.rs", beyond);
        assert!(run_ws(l010_blocking_under_lock, &[&f2]).is_empty());
    }

    #[test]
    fn l009_reports_cycles_but_not_one_way_orders() {
        let forward = parse(
            "crates/serve/src/fwd.rs",
            "struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }\n\
             impl S { fn fwd(&self) {\n\
               let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
               let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n\
             } }\n",
        );
        assert!(
            run_ws(l009_lock_order, &[&forward]).is_empty(),
            "a→b alone is a valid global order"
        );
        let backward = parse(
            "crates/serve/src/bwd.rs",
            "impl T { fn bwd(&self) {\n\
               let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n\
               let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
             } }\n",
        );
        let d = run_ws(l009_lock_order, &[&forward, &backward]);
        assert_eq!(d.len(), 2, "both edges of the a/b cycle fire: {d:?}");
        assert!(d.iter().any(|d| d.path.ends_with("fwd.rs")));
        assert!(d.iter().any(|d| d.path.ends_with("bwd.rs")));
    }

    #[test]
    fn l009_cross_file_cycle_through_a_call() {
        let lib = parse(
            "crates/serve/src/lib_part.rs",
            "struct S { a: std::sync::Mutex<u8>, b: std::sync::Mutex<u8> }\n\
             fn take_b_then_a(s: &S) {\n\
               let gb = s.b.lock().unwrap_or_else(|e| e.into_inner());\n\
               let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());\n\
             }\n",
        );
        let caller = parse(
            "crates/serve/src/caller.rs",
            "fn entry(s: &S) {\n\
               let ga = s.a.lock().unwrap_or_else(|e| e.into_inner());\n\
               take_b_then_a(s);\n\
             }\n",
        );
        let d = run_ws(l009_lock_order, &[&lib, &caller]);
        assert!(!d.is_empty(), "interprocedural a→b vs b→a cycle");
        assert!(
            d.iter()
                .any(|d| d.message.contains("via call to `take_b_then_a`")),
            "{d:?}"
        );
    }

    #[test]
    fn l011_flags_relaxed_but_exempts_metrics_and_tests() {
        let src = "\
fn f(flag: &AtomicBool, metrics: &M) {
    flag.store(true, Ordering::Relaxed);
    metrics.predict_total.fetch_add(1, Ordering::Relaxed);
}
#[cfg(test)]
mod tests { fn t(f: &AtomicBool) { f.store(true, Ordering::Relaxed); } }
";
        let f = parse("crates/serve/src/x.rs", src);
        let mut out = Vec::new();
        l011_atomic_ordering(&f, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn dot_output_lists_nodes_and_highlights_cycle_edges() {
        let f = parse(
            "crates/serve/src/x.rs",
            "impl S { fn fwd(&self) {\n\
               let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
               let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n\
             }\n\
             fn bwd(&self) {\n\
               let gb = self.b.lock().unwrap_or_else(|e| e.into_inner());\n\
               let ga = self.a.lock().unwrap_or_else(|e| e.into_inner());\n\
             } }\n",
        );
        let dot = lock_graph_dot(&[&f]);
        assert!(dot.starts_with("digraph lock_order {"), "{dot}");
        assert!(dot.contains("\"a\" -> \"b\""), "{dot}");
        assert!(dot.contains("\"b\" -> \"a\""), "{dot}");
        assert!(dot.contains("color=red"), "cycle edges highlighted: {dot}");
    }
}
