//! The baseline ratchet.
//!
//! The committed baseline file freezes existing debt as per-`(lint, file)`
//! counts. `check` then enforces a one-way ratchet:
//!
//! * **count grows** → the new violations fail the gate;
//! * **count shrinks** → the gate fails too, with instructions to run
//!   `--update-baseline` — so the committed file can only ever shrink, and
//!   a PR that fixes debt must lock the improvement in;
//! * **count equal** → the debt is tolerated (but reported in the summary).
//!
//! Format: plain text, one `lint<TAB>path<TAB>count` per line, sorted,
//! `#` comments allowed — trivially reviewable in a diff, no parser deps.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

use crate::lints::Diagnostic;

/// Baseline contents: `(lint, path)` → tolerated count.
pub type Baseline = BTreeMap<(String, String), u32>;

/// A problem with the baseline file itself.
#[derive(Debug)]
pub enum BaselineError {
    /// Reading the file failed (other than not-found, which means empty).
    Io(std::io::Error),
    /// A line is not `lint<TAB>path<TAB>count`.
    Malformed { line_no: usize, line: String },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "baseline file: {e}"),
            BaselineError::Malformed { line_no, line } => write!(
                f,
                "baseline line {line_no} is not `lint<TAB>path<TAB>count`: {line:?}"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// Loads a baseline file; a missing file is an empty baseline.
pub fn load(path: &Path) -> Result<Baseline, BaselineError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::new()),
        Err(e) => return Err(BaselineError::Io(e)),
    };
    parse(&text)
}

/// Parses baseline text.
pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
    let mut map = Baseline::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let entry = (|| {
            let lint = parts.next()?.to_string();
            let path = parts.next()?.to_string();
            let count: u32 = parts.next()?.parse().ok()?;
            if parts.next().is_some() {
                return None;
            }
            Some(((lint, path), count))
        })();
        match entry {
            Some((key, count)) => {
                *map.entry(key).or_insert(0) += count;
            }
            None => {
                return Err(BaselineError::Malformed {
                    line_no: i + 1,
                    line: raw.to_string(),
                })
            }
        }
    }
    Ok(map)
}

/// Renders a baseline for committing.
pub fn render(map: &Baseline) -> String {
    let mut out = String::from(
        "# logcl-analyze baseline: frozen existing debt, one `lint<TAB>path<TAB>count` per line.\n\
         # This file may only shrink. Regenerate with:\n\
         #   cargo run -p logcl-analyze -- check --update-baseline\n",
    );
    for ((lint, path), count) in map {
        let _ = writeln!(out, "{lint}\t{path}\t{count}");
    }
    out
}

/// The verdict of comparing current diagnostics against the baseline.
#[derive(Debug, Default)]
pub struct Verdict {
    /// Diagnostics in groups whose count exceeds the baseline (gate fails).
    pub new_violations: Vec<Diagnostic>,
    /// Groups whose count shrank or vanished: `(lint, path, baseline, now)`
    /// — the gate fails until `--update-baseline` locks the win in.
    pub stale: Vec<(String, String, u32, u32)>,
    /// Diagnostics tolerated by the baseline.
    pub tolerated: usize,
}

impl Verdict {
    /// True when the gate passes.
    pub fn ok(&self) -> bool {
        self.new_violations.is_empty() && self.stale.is_empty()
    }
}

/// Compares diagnostics against the baseline (see module docs for the
/// ratchet rules).
pub fn compare(diags: &[Diagnostic], baseline: &Baseline) -> Verdict {
    let mut verdict = Verdict::default();
    let mut counts: BTreeMap<(String, String), u32> = BTreeMap::new();
    for d in diags {
        *counts.entry((d.lint.clone(), d.path.clone())).or_insert(0) += 1;
    }
    for (key, &now) in &counts {
        let base = baseline.get(key).copied().unwrap_or(0);
        if now > base {
            verdict.new_violations.extend(
                diags
                    .iter()
                    .filter(|d| d.lint == key.0 && d.path == key.1)
                    .cloned(),
            );
        } else if now < base {
            verdict
                .stale
                .push((key.0.clone(), key.1.clone(), base, now));
            verdict.tolerated += now as usize;
        } else {
            verdict.tolerated += now as usize;
        }
    }
    for (key, &base) in baseline {
        if !counts.contains_key(key) {
            verdict.stale.push((key.0.clone(), key.1.clone(), base, 0));
        }
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(lint: &str, path: &str, line: u32) -> Diagnostic {
        Diagnostic {
            lint: lint.into(),
            path: path.into(),
            line,
            col: 1,
            message: "m".into(),
        }
    }

    #[test]
    fn roundtrip_parse_render() {
        let mut b = Baseline::new();
        b.insert(("L002".into(), "crates/x/src/a.rs".into()), 3);
        b.insert(("L003".into(), "crates/y/src/b.rs".into()), 1);
        let parsed = parse(&render(&b)).expect("parses");
        assert_eq!(parsed, b);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(parse("L002 crates/x.rs 3").is_err()); // spaces, not tabs
        assert!(parse("L002\tcrates/x.rs\tmany").is_err());
        assert!(parse("# comment\n\nL002\tcrates/x.rs\t2\n").is_ok());
    }

    #[test]
    fn ratchet_up_fails_down_is_stale_equal_tolerated() {
        let mut base = Baseline::new();
        base.insert(("L002".into(), "a.rs".into()), 2);
        base.insert(("L003".into(), "b.rs".into()), 1);
        base.insert(("L004".into(), "gone.rs".into()), 1);

        // a.rs grew to 3 → new violations; b.rs equal → tolerated;
        // gone.rs vanished → stale.
        let diags = vec![
            diag("L002", "a.rs", 1),
            diag("L002", "a.rs", 2),
            diag("L002", "a.rs", 3),
            diag("L003", "b.rs", 1),
        ];
        let v = compare(&diags, &base);
        assert_eq!(v.new_violations.len(), 3);
        assert_eq!(v.tolerated, 1);
        assert_eq!(v.stale.len(), 1);
        assert_eq!(v.stale[0].0, "L004");
        assert!(!v.ok());
    }

    #[test]
    fn empty_baseline_passes_clean_tree() {
        let v = compare(&[], &Baseline::new());
        assert!(v.ok());
    }
}
