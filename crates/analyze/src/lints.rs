//! The lint registry and every lint implementation.
//!
//! Each lint is a pure function over one lexed [`SourceFile`]; scoping
//! (which paths it applies to) lives in [`crate::config`], and suppression
//! (`logcl-allow`) plus the baseline ratchet are applied by the engine
//! afterwards, so lints here simply report every match.

use crate::config::{self, Scope};
use crate::lexer::{Tok, Token};
use crate::source::SourceFile;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Lint id (`"L001"`…; `"L000"` is the engine's meta lint).
    pub lint: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// What is wrong, specifically.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(lint: &str, file: &SourceFile, t: &Token, message: String) -> Diagnostic {
        Diagnostic {
            lint: lint.to_string(),
            path: file.path.clone(),
            line: t.line,
            col: t.col,
            message,
        }
    }
}

/// How a lint runs: over one file at a time, or once over every in-scope
/// file together (the interprocedural lints need the whole slice to build
/// the call graph and cross-file lock-order edges).
#[derive(Clone, Copy)]
pub enum LintPass {
    /// Runs independently per in-scope file.
    PerFile(fn(&SourceFile, &mut Vec<Diagnostic>)),
    /// Runs once over all in-scope files.
    Workspace(fn(&[&SourceFile], &mut Vec<Diagnostic>)),
}

/// A registered lint.
pub struct LintDef {
    /// Stable id, `L001`…
    pub id: &'static str,
    /// Short name for listings.
    pub name: &'static str,
    /// The invariant it protects (one line, shown in `lints` output).
    pub invariant: &'static str,
    /// Which PR's guarantee this lint machine-checks.
    pub origin: &'static str,
    /// How (and over what granularity) the lint runs.
    pub pass: LintPass,
    /// Path scope. Lints with several rule groups (L003) check additional
    /// scopes internally; this is the union.
    pub scope: Scope,
}

/// The engine's built-in meta lint (malformed/unused `logcl-allow`). Not in
/// [`registry`] — it has no `pass` of its own — but documented alongside it
/// so generated listings (CLI `lints`, fixtures/README.md) stay complete.
pub const META_LINT: (&str, &str, &str, &str) = (
    "L000",
    "allow-hygiene",
    "every logcl-allow is well-formed and suppresses a live violation",
    "PR 4 (engine meta lint)",
);

/// All lints, in id order.
pub fn registry() -> &'static [LintDef] {
    &[
        LintDef {
            id: "L001",
            name: "kernel-boundary",
            invariant: "raw f32/f64 buffer compute only inside crates/tensor/src/kernels/",
            origin: "PR 3 (pluggable Backend, bit-identical kernels)",
            pass: LintPass::PerFile(l001_kernel_boundary),
            scope: config::L001_SCOPE,
        },
        LintDef {
            id: "L002",
            name: "panic-freedom",
            invariant: "no unwrap/expect/panic!/unreachable!/todo! in non-test library code",
            origin: "PR 2 (fail-closed training and serving)",
            pass: LintPass::PerFile(l002_panic_freedom),
            scope: config::L002_SCOPE,
        },
        LintDef {
            id: "L003",
            name: "determinism",
            invariant: "no hash-ordered iteration or wall-clock reads in compute/model paths",
            origin: "PR 3 (bit-identical kernels) + paper Eq. 9-14 aggregation order",
            pass: LintPass::PerFile(l003_determinism),
            scope: config::L003_COLLECTIONS_SCOPE,
        },
        LintDef {
            id: "L004",
            name: "fsync-discipline",
            invariant: "atomic replace needs an fsync before the rename; append-mode \
                        writers (WALs) need an fsync somewhere in the file",
            origin: "PR 2 (durable atomic checkpoints) + PR 7 (WAL group commit)",
            pass: LintPass::PerFile(l004_fsync_discipline),
            scope: config::L004_SCOPE,
        },
        LintDef {
            id: "L005",
            name: "lock-hygiene",
            invariant: "a held mutex guard must not span a blocking wait on another primitive",
            origin: "PR 3 (kernel pool) + PR 1 (serve batcher)",
            pass: LintPass::PerFile(l005_lock_hygiene),
            scope: config::L005_SCOPE,
        },
        LintDef {
            id: "L006",
            name: "error-context",
            invariant: "public Results carry typed errors, not Box<dyn Error> or String",
            origin: "PR 2 (typed checkpoint/dataset/training errors)",
            pass: LintPass::PerFile(l006_error_context),
            scope: config::L006_SCOPE,
        },
        LintDef {
            id: "L007",
            name: "head-indexing",
            invariant: "no literal-zero indexing of request/batch data in the serving stack",
            origin: "PR 1 (serve) + PR 2 (fail-closed request validation)",
            pass: LintPass::PerFile(l007_head_indexing),
            scope: config::L007_SCOPE,
        },
        LintDef {
            id: "L008",
            name: "fault-isolation",
            invariant: "fault-injection hooks reachable only under the fault-inject feature",
            origin: "PR 5 (overload resilience + deterministic fault injection)",
            pass: LintPass::PerFile(l008_fault_isolation),
            scope: config::L008_SCOPE,
        },
        LintDef {
            id: "L009",
            name: "lock-order",
            invariant: "the cross-file lock-acquisition graph is acyclic (one global order)",
            origin: "PR 9 (interprocedural concurrency analysis)",
            pass: LintPass::Workspace(crate::concurrency::l009_lock_order),
            scope: config::L009_SCOPE,
        },
        LintDef {
            id: "L010",
            name: "blocking-under-lock",
            invariant: "no fsync/sleep/socket-write (or, via calls, channel/condvar wait) \
                        reachable while a guard is live",
            origin: "PR 9 (interprocedural concurrency analysis)",
            pass: LintPass::Workspace(crate::concurrency::l010_blocking_under_lock),
            scope: config::L010_SCOPE,
        },
        LintDef {
            id: "L011",
            name: "atomic-ordering",
            invariant: "Ordering::Relaxed only in the telemetry plane or under a written \
                        justification",
            origin: "PR 9 (interprocedural concurrency analysis)",
            pass: LintPass::PerFile(crate::concurrency::l011_atomic_ordering),
            scope: config::L011_SCOPE,
        },
    ]
}

/// The lint def for `id`, if registered.
pub fn lint_by_id(id: &str) -> Option<&'static LintDef> {
    registry().iter().find(|l| l.id == id)
}

/// The full lint listing — meta lint first, then the registry — as
/// `(id, name, invariant, origin)` rows. The single source both the CLI
/// `lints` command and the generated fixtures/README.md table render from,
/// so a newly registered lint cannot stay undocumented.
pub fn lint_rows() -> Vec<(&'static str, &'static str, &'static str, &'static str)> {
    let mut rows = vec![META_LINT];
    rows.extend(
        registry()
            .iter()
            .map(|l| (l.id, l.name, l.invariant, l.origin)),
    );
    rows
}

/// The lint table as GitHub markdown (used verbatim in fixtures/README.md;
/// a test pins the file to this output).
pub fn lint_table_markdown() -> String {
    let mut out = String::from("| id | name | invariant | origin |\n|---|---|---|---|\n");
    for (id, name, invariant, origin) in lint_rows() {
        let one_line = invariant.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!("| {id} | {name} | {one_line} | {origin} |\n"));
    }
    out
}

// ------------------------------------------------------------------ helpers

/// A token-sequence pattern element.
enum Pat {
    /// Exactly this identifier.
    I(&'static str),
    /// Exactly this punctuation char.
    P(char),
    /// Any identifier.
    AnyIdent,
}

fn match_at(tokens: &[Token], i: usize, pats: &[Pat]) -> bool {
    if i + pats.len() > tokens.len() {
        return false;
    }
    pats.iter().enumerate().all(|(k, p)| match p {
        Pat::I(name) => tokens[i + k].tok.is_ident(name),
        Pat::P(c) => tokens[i + k].tok.is_punct(*c),
        Pat::AnyIdent => matches!(tokens[i + k].tok, Tok::Ident(_)),
    })
}

// --------------------------------------------------------------------- L001

/// Raw-buffer compute outside the kernel boundary: `&mut [f32]`/`&mut [f64]`
/// signatures, mutable slice partitioning (`chunks_mut`, `split_at_mut`),
/// and raw-pointer buffer access. Inner loops over tensor data belong in
/// `crates/tensor/src/kernels/` behind the `Backend` trait, where the PR 3
/// property tests prove them bit-identical across thread counts.
fn l001_kernel_boundary(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    for i in 0..ts.len() {
        if file.in_test_code(i) {
            continue;
        }
        let float_slice = |j: usize| {
            match_at(ts, j, &[Pat::P('['), Pat::I("f32"), Pat::P(']')])
                || match_at(ts, j, &[Pat::P('['), Pat::I("f64"), Pat::P(']')])
        };
        if match_at(ts, i, &[Pat::P('&'), Pat::I("mut")]) && float_slice(i + 2) {
            out.push(Diagnostic::new(
                "L001",
                file,
                &ts[i],
                "mutable raw float-buffer (`&mut [f32]`/`&mut [f64]`) outside \
                 crates/tensor/src/kernels/ — move the inner loop behind the Backend trait"
                    .into(),
            ));
        }
        for name in ["chunks_mut", "chunks_exact_mut", "split_at_mut"] {
            if match_at(ts, i, &[Pat::P('.'), Pat::I(name), Pat::P('(')]) {
                out.push(Diagnostic::new(
                    "L001",
                    file,
                    &ts[i + 1],
                    format!(
                        "mutable slice partitioning (`.{name}`) outside the kernel boundary — \
                         parallel buffer decomposition belongs in crates/tensor/src/kernels/"
                    ),
                ));
            }
        }
        for name in ["from_raw_parts", "from_raw_parts_mut", "as_mut_ptr"] {
            if ts[i].tok.is_ident(name) && !file.in_use_statement(i) {
                out.push(Diagnostic::new(
                    "L001",
                    file,
                    &ts[i],
                    format!("raw-pointer buffer access (`{name}`) outside the kernel boundary"),
                ));
            }
        }
    }
}

// --------------------------------------------------------------------- L002

/// Panic paths in library code: `.unwrap()`, `.expect(…)`, and the
/// panic-family macros. Test code (`#[cfg(test)]` bodies, `tests/` dirs)
/// keeps its unwraps. `assert!`/`debug_assert!` are deliberately out of
/// scope: they state documented caller contracts, not input-dependent
/// failure paths (see DESIGN.md).
fn l002_panic_freedom(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    for i in 0..ts.len() {
        if file.in_test_code(i) {
            continue;
        }
        if match_at(
            ts,
            i,
            &[Pat::P('.'), Pat::I("unwrap"), Pat::P('('), Pat::P(')')],
        ) {
            out.push(Diagnostic::new(
                "L002",
                file,
                &ts[i + 1],
                "`.unwrap()` in library code — return a typed error (or recover) instead; \
                 the fail-closed contract (PR 2) forbids panicking on representable states"
                    .into(),
            ));
        }
        if match_at(ts, i, &[Pat::P('.'), Pat::I("expect"), Pat::P('(')]) {
            out.push(Diagnostic::new(
                "L002",
                file,
                &ts[i + 1],
                "`.expect(…)` in library code — return a typed error (or recover) instead".into(),
            ));
        }
        for mac in ["panic", "unreachable", "todo", "unimplemented"] {
            if match_at(ts, i, &[Pat::I(mac), Pat::P('!')]) {
                out.push(Diagnostic::new(
                    "L002",
                    file,
                    &ts[i],
                    format!(
                        "`{mac}!` in library code — convert to a typed error, or justify the \
                         invariant with `// logcl-allow(L002): reason`"
                    ),
                ));
            }
        }
    }
}

// --------------------------------------------------------------------- L003

/// Nondeterminism sources in compute/model paths.
///
/// Rule 1 (collections): `HashMap`/`HashSet`/`FxHashMap`/`FxHashSet` are
/// hash-ordered; iterating one feeds arbitrary order into float
/// accumulation (the exact failure mode of the paper's Eq. 9-14 two-phase
/// aggregation). Use `BTreeMap`/`BTreeSet` or an explicit sorted drain.
/// Scope includes `serve` (caches and vocabularies feed responses).
///
/// Rule 2 (time sources): `Instant::now`/`SystemTime::now`/
/// `available_parallelism` make compute depend on wall clock or host
/// topology. Scope excludes `serve` (request timing is wall-clock by
/// nature) and `bench`/`cli` via config.
fn l003_determinism(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    let collections = config::L003_COLLECTIONS_SCOPE.contains(&file.path);
    let time = config::L003_TIME_SCOPE.contains(&file.path);
    for i in 0..ts.len() {
        if file.in_test_code(i) {
            continue;
        }
        if collections && !file.in_use_statement(i) {
            for name in ["HashMap", "HashSet", "FxHashMap", "FxHashSet"] {
                if ts[i].tok.is_ident(name) {
                    out.push(Diagnostic::new(
                        "L003",
                        file,
                        &ts[i],
                        format!(
                            "`{name}` in a compute/model/serving path — hash iteration order is \
                             arbitrary; use BTreeMap/BTreeSet or a sorted drain (or justify a \
                             lookup-only use with logcl-allow)"
                        ),
                    ));
                }
            }
        }
        if time {
            for src in ["Instant", "SystemTime"] {
                if match_at(
                    ts,
                    i,
                    &[Pat::I(src), Pat::P(':'), Pat::P(':'), Pat::I("now")],
                ) {
                    out.push(Diagnostic::new(
                        "L003",
                        file,
                        &ts[i],
                        format!(
                            "`{src}::now()` in a compute path — wall-clock reads make results \
                             or control flow time-dependent"
                        ),
                    ));
                }
            }
            if ts[i].tok.is_ident("available_parallelism") && !file.in_use_statement(i) {
                out.push(Diagnostic::new(
                    "L003",
                    file,
                    &ts[i],
                    "`available_parallelism()` in a compute path — thread-count-dependent \
                     branching; kernels must be bit-identical across thread counts (PR 3)"
                        .into(),
                ));
            }
        }
    }
}

// --------------------------------------------------------------------- L004

/// Atomic-replace durability: a file that creates files *and* renames them
/// is doing the tmp-then-rename dance; every `rename` must be preceded (in
/// the file) by an `fsync` (`sync_all`/`sync_data`), otherwise a crash can
/// publish a name pointing at unflushed bytes.
///
/// Append-mode durability (PR 7 WAL discipline): a file that opens a file
/// with `OpenOptions ... .append(true)` is a log-shaped writer; if the file
/// never fsyncs, every acked append can be lost on crash. The
/// `OpenOptions` lookback keeps `Vec::append`/`wal.append` out of scope.
fn l004_fsync_discipline(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    let any_sync = (0..ts.len()).any(|i| {
        !file.in_test_code(i) && (ts[i].tok.is_ident("sync_all") || ts[i].tok.is_ident("sync_data"))
    });
    if !any_sync {
        for i in 0..ts.len() {
            if file.in_test_code(i) {
                continue;
            }
            let is_append = match_at(ts, i, &[Pat::P('.'), Pat::I("append"), Pat::P('(')])
                && ts[..i]
                    .iter()
                    .rev()
                    .take(24)
                    .any(|t| t.tok.is_ident("OpenOptions"));
            if is_append {
                out.push(Diagnostic::new(
                    "L004",
                    file,
                    &ts[i + 1],
                    "append-mode file writer in a file with no fsync — a write-ahead \
                     log that never calls sync_all()/sync_data() can lose every acked \
                     append on crash (PR 7 WAL discipline)"
                        .into(),
                ));
            }
        }
    }
    let creates = (0..ts.len()).any(|i| {
        !file.in_test_code(i)
            && (match_at(
                ts,
                i,
                &[Pat::I("File"), Pat::P(':'), Pat::P(':'), Pat::I("create")],
            ) || match_at(ts, i, &[Pat::P('.'), Pat::I("create"), Pat::P('(')])
                && i > 0
                && ts[..i]
                    .iter()
                    .rev()
                    .take(8)
                    .any(|t| t.tok.is_ident("OpenOptions")))
    });
    if !creates {
        return;
    }
    let mut synced_before = vec![false; ts.len()];
    let mut seen_sync = false;
    for i in 0..ts.len() {
        if !file.in_test_code(i)
            && (ts[i].tok.is_ident("sync_all") || ts[i].tok.is_ident("sync_data"))
        {
            seen_sync = true;
        }
        synced_before[i] = seen_sync;
    }
    for i in 0..ts.len() {
        if file.in_test_code(i) {
            continue;
        }
        let is_rename = match_at(ts, i, &[Pat::I("rename"), Pat::P('(')])
            && !file.in_use_statement(i)
            // `fs::rename(` or `.rename(` — not a local fn definition.
            && !(i > 0 && ts[i - 1].tok.is_ident("fn"));
        if is_rename && !synced_before[i] {
            out.push(Diagnostic::new(
                "L004",
                file,
                &ts[i],
                "rename without a preceding fsync in a file that creates files — the \
                 atomic-replace pattern must sync_all() the tmp file (and ideally the \
                 directory) before renaming (PR 2 checkpoint discipline)"
                    .into(),
            ));
        }
    }
}

// --------------------------------------------------------------------- L005

/// Lock-hygiene: while a named mutex guard is live, no `.lock(`, `.recv(`,
/// `.recv_timeout(`, or condvar `.wait*(` on anything other than the guard
/// itself. Condvar waits that consume the guard (`cv.wait(guard)`) and
/// channel reads *through* the guard (`guard.recv()`, for `Mutex<Receiver>`)
/// are the sanctioned patterns and are exempt.
fn l005_lock_hygiene(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;

    #[derive(Debug)]
    struct Guard {
        name: String,
        depth: i32,
        live: bool,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0i32;
    let mut i = 0usize;

    // Scans one statement starting at `start` (a `let` or a reassignment),
    // returning (end_index_past_semicolon, rhs_contains_lock).
    let stmt_end = |start: usize| -> usize {
        let mut j = start;
        let mut d = 0i32;
        while j < ts.len() {
            match &ts[j].tok {
                t if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') => d += 1,
                t if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') => d -= 1,
                t if t.is_punct(';') && d <= 0 => return j + 1,
                _ => {}
            }
            j += 1;
        }
        ts.len()
    };

    while i < ts.len() {
        if file.in_test_code(i) {
            i += 1;
            continue;
        }
        match &ts[i].tok {
            t if t.is_punct('{') => {
                depth += 1;
                i += 1;
                continue;
            }
            t if t.is_punct('}') => {
                depth -= 1;
                for g in &mut guards {
                    if g.live && depth < g.depth {
                        g.live = false;
                    }
                }
                i += 1;
                continue;
            }
            _ => {}
        }

        // `drop(name)` kills a guard.
        if match_at(
            ts,
            i,
            &[Pat::I("drop"), Pat::P('('), Pat::AnyIdent, Pat::P(')')],
        ) {
            if let Tok::Ident(name) = &ts[i + 2].tok {
                for g in &mut guards {
                    if g.live && g.name == *name {
                        g.live = false;
                    }
                }
            }
            i += 4;
            continue;
        }

        // A guard binding: `let [mut] NAME = … .lock( … ;` — or a
        // reassignment `NAME = … .lock( … ;` of a known guard name.
        let binding = if ts[i].tok.is_ident("let") {
            let mut j = i + 1;
            if ts.get(j).is_some_and(|t| t.tok.is_ident("mut")) {
                j += 1;
            }
            match (ts.get(j).map(|t| &t.tok), ts.get(j + 1).map(|t| &t.tok)) {
                (Some(Tok::Ident(name)), Some(t))
                    if t.is_punct('=') && !ts.get(j + 2).is_some_and(|n| n.tok.is_punct('=')) =>
                {
                    Some((name.clone(), i))
                }
                _ => None,
            }
        } else if let Tok::Ident(name) = &ts[i].tok {
            let reassign = ts.get(i + 1).is_some_and(|t| t.tok.is_punct('='))
                && !ts.get(i + 2).is_some_and(|t| t.tok.is_punct('='))
                && guards.iter().any(|g| g.name == *name);
            if reassign {
                Some((name.clone(), i))
            } else {
                None
            }
        } else {
            None
        };

        if let Some((name, start)) = binding {
            let end = stmt_end(start);
            let stmt = &ts[start..end];
            let has_lock = (0..stmt.len())
                .any(|k| match_at(stmt, k, &[Pat::P('.'), Pat::I("lock"), Pat::P('(')]));
            // Violations *within* the statement are judged against the
            // other guards live at its start.
            check_span(file, ts, start, end, &guards, Some(&name), out);
            if has_lock {
                if let Some(g) = guards.iter_mut().find(|g| g.name == name) {
                    g.live = true; // revive at original depth
                } else {
                    guards.push(Guard {
                        name,
                        depth,
                        live: true,
                    });
                }
            }
            // Walk the statement for depth changes it contains.
            for t in stmt {
                if t.tok.is_punct('{') {
                    depth += 1;
                } else if t.tok.is_punct('}') {
                    depth -= 1;
                }
            }
            i = end;
            continue;
        }

        check_span(file, ts, i, i + 1, &guards, None, out);
        i += 1;
    }

    /// Reports blocking calls in `ts[from..to]` that violate a live guard.
    fn check_span(
        file: &SourceFile,
        ts: &[Token],
        from: usize,
        to: usize,
        guards: &[Guard],
        binding_of: Option<&str>,
        out: &mut Vec<Diagnostic>,
    ) {
        let live: Vec<&Guard> = guards
            .iter()
            .filter(|g| g.live && Some(g.name.as_str()) != binding_of)
            .collect();
        if live.is_empty() {
            return;
        }
        for k in from..to {
            if file.in_test_code(k) {
                continue;
            }
            let blocking = [
                "lock",
                "recv",
                "recv_timeout",
                "wait",
                "wait_timeout",
                "wait_while",
            ]
            .iter()
            .find(|&&name| match_at(ts, k, &[Pat::P('.'), Pat::I(name), Pat::P('(')]))
            .copied();
            let Some(call) = blocking else { continue };
            // Exempt: the call is *through* a live guard (`guard.recv()`) …
            let through_guard = k > 0
                && matches!(&ts[k - 1].tok, Tok::Ident(n) if live.iter().any(|g| g.name == *n));
            // … or a condvar wait that consumes a live guard
            // (`cv.wait(guard)` / `cv.wait_timeout(guard, d)`).
            let consumes_guard = call.starts_with("wait")
                && matches!(ts.get(k + 3).map(|t| &t.tok), Some(Tok::Ident(n)) if live.iter().any(|g| g.name == *n));
            if through_guard || consumes_guard {
                continue;
            }
            let held: Vec<&str> = live.iter().map(|g| g.name.as_str()).collect();
            out.push(Diagnostic::new(
                "L005",
                file,
                &ts[k + 1],
                format!(
                    "blocking `.{call}(…)` while mutex guard(s) {held:?} are held — a guard \
                     must not span a wait on another primitive (deadlock risk); drop the \
                     guard first or wait on the guard itself"
                ),
            ));
        }
    }
}

// --------------------------------------------------------------------- L006

/// Error-context discipline at crate boundaries: no `Box<dyn …Error…>`
/// anywhere in scoped library code, and no `pub fn … -> Result<_, String>`.
/// Stringly-typed errors destroy the caller's ability to branch on failure
/// kind — PR 2 introduced typed `CheckpointError`/`DatasetError`/
/// `TrainError` for exactly this reason.
fn l006_error_context(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    for i in 0..ts.len() {
        if file.in_test_code(i) {
            continue;
        }
        // Box<dyn …Error…>
        if match_at(ts, i, &[Pat::I("Box"), Pat::P('<'), Pat::I("dyn")]) {
            let mut d = 1i32;
            let mut j = i + 2;
            let mut has_error = false;
            while j < ts.len() && d > 0 && j < i + 24 {
                match &ts[j].tok {
                    t if t.is_punct('<') => d += 1,
                    t if t.is_punct('>') => d -= 1,
                    Tok::Ident(n) if n.ends_with("Error") => has_error = true,
                    _ => {}
                }
                j += 1;
            }
            if has_error {
                out.push(Diagnostic::new(
                    "L006",
                    file,
                    &ts[i],
                    "`Box<dyn Error>` erases the failure type at a crate boundary — \
                     define a typed error enum with Display + From conversions (PR 2 style)"
                        .into(),
                ));
            }
        }
        // pub fn … -> Result<…, String>
        if ts[i].tok.is_ident("pub") {
            if let Some((ret_start, ret_end, fn_tok)) = pub_fn_return_span(ts, i) {
                if result_with_string_error(&ts[ret_start..ret_end]) {
                    out.push(Diagnostic::new(
                        "L006",
                        file,
                        fn_tok,
                        "public fn returns `Result<_, String>` — stringly-typed errors \
                         cross the crate boundary untyped; define an error enum and map \
                         with `?`/From instead"
                            .into(),
                    ));
                }
            }
        }
    }
}

/// For a `pub` at `i` introducing a fn, the token span of its return type
/// (after `->`, before body/where/`;`), plus the `fn` token for reporting.
fn pub_fn_return_span(ts: &[Token], i: usize) -> Option<(usize, usize, &Token)> {
    let mut j = i + 1;
    // pub(crate) / pub(super) / pub(in path)
    if ts.get(j).is_some_and(|t| t.tok.is_punct('(')) {
        let mut d = 1;
        j += 1;
        while j < ts.len() && d > 0 {
            if ts[j].tok.is_punct('(') {
                d += 1;
            } else if ts[j].tok.is_punct(')') {
                d -= 1;
            }
            j += 1;
        }
    }
    // Qualifiers before `fn`.
    while ts
        .get(j)
        .is_some_and(|t| matches!(t.tok.ident(), Some("const" | "async" | "unsafe" | "extern")))
    {
        j += 1;
        if ts.get(j).is_some_and(|t| matches!(t.tok, Tok::Str)) {
            j += 1; // extern "C"
        }
    }
    if !ts.get(j).is_some_and(|t| t.tok.is_ident("fn")) {
        return None;
    }
    let fn_tok = &ts[j];
    // Skip name and generics to the parameter list.
    let mut k = j + 1;
    while k < ts.len() && !ts[k].tok.is_punct('(') {
        if ts[k].tok.is_punct('{') || ts[k].tok.is_punct(';') {
            return None;
        }
        k += 1;
    }
    // Match the parameter parens.
    let mut d = 1i32;
    k += 1;
    while k < ts.len() && d > 0 {
        if ts[k].tok.is_punct('(') {
            d += 1;
        } else if ts[k].tok.is_punct(')') {
            d -= 1;
        }
        k += 1;
    }
    // Expect `->`; otherwise no return type.
    if !(ts.get(k).is_some_and(|t| t.tok.is_punct('-'))
        && ts.get(k + 1).is_some_and(|t| t.tok.is_punct('>')))
    {
        return None;
    }
    let ret_start = k + 2;
    let mut e = ret_start;
    while e < ts.len() {
        match &ts[e].tok {
            t if t.is_punct('{') || t.is_punct(';') => break,
            Tok::Ident(n) if n == "where" => break,
            _ => {}
        }
        e += 1;
    }
    Some((ret_start, e, fn_tok))
}

/// True when the return-type tokens contain `Result<…, String>` with
/// `String` in the top-level error position.
fn result_with_string_error(ret: &[Token]) -> bool {
    for i in 0..ret.len() {
        if !(ret[i].tok.is_ident("Result") && ret.get(i + 1).is_some_and(|t| t.tok.is_punct('<'))) {
            continue;
        }
        let mut d = 1i32;
        let mut j = i + 2;
        let mut segments: Vec<Vec<&Tok>> = vec![Vec::new()];
        while j < ret.len() && d > 0 {
            let mut keep: Option<&Tok> = None;
            match &ret[j].tok {
                t if t.is_punct('<') => {
                    d += 1;
                    keep = Some(t);
                }
                t if t.is_punct('>') => {
                    d -= 1;
                    if d > 0 {
                        keep = Some(t);
                    }
                }
                t if t.is_punct(',') && d == 1 => segments.push(Vec::new()),
                t => keep = Some(t),
            }
            if let (Some(t), Some(seg)) = (keep, segments.last_mut()) {
                seg.push(t);
            }
            j += 1;
        }
        if segments.len() >= 2 {
            let err_seg = &segments[segments.len() - 1];
            if err_seg.iter().any(|t| t.is_ident("String")) {
                return true;
            }
        }
    }
    false
}

// --------------------------------------------------------------------- L007

/// Literal-zero indexing (`expr[0]`) in the serving stack: request bodies
/// and batches can be empty, and `x[0]` on an empty Vec is a panic a remote
/// caller can trigger. Use `.first()`/`.get(0)` with an error path.
fn l007_head_indexing(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    for i in 1..ts.len() {
        if file.in_test_code(i) {
            continue;
        }
        let indexable_receiver = matches!(ts[i - 1].tok, Tok::Ident(_))
            || ts[i - 1].tok.is_punct(')')
            || ts[i - 1].tok.is_punct(']');
        let zero_index = match_at(ts, i, &[Pat::P('[')])
            && matches!(&ts.get(i + 1).map(|t| &t.tok), Some(Tok::Num(n)) if n == "0")
            && ts.get(i + 2).is_some_and(|t| t.tok.is_punct(']'));
        if indexable_receiver && zero_index {
            out.push(Diagnostic::new(
                "L007",
                file,
                &ts[i],
                "literal-zero indexing in the serving stack — `expr[0]` panics on empty \
                 input a remote caller controls; use `.first()`/`.get(0)` with an error path"
                    .into(),
            ));
        }
    }
}

// --------------------------------------------------------------------- L008

/// Fault-injection reachable outside its feature gate: any reference to the
/// `fault` module (`fault::hook(…)`, `mod fault;`) or to its plan types
/// (`FaultPlan`, `FaultPoint`) in the serving stack must be wrapped in a
/// `#[cfg(feature = …)]` gate. Chaos tooling is a test-time instrument; the
/// default release binary must not contain a single fault branch.
fn l008_fault_isolation(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let ts = &file.tokens;
    for i in 0..ts.len() {
        if file.in_test_code(i) || file.in_feature_gated(i) {
            continue;
        }
        for ty in ["FaultPlan", "FaultPoint"] {
            if ts[i].tok.is_ident(ty) {
                out.push(Diagnostic::new(
                    "L008",
                    file,
                    &ts[i],
                    format!(
                        "`{ty}` referenced outside a `#[cfg(feature = …)]` gate — \
                         fault-injection types must be unreachable in default builds"
                    ),
                ));
            }
        }
        let fault_path =
            ts[i].tok.is_ident("fault") && match_at(ts, i + 1, &[Pat::P(':'), Pat::P(':')]);
        let fault_import = ts[i].tok.is_ident("fault") && file.in_use_statement(i) && !fault_path;
        let fault_mod = match_at(ts, i, &[Pat::I("mod"), Pat::I("fault")]);
        if fault_path || fault_import || fault_mod {
            out.push(Diagnostic::new(
                "L008",
                file,
                &ts[i],
                "`fault` module reachable outside a `#[cfg(feature = …)]` gate — \
                 wrap the hook call (or the `mod`/`use` declaration) in the feature gate"
                    .into(),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_lint(id: &str, path: &str, src: &str) -> Vec<Diagnostic> {
        let f = SourceFile::parse(path, src);
        let def = lint_by_id(id).expect("registered lint");
        let mut out = Vec::new();
        match def.pass {
            LintPass::PerFile(run) => run(&f, &mut out),
            LintPass::Workspace(run) => run(&[&f], &mut out),
        }
        out
    }

    #[test]
    fn l002_flags_unwrap_and_macros_but_not_unwrap_or() {
        let src = "fn f() { a.unwrap(); b.unwrap_or(0); c.expect(\"x\"); panic!(\"no\"); }";
        let d = run_lint("L002", "crates/core/src/x.rs", src);
        let kinds: Vec<&str> = d
            .iter()
            .map(|d| d.message.split_whitespace().next().unwrap_or(""))
            .collect();
        assert_eq!(d.len(), 3, "{kinds:?}");
    }

    #[test]
    fn l003_flags_hashmap_use_but_not_import_or_btree() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u8,u8> = HashMap::new(); let b = std::collections::BTreeMap::<u8,u8>::new(); }";
        let d = run_lint("L003", "crates/core/src/x.rs", src);
        assert_eq!(d.len(), 2); // two non-import HashMap occurrences
        assert!(d.iter().all(|d| d.line == 2));
    }

    #[test]
    fn l003_time_rule_not_applied_in_serve() {
        let src = "fn f() { let t = Instant::now(); }";
        assert!(run_lint("L003", "crates/serve/src/x.rs", src).is_empty());
        assert_eq!(run_lint("L003", "crates/core/src/x.rs", src).len(), 1);
    }

    #[test]
    fn l004_needs_sync_between_create_and_rename() {
        let bad = "fn save() { let f = File::create(p)?; fs::rename(a, b)?; }";
        let good = "fn save() { let f = File::create(p)?; f.sync_all()?; fs::rename(a, b)?; }";
        let none = "fn save() { fs::rename(a, b)?; }"; // no create in file
        assert_eq!(run_lint("L004", "crates/x/src/s.rs", bad).len(), 1);
        assert!(run_lint("L004", "crates/x/src/s.rs", good).is_empty());
        assert!(run_lint("L004", "crates/x/src/s.rs", none).is_empty());
    }

    #[test]
    fn l005_flags_second_lock_but_not_condvar_or_through_guard() {
        let bad = "fn f() { let st = a.lock().unwrap(); let other = b.lock().unwrap(); }";
        let cv =
            "fn f() { let mut st = a.lock().unwrap(); while x { st = cv.wait(st).unwrap(); } }";
        let through = "fn f() { let g = rx.lock().unwrap(); let j = g.recv(); }";
        let dropped = "fn f() { let st = a.lock().unwrap(); drop(st); let o = b.lock().unwrap(); }";
        assert_eq!(run_lint("L005", "crates/serve/src/x.rs", bad).len(), 1);
        assert!(run_lint("L005", "crates/serve/src/x.rs", cv).is_empty());
        assert!(run_lint("L005", "crates/serve/src/x.rs", through).is_empty());
        assert!(run_lint("L005", "crates/serve/src/x.rs", dropped).is_empty());
    }

    #[test]
    fn l006_flags_string_error_position_only() {
        let bad = "pub fn start() -> Result<Server, String> { x }";
        let ok_payload = "pub fn name() -> Result<String, StartError> { x }";
        let boxed = "pub fn f() -> Result<(), Box<dyn std::error::Error>> { x }";
        let closure = "type Job = Box<dyn FnOnce() + Send>;";
        assert_eq!(run_lint("L006", "crates/serve/src/x.rs", bad).len(), 1);
        assert!(run_lint("L006", "crates/serve/src/x.rs", ok_payload).is_empty());
        assert_eq!(run_lint("L006", "crates/serve/src/x.rs", boxed).len(), 1);
        assert!(run_lint("L006", "crates/serve/src/x.rs", closure).is_empty());
    }

    #[test]
    fn l007_flags_head_index_not_array_literal() {
        let src = "fn f(g: &[Job]) { let t = g[0]; let a = [0]; let v = vec![0]; }";
        let d = run_lint("L007", "crates/serve/src/x.rs", src);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn l001_flags_mut_float_slices_outside_kernels() {
        let src = "pub fn axpy(y: &mut [f32], x: &[f32]) {}";
        assert_eq!(run_lint("L001", "crates/gnn/src/x.rs", src).len(), 1);
    }

    #[test]
    fn l008_flags_ungated_fault_refs_but_not_gated_ones() {
        let gated = "#[cfg(feature = \"fault-inject\")]\npub mod fault;\nfn f() {\n    #[cfg(feature = \"fault-inject\")]\n    {\n        if let Some(d) = crate::fault::compute_delay(0) { use_it(d); }\n    }\n}";
        assert!(
            run_lint("L008", "crates/serve/src/x.rs", gated).is_empty(),
            "feature-gated hooks are the sanctioned pattern"
        );
        let bare_mod = "pub mod fault;";
        assert_eq!(run_lint("L008", "crates/serve/src/x.rs", bare_mod).len(), 1);
        let bare_call = "fn f() { let d = crate::fault::compute_delay(0); }";
        assert_eq!(
            run_lint("L008", "crates/serve/src/x.rs", bare_call).len(),
            1
        );
        let bare_type = "use crate::fault::FaultPlan;";
        assert_eq!(
            run_lint("L008", "crates/serve/src/x.rs", bare_type).len(),
            2
        );
        let default_ident = "fn f() { let fault = tolerance; }";
        assert!(run_lint("L008", "crates/serve/src/x.rs", default_ident).is_empty());
    }
}
