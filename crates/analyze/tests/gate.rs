//! End-to-end gate test: runs the real `logcl-analyze` binary against a
//! synthetic workspace with an injected violation and walks the whole
//! ratchet lifecycle — exactly what the CI `analyze` job would see.
//!
//! 1. violation present, no baseline      → `check` exits 1, `file:line:col`
//! 2. `check --update-baseline`           → exits 0, writes the baseline
//! 3. violation unchanged                 → `check` exits 0 (tolerated debt)
//! 4. a second violation appears          → `check` exits 1 (ratchet up)
//! 5. all violations fixed                → `check` exits 1 (stale baseline)
//! 6. `--update-baseline` then `check`    → exits 0, baseline shrank to empty

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn ws(name: &str) -> PathBuf {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = fs::remove_dir_all(&root);
    fs::create_dir_all(root.join("crates/core/src")).expect("mkdir workspace");
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    root
}

fn check(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_logcl-analyze"))
        .arg("check")
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn logcl-analyze")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const ONE_VIOLATION: &str = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
const TWO_VIOLATIONS: &str =
    "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\npub fn g() {\n    panic!(\"no\");\n}\n";
const CLEAN: &str = "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n";

#[test]
fn injected_violation_fails_the_gate_with_position() {
    let root = ws("gate_position");
    let lib = root.join("crates/core/src/lib.rs");
    fs::write(&lib, ONE_VIOLATION).expect("write lib");

    let out = check(&root, &[]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "gate must fail: {}",
        stdout(&out)
    );
    let text = stdout(&out);
    assert!(
        text.contains("crates/core/src/lib.rs:2:7 L002"),
        "diagnostic must carry file:line:col of the unwrap: {text}"
    );
}

#[test]
fn json_output_reports_the_injected_violation() {
    let root = ws("gate_json");
    fs::write(root.join("crates/core/src/lib.rs"), ONE_VIOLATION).expect("write lib");

    let out = check(&root, &["--json"]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("\"ok\":false"), "{text}");
    assert!(
        text.contains("\"lint\":\"L002\"")
            && text.contains("\"line\":2")
            && text.contains("\"col\":7"),
        "{text}"
    );

    // The payload is versioned and self-describing: consumers of the CI
    // artifact can tell "clean because checked" from "clean because the
    // lint didn't exist in that build of the analyzer".
    assert!(text.contains("\"schema_version\":1"), "{text}");
    let mut lints = vec!["\"L000\"".to_string()];
    lints.extend(
        logcl_analyze::lints::registry()
            .iter()
            .map(|l| format!("\"{}\"", l.id)),
    );
    let want = format!("\"lints\":[{}]", lints.join(","));
    assert!(text.contains(&want), "want {want} in: {text}");
}

#[test]
fn baseline_ratchet_lifecycle() {
    let root = ws("gate_ratchet");
    let lib = root.join("crates/core/src/lib.rs");
    let baseline = root.join("analyze.baseline");
    fs::write(&lib, ONE_VIOLATION).expect("write lib");

    // (1) violation, no baseline → fail.
    assert_eq!(check(&root, &[]).status.code(), Some(1));

    // (2) freeze the debt.
    let out = check(&root, &["--update-baseline"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let frozen = fs::read_to_string(&baseline).expect("baseline written");
    assert!(
        frozen.contains("L002\tcrates/core/src/lib.rs\t1"),
        "{frozen}"
    );

    // (3) unchanged debt is tolerated.
    let out = check(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("1 tolerated"), "{}", stdout(&out));

    // (4) ratchet up: a second violation in the same file fails even though
    // the file is already in the baseline.
    fs::write(&lib, TWO_VIOLATIONS).expect("write lib");
    let out = check(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("L002"), "{}", stdout(&out));

    // (5) fixing everything makes the baseline stale — the gate still fails
    // until the win is locked in, so the committed file can only shrink.
    fs::write(&lib, CLEAN).expect("write lib");
    let out = check(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("stale baseline"), "{}", stdout(&out));

    // (6) lock it in: baseline shrinks to empty and the gate passes.
    assert_eq!(check(&root, &["--update-baseline"]).status.code(), Some(0));
    let shrunk = fs::read_to_string(&baseline).expect("baseline rewritten");
    assert!(
        !shrunk.contains("L002"),
        "baseline must have shrunk to empty: {shrunk}"
    );
    let out = check(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(
        stdout(&out).contains("logcl-analyze: OK"),
        "{}",
        stdout(&out)
    );
}

#[test]
fn suppressed_violation_passes_but_unused_allow_fails() {
    let root = ws("gate_allows");
    let lib = root.join("crates/core/src/lib.rs");

    fs::write(
        &lib,
        "pub fn f(x: Option<u32>) -> u32 {\n    // logcl-allow(L002): gate test — caller guarantees Some\n    x.unwrap()\n}\n",
    )
    .expect("write lib");
    let out = check(&root, &[]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("1 suppressed"), "{}", stdout(&out));

    // Remove the violation but keep the allow: the stale allow itself
    // becomes an L000 violation, so suppressions cannot rot.
    fs::write(
        &lib,
        "pub fn f(x: Option<u32>) -> u32 {\n    // logcl-allow(L002): gate test — caller guarantees Some\n    x.unwrap_or(0)\n}\n",
    )
    .expect("write lib");
    let out = check(&root, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("L000"), "{}", stdout(&out));
    assert!(stdout(&out).contains("unused"), "{}", stdout(&out));
}

#[test]
fn the_committed_workspace_passes_its_own_gate() {
    // The real repo (two directories up from this crate) must be clean
    // against its committed baseline — the same invariant CI enforces.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    if !repo_root.join("analyze.baseline").is_file() {
        return; // packaged build without the repo checkout; nothing to gate
    }
    let out = check(&repo_root, &[]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "the tree no longer passes its own lint gate:\n{}",
        stdout(&out)
    );
}
