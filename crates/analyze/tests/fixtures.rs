//! Golden fixture tests: every registered lint must fire on its fixture
//! with exactly the `file:line:col` positions recorded in the paired
//! `.expected` file. Fixtures live in `../fixtures/` (a globally exempt
//! directory, so real-tree scans never see them) and are injected through
//! `analyze_sources`, the same entry point `analyze_root` funnels into.

use logcl_analyze::engine::analyze_sources;
use logcl_analyze::lints::registry;

struct Fixture {
    name: &'static str,
    source: &'static str,
    expected: &'static str,
}

const FIXTURES: &[Fixture] = &[
    Fixture {
        name: "l001_kernel_boundary",
        source: include_str!("../fixtures/l001_kernel_boundary.rs"),
        expected: include_str!("../fixtures/l001_kernel_boundary.expected"),
    },
    Fixture {
        name: "l002_panic_freedom",
        source: include_str!("../fixtures/l002_panic_freedom.rs"),
        expected: include_str!("../fixtures/l002_panic_freedom.expected"),
    },
    Fixture {
        name: "l003_determinism",
        source: include_str!("../fixtures/l003_determinism.rs"),
        expected: include_str!("../fixtures/l003_determinism.expected"),
    },
    // The loadgen pair analyzes ONE source under two virtual paths: in a
    // deterministic module both L003 rule groups fire; in the timing.rs
    // clock carve-out the wall-clock hit disappears but the hash-container
    // hits must remain — proving the exclusion does not leak.
    Fixture {
        name: "l003_loadgen_scope",
        source: include_str!("../fixtures/l003_loadgen_scope.rs"),
        expected: include_str!("../fixtures/l003_loadgen_scope.expected"),
    },
    Fixture {
        name: "l003_loadgen_carveout",
        source: include_str!("../fixtures/l003_loadgen_scope.rs"),
        expected: include_str!("../fixtures/l003_loadgen_carveout.expected"),
    },
    Fixture {
        name: "l004_fsync_discipline",
        source: include_str!("../fixtures/l004_fsync_discipline.rs"),
        expected: include_str!("../fixtures/l004_fsync_discipline.expected"),
    },
    Fixture {
        name: "l004_wal_append",
        source: include_str!("../fixtures/l004_wal_append.rs"),
        expected: include_str!("../fixtures/l004_wal_append.expected"),
    },
    Fixture {
        name: "l005_lock_hygiene",
        source: include_str!("../fixtures/l005_lock_hygiene.rs"),
        expected: include_str!("../fixtures/l005_lock_hygiene.expected"),
    },
    Fixture {
        name: "l006_error_context",
        source: include_str!("../fixtures/l006_error_context.rs"),
        expected: include_str!("../fixtures/l006_error_context.expected"),
    },
    Fixture {
        name: "l007_head_indexing",
        source: include_str!("../fixtures/l007_head_indexing.rs"),
        expected: include_str!("../fixtures/l007_head_indexing.expected"),
    },
    Fixture {
        name: "l008_fault_isolation",
        source: include_str!("../fixtures/l008_fault_isolation.rs"),
        expected: include_str!("../fixtures/l008_fault_isolation.expected"),
    },
    Fixture {
        name: "l009_lock_order",
        source: include_str!("../fixtures/l009_lock_order.rs"),
        expected: include_str!("../fixtures/l009_lock_order.expected"),
    },
    Fixture {
        name: "l010_blocking_under_lock",
        source: include_str!("../fixtures/l010_blocking_under_lock.rs"),
        expected: include_str!("../fixtures/l010_blocking_under_lock.expected"),
    },
    Fixture {
        name: "l011_atomic_ordering",
        source: include_str!("../fixtures/l011_atomic_ordering.rs"),
        expected: include_str!("../fixtures/l011_atomic_ordering.expected"),
    },
    Fixture {
        name: "l000_allows",
        source: include_str!("../fixtures/l000_allows.rs"),
        expected: include_str!("../fixtures/l000_allows.expected"),
    },
];

/// Parses a `.expected` file: the `# path:` header, an optional
/// `# suppressed:` count, and the golden `LINT line:col` lines.
fn parse_expected(text: &str) -> (String, Option<usize>, Vec<String>) {
    let mut path = None;
    let mut suppressed = None;
    let mut lines = Vec::new();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# path:") {
            path = Some(rest.trim().to_string());
        } else if let Some(rest) = line.strip_prefix("# suppressed:") {
            suppressed = rest.trim().parse().ok();
        } else if !line.starts_with('#') {
            lines.push(line.to_string());
        }
    }
    (
        path.expect("fixture .expected needs a `# path:` header"),
        suppressed,
        lines,
    )
}

#[test]
fn every_fixture_matches_its_golden_diagnostics() {
    for fx in FIXTURES {
        let (path, want_suppressed, want) = parse_expected(fx.expected);
        let files = [(path.clone(), fx.source.to_string())];
        let analysis = analyze_sources(&files);
        let got: Vec<String> = analysis
            .diagnostics
            .iter()
            .map(|d| {
                assert_eq!(d.path, path, "{}: diagnostic path mismatch", fx.name);
                format!("{} {}:{}", d.lint, d.line, d.col)
            })
            .collect();
        assert_eq!(
            got, want,
            "{}: diagnostics diverge from golden file\n  got:  {:?}\n  want: {:?}\n  full: {:#?}",
            fx.name, got, want, analysis.diagnostics
        );
        if let Some(s) = want_suppressed {
            assert_eq!(analysis.suppressed, s, "{}: suppression count", fx.name);
        }
    }
}

#[test]
fn every_registered_lint_has_a_firing_fixture() {
    let mut uncovered: Vec<&str> = registry().iter().map(|l| l.id).collect();
    uncovered.push("L000");
    for fx in FIXTURES {
        let (path, _, _) = parse_expected(fx.expected);
        let files = [(path, fx.source.to_string())];
        let analysis = analyze_sources(&files);
        uncovered.retain(|id| !analysis.diagnostics.iter().any(|d| &d.lint == id));
    }
    assert!(
        uncovered.is_empty(),
        "lints with no fixture proving they fire: {uncovered:?}"
    );
}

#[test]
fn fixtures_on_disk_are_globally_exempt_from_real_scans() {
    // The violating fixtures must never leak into `check` runs over the
    // real tree: their directory name is in GLOBAL_EXEMPT_DIRS.
    assert!(logcl_analyze::config::globally_exempt(
        "crates/analyze/fixtures/l002_panic_freedom.rs"
    ));
}

#[test]
fn readme_lint_table_is_generated_from_the_registry() {
    // fixtures/README.md embeds the registry-generated lint table verbatim;
    // registering a lint without regenerating the table fails here.
    let readme = include_str!("../fixtures/README.md");
    let table = logcl_analyze::lints::lint_table_markdown();
    assert!(
        readme.contains(table.trim_end()),
        "fixtures/README.md lint table is stale — paste the output of \
         `lint_table_markdown()` into it:\n{table}"
    );
}

#[test]
fn one_allow_covers_all_same_lint_hits_on_its_line_only() {
    let src = "\
pub fn f(a: Option<u32>, b: Option<u32>) -> u32 {
    // logcl-allow(L002): fixture — both unwraps on the next line are covered
    a.unwrap() + b.unwrap()
}
pub fn g(c: Option<u32>) -> u32 {
    c.unwrap()
}
";
    let files = [("crates/core/src/x.rs".to_string(), src.to_string())];
    let analysis = analyze_sources(&files);
    assert_eq!(analysis.suppressed, 2, "{:#?}", analysis.diagnostics);
    assert_eq!(analysis.diagnostics.len(), 1);
    assert_eq!(analysis.diagnostics[0].lint, "L002");
    assert_eq!(analysis.diagnostics[0].line, 6);
}
