// L011 fixture: `Ordering::Relaxed` on cross-thread signals is flagged;
// telemetry-plane counter bumps (statements mentioning `metrics`) and
// sites carrying a written justification are exempt.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Flags {
    pub ready: AtomicBool,
    pub generation: AtomicU64,
}

pub struct Metrics {
    pub requests: AtomicU64,
}

pub fn publish(flags: &Flags, metrics: &Metrics) {
    flags.generation.fetch_add(1, Ordering::Relaxed);
    flags.ready.store(true, Ordering::Relaxed);
    metrics.requests.fetch_add(1, Ordering::Relaxed);
    // logcl-allow(L011): generation is read only for a debug snapshot — no data is published through it
    let g = flags.generation.load(Ordering::Relaxed);
    let _ = g;
}
