// L000 fixture: the suppression workflow itself. Two justified allows
// (standalone + trailing) suppress their violations; one unused allow and
// one malformed allow are reported by the meta lint.

pub fn covered(x: Option<u32>) -> u32 {
    // logcl-allow(L002): fixture — documented contract, caller guarantees Some
    x.unwrap()
}

pub fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // logcl-allow(L002): fixture — trailing form covers its own line
}

// logcl-allow(L002): fixture — nothing below violates, so this allow is stale
pub fn clean() -> u32 {
    0
}

// logcl-allow(L002)
pub fn missing_reason() -> u32 {
    1
}
