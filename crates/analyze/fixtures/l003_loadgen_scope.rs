// L003 loadgen-scope fixture: this same source is analyzed twice — once
// as `crates/loadgen/src/schedule.rs` (a deterministic module: both the
// collections rule and the time rule apply) and once as
// `crates/loadgen/src/timing.rs` (the harness clock carve-out: wall-clock
// reads are allowed there, hash-ordered containers still are not).

use std::collections::HashMap;
use std::time::Instant;

pub fn arrivals(n: u32) -> HashMap<u32, u64> {
    let mut gaps = HashMap::new();
    let t0 = Instant::now();
    for i in 0..n {
        gaps.insert(i, t0.elapsed().as_micros() as u64);
    }
    gaps
}
