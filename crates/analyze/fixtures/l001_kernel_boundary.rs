// L001 fixture: raw float-buffer compute outside crates/tensor/src/kernels/.

pub fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

pub fn halves(buf: &mut [f64]) -> (&mut [f64], &mut [f64]) {
    let mid = buf.len() / 2;
    buf.split_at_mut(mid)
}

pub fn tiles(buf: &mut Vec<f32>, width: usize) {
    for row in buf.chunks_mut(width) {
        row.reverse();
    }
    let base = buf.as_mut_ptr();
    let _ = base;
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt(y: &mut [f32]) {
        y.split_at_mut(0);
    }
}
