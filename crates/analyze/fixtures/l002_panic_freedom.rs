// L002 fixture: panic paths in non-test library code.

pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn need(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn boom() {
    panic!("boom");
}

pub fn cold() -> u32 {
    unreachable!()
}

pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_stay_legal_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
