// L004 append-mode fixture: an OpenOptions append-mode writer in a file
// that never fsyncs — acked appends can vanish on crash. `Vec::append`
// and `wal.append(record)` (no OpenOptions chain nearby) stay exempt.

use std::fs::OpenOptions;
use std::io::Write as _;

pub fn open_log(path: &std::path::Path) -> std::io::Result<std::fs::File> {
    OpenOptions::new().create(true).append(true).open(path)
}

pub fn log_line(f: &mut std::fs::File, line: &str) -> std::io::Result<()> {
    f.write_all(line.as_bytes())
}

pub fn merge(dst: &mut Vec<u64>, src: &mut Vec<u64>) {
    dst.append(src);
}
