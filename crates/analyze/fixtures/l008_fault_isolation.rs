// L008 fixture: fault-injection machinery referenced outside a
// `#[cfg(feature = …)]` gate. Gated references — the sanctioned
// pattern — stay silent, as do unrelated idents containing `fault`.

pub mod fault;

pub fn stall(batch_idx: u64) {
    if let Some(delay) = crate::fault::compute_delay(batch_idx) {
        std::thread::sleep(delay);
    }
}

pub fn plan_type() -> Option<FaultPlan> {
    None
}

#[cfg(feature = "fault-inject")]
pub fn gated(batch_idx: u64) -> bool {
    crate::fault::batcher_dies(batch_idx)
}

pub fn fault_tolerance() -> f32 {
    0.5
}
