// L007 fixture: literal-zero indexing of possibly-empty request data in
// the serving stack. Array/vec literals are not indexing and stay legal.

pub fn first_score(scores: &[f32]) -> f32 {
    scores[0]
}

pub fn head(batch: &[Vec<u32>]) -> u32 {
    batch[0][0]
}

pub fn literals() -> (usize, Vec<usize>) {
    let a = [0];
    let v = vec![0];
    (a.len(), v)
}
