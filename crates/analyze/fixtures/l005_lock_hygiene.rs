// L005 fixture: a live mutex guard spanning a blocking wait on another
// primitive. The dropped-guard and consume-the-guard forms are legal.

use std::sync::Mutex;

pub struct Pair {
    left: Mutex<u32>,
    right: Mutex<u32>,
}

impl Pair {
    pub fn both(&self) -> u32 {
        let a = self.left.lock();
        let b = self.right.lock();
        a.map_or(0, |g| *g) + b.map_or(0, |g| *g)
    }

    pub fn sequential(&self) -> u32 {
        let a = self.left.lock().map_or(0, |g| *g);
        drop(a);
        let b = self.right.lock();
        b.map_or(0, |g| *g)
    }
}
