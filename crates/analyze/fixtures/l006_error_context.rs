// L006 fixture: untyped errors crossing a public crate boundary.

pub fn read_config(path: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
    std::fs::read(path).map_err(Into::into)
}

pub fn parse_port(s: &str) -> Result<u16, String> {
    s.parse().map_err(|_| format!("bad port: {s}"))
}

pub fn typed(path: &str) -> Result<Vec<u8>, std::io::Error> {
    std::fs::read(path)
}

pub fn payload_string_is_fine(code: u16) -> Result<String, std::io::Error> {
    Ok(code.to_string())
}
