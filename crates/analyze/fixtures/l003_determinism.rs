// L003 fixture: hash-ordered containers and wall-clock reads in a
// compute/model path. Import lines are exempt; uses are not.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

pub fn tally(xs: &[u32]) -> Vec<(u32, u32)> {
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

pub fn dedup(xs: &[u32]) -> usize {
    let seen: FxHashSet<u32> = xs.iter().copied().collect();
    seen.len()
}

pub fn stamp() -> (Instant, SystemTime) {
    (Instant::now(), SystemTime::now())
}

pub fn width() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
