// L010 fixture: blocking I/O and sleeps reachable while a guard is live —
// directly and through a resolved call. Dropping the guard first is the
// legal form.

use std::fs::File;
use std::sync::Mutex;
use std::time::Duration;

fn flush_to_disk(file: &File) -> std::io::Result<()> {
    file.sync_all()
}

pub struct Journal {
    file: Mutex<File>,
    side: File,
}

impl Journal {
    pub fn direct(&self) {
        let guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        guard.sync_all().ok();
        drop(guard);
    }

    pub fn interprocedural(&self) {
        let guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        flush_to_disk(&self.side).ok();
        std::thread::sleep(Duration::from_millis(1));
        drop(guard);
    }

    pub fn legal(&self) {
        let guard = self.file.lock().unwrap_or_else(|e| e.into_inner());
        drop(guard);
        flush_to_disk(&self.side).ok();
        std::thread::sleep(Duration::from_millis(1));
    }
}
