// L009 fixture: two paths acquire a lock pair in opposite orders — the
// classic AB/BA deadlock — with one leg taken through a guard-returning
// helper so the interprocedural resolution is what closes the cycle. A
// third lock acquired consistently proves an edge alone never fires.

use std::sync::{Mutex, MutexGuard};

pub struct Triple {
    alpha: Mutex<u32>,
    beta: Mutex<u32>,
    gamma: Mutex<u32>,
}

impl Triple {
    fn lock_alpha(&self) -> MutexGuard<'_, u32> {
        self.alpha.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_beta(&self) -> MutexGuard<'_, u32> {
        self.beta.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn forward(&self) -> u32 {
        let ga = self.lock_alpha();
        let gb = self.lock_beta();
        *ga + *gb
    }

    pub fn backward(&self) -> u32 {
        let gb = self.lock_beta();
        let ga = self.lock_alpha();
        *ga + *gb
    }

    pub fn consistent(&self) -> u32 {
        let ga = self.lock_alpha();
        let gc = self.gamma.lock().unwrap_or_else(|e| e.into_inner());
        *ga + *gc
    }
}
