// L004 fixture: atomic-replace (create + rename) without an fsync before
// the rename — a crash can publish a name pointing at unflushed bytes.

use std::fs::File;
use std::io::Write as _;

pub fn publish(tmp: &std::path::Path, dst: &std::path::Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(bytes)?;
    std::fs::rename(tmp, dst)
}
