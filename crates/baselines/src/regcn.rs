//! RE-GCN (Li et al., 2021) — the canonical local-evolution baseline: the
//! recurrent encoder of [`crate::recurrent`] plus a ConvTransE decoder,
//! trained per timestamp with inverse facts.

use logcl_gnn::ConvTransE;
use logcl_tensor::nn::{Embedding, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::Rng;
use logcl_tkg::quad::Quad;
use logcl_tkg::TkgDataset;

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::recurrent::{RecurrentEncoder, RecurrentEncoding};
use crate::util::{group_by_time, logits_to_rows};

/// The RE-GCN model.
pub struct ReGcn {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    encoder: RecurrentEncoder,
    decoder: ConvTransE,
    /// History window length.
    pub m: usize,
    /// Gaussian perturbation of the initial entity representations
    /// (Fig. 2's robustness probe); `CLEAN` by default.
    pub noise: logcl_tkg::NoiseSpec,
    rng: Rng,
    opt: Option<Adam>,
    lr: f32,
    grad_clip: f32,
}

impl ReGcn {
    /// Builds RE-GCN for `ds` with window `m`.
    pub fn new(ds: &TkgDataset, dim: usize, m: usize, channels: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let encoder = RecurrentEncoder::new(dim, 2, 0.2, &mut rng);
        let decoder = ConvTransE::new(dim, channels, 0.2, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        encoder.register(&mut params, "encoder");
        decoder.register(&mut params, "decoder");
        Self {
            params,
            ent,
            rel,
            encoder,
            decoder,
            m,
            noise: logcl_tkg::NoiseSpec::CLEAN,
            rng,
            opt: None,
            lr: 1e-3,
            grad_clip: 5.0,
        }
    }

    /// Initial entity embeddings, perturbed when a noise spec is set.
    fn initial_entities(&mut self) -> logcl_tensor::Var {
        if self.noise.is_clean() {
            self.ent.weight.clone()
        } else {
            let shape = self.ent.weight.shape();
            let n = logcl_tensor::Tensor::randn(&shape, self.noise.std, &mut self.rng);
            self.ent.weight.add(&logcl_tensor::Var::constant(n))
        }
    }

    fn logits(
        &mut self,
        enc: &RecurrentEncoding,
        queries: &[Quad],
        training: bool,
    ) -> logcl_tensor::Var {
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let e_s = enc.h_final.gather_rows(&s);
        let e_r = enc.rel_final.gather_rows(&r);
        let decoded = self.decoder.decode(&e_s, &e_r, training, &mut self.rng);
        self.decoder.score_all(&decoded, &enc.h_final)
    }

    fn step_on(
        &mut self,
        snapshots: &[logcl_tkg::Snapshot],
        quads: &[Quad],
        num_rels: usize,
        t: usize,
    ) {
        let h0 = self.initial_entities();
        let enc = self.encoder.encode(
            &h0,
            &self.rel.weight,
            snapshots,
            t,
            self.m,
            true,
            &mut self.rng,
        );
        let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
        let loss1 = self.logits(&enc, quads, true).cross_entropy(&targets1);
        let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(num_rels)).collect();
        let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();
        let loss2 = self.logits(&enc, &inv, true).cross_entropy(&targets2);
        let total = loss1.add(&loss2);
        total.backward();
        let clip = self.grad_clip;
        self.opt.as_mut().expect("optimizer").clip_and_step(clip);
    }
}

impl TkgModel for ReGcn {
    fn name(&self) -> String {
        "RE-GCN".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        self.lr = opts.lr;
        self.grad_clip = opts.grad_clip;
        self.opt = Some(Adam::new(&self.params, opts.lr));
        let snapshots = ds.snapshots();
        let by_time = group_by_time(&ds.train, ds.num_times);
        for _ in 0..opts.epochs {
            for (t, quads) in by_time.iter().enumerate().take(ds.train_end_time()) {
                if quads.is_empty() {
                    continue;
                }
                let quads = quads.clone();
                self.step_on(&snapshots, &quads, ds.num_rels, t);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let h0 = self.initial_entities();
        let enc = self.encoder.encode(
            &h0,
            &self.rel.weight,
            ctx.snapshots,
            ctx.t,
            self.m,
            false,
            &mut self.rng,
        );
        let logits = self.logits(&enc, queries, false);
        logits_to_rows(&logits, queries.len())
    }

    fn online_update(&mut self, ctx: &EvalContext<'_>, quads: &[Quad]) {
        if quads.is_empty() {
            return;
        }
        if self.opt.is_none() {
            self.opt = Some(Adam::new(&self.params, self.lr * 0.5));
        }
        self.step_on(ctx.snapshots, quads, ctx.ds.num_rels, ctx.t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn regcn_learns_local_evolution() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ReGcn::new(&ds, 16, 3, 4, 7);
        let test = ds.test.clone();
        let before = evaluate(&mut model, &ds, &test);
        model.fit(&ds, &TrainOptions::epochs(3)).unwrap();
        let after = evaluate(&mut model, &ds, &test);
        assert!(
            after.mrr > before.mrr + 2.0,
            "{} -> {}",
            before.mrr,
            after.mrr
        );
    }

    #[test]
    fn online_update_runs() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ReGcn::new(&ds, 12, 2, 3, 7);
        model.fit(&ds, &TrainOptions::epochs(1)).unwrap();
        let test = ds.test.clone();
        let m = logcl_core::evaluate_online(&mut model, &ds, &test);
        assert!(m.mrr.is_finite() && m.count > 0);
    }
}
