//! A uniform way for the experiment binaries to construct any model in the
//! Table III roster.

use logcl_core::api::TkgModel;
use logcl_core::{LogCl, LogClConfig};
use logcl_tkg::TkgDataset;

use crate::{
    CenLite, CenetLite, ConvTransEStatic, CyGNet, DistMult, HisMatch, ReGcn, ReNet, TTransE,
    TirgnLite,
};

/// Every model the experiments can construct, in Table III row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// DistMult (static).
    DistMult,
    /// Conv-TransE (static).
    ConvTransE,
    /// TTransE (interpolation).
    TTransE,
    /// CyGNet (extrapolation, global copy).
    CyGNet,
    /// RE-NET-lite (extrapolation, neighborhood-sequence RNN).
    ReNet,
    /// RE-GCN (extrapolation, local recurrent).
    ReGcn,
    /// CEN-lite (extrapolation, multi-length local).
    Cen,
    /// TiRGN-lite (extrapolation, local + global).
    Tirgn,
    /// HisMatch-lite (extrapolation, historical structure matching).
    HisMatchLite,
    /// CENET-lite (extrapolation, contrastive copy).
    Cenet,
    /// LogCL — this paper.
    LogCl,
}

impl BaselineKind {
    /// The full Table III roster (LogCL last, like the paper).
    pub const TABLE3: [BaselineKind; 11] = [
        Self::DistMult,
        Self::ConvTransE,
        Self::TTransE,
        Self::CyGNet,
        Self::ReNet,
        Self::ReGcn,
        Self::Cen,
        Self::Tirgn,
        Self::HisMatchLite,
        Self::Cenet,
        Self::LogCl,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::DistMult => "DistMult",
            Self::ConvTransE => "Conv-TransE",
            Self::TTransE => "TTransE",
            Self::CyGNet => "CyGNet",
            Self::ReNet => "RE-NET",
            Self::ReGcn => "RE-GCN",
            Self::Cen => "CEN",
            Self::Tirgn => "TiRGN",
            Self::HisMatchLite => "HisMatch",
            Self::Cenet => "CENET",
            Self::LogCl => "LogCL",
        }
    }

    /// Paper category, for table grouping.
    pub fn category(&self) -> &'static str {
        match self {
            Self::DistMult | Self::ConvTransE => "Static",
            Self::TTransE => "Interpolation",
            Self::LogCl => "Ours",
            _ => "Extrapolation",
        }
    }

    /// Builds the model for `ds` with shared size knobs. `m` is the local
    /// window, `dim` the embedding width, `channels` the decoder kernels.
    pub fn build(
        &self,
        ds: &TkgDataset,
        dim: usize,
        m: usize,
        channels: usize,
        seed: u64,
    ) -> Box<dyn TkgModel> {
        match self {
            Self::DistMult => Box::new(DistMult::new(ds, dim, seed)),
            Self::ConvTransE => Box::new(ConvTransEStatic::new(ds, dim, channels, seed)),
            Self::TTransE => Box::new(TTransE::new(ds, dim, seed)),
            Self::CyGNet => Box::new(CyGNet::new(ds, dim, 0.8, seed)),
            Self::ReNet => Box::new(ReNet::new(ds, dim, m, seed)),
            Self::ReGcn => Box::new(ReGcn::new(ds, dim, m, channels, seed)),
            Self::Cen => Box::new(CenLite::new(ds, dim, m, channels, seed)),
            Self::Tirgn => Box::new(TirgnLite::new(ds, dim, m, channels, seed)),
            Self::HisMatchLite => Box::new(HisMatch::new(ds, dim, m, seed)),
            Self::Cenet => Box::new(CenetLite::new(ds, dim, seed)),
            Self::LogCl => {
                let cfg = LogClConfig {
                    dim,
                    m,
                    channels,
                    seed,
                    time_bank: (dim / 4).max(4),
                    ..Default::default()
                };
                Box::new(LogCl::new(ds, cfg))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn roster_builds_every_model() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        for kind in BaselineKind::TABLE3 {
            let model = kind.build(&ds, 8, 2, 3, 1);
            assert_eq!(model.name(), kind.name());
            assert!(!kind.category().is_empty());
        }
    }

    #[test]
    fn categories_match_paper_blocks() {
        assert_eq!(BaselineKind::DistMult.category(), "Static");
        assert_eq!(BaselineKind::TTransE.category(), "Interpolation");
        assert_eq!(BaselineKind::ReGcn.category(), "Extrapolation");
        assert_eq!(BaselineKind::LogCl.category(), "Ours");
    }
}
