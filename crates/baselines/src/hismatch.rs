//! HisMatch-lite (Li et al., 2022) — historical structure matching, reduced
//! to its two-branch core:
//!
//! * a **candidate branch** encodes every entity's evolving state with the
//!   shared RE-GCN-style recurrent encoder (the "background" history);
//! * a **query branch** encodes the *query subject's own* historical
//!   neighborhood sequence with a GRU (what has been happening to `s`);
//! * a **matching head** fuses the query branch with the subject state and
//!   the query relation, and scores candidates by inner product against the
//!   candidate branch — reasoning as matching, HisMatch's distinctive
//!   framing, rather than plain decoding.

use logcl_gnn::GruCell;
use logcl_tensor::nn::{Embedding, Linear, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::{Snapshot, TkgDataset};

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::recurrent::RecurrentEncoder;
use crate::util::{group_by_time, logits_to_rows};

/// The HisMatch-lite model.
pub struct HisMatch {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    background: RecurrentEncoder,
    query_gru: GruCell,
    matcher: Linear,
    /// History window length.
    pub m: usize,
    rng: Rng,
}

impl HisMatch {
    /// Builds HisMatch-lite for `ds` with window `m`.
    pub fn new(ds: &TkgDataset, dim: usize, m: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let background = RecurrentEncoder::new(dim, 2, 0.2, &mut rng);
        let query_gru = GruCell::new(dim, &mut rng);
        let matcher = Linear::new(3 * dim, dim, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        background.register(&mut params, "background");
        query_gru.register(&mut params, "query_gru");
        matcher.register(&mut params, "matcher");
        Self {
            params,
            ent,
            rel,
            background,
            query_gru,
            matcher,
            m,
            rng,
        }
    }

    /// Per-subject neighborhood summary of one snapshot (mean of
    /// `r_emb + o_emb` over the subject's outgoing facts).
    fn neighborhood(&self, snap: &Snapshot, num_entities: usize) -> Var {
        if snap.is_empty() {
            return Var::constant(Tensor::zeros(&[num_entities, self.ent.dim()]));
        }
        let (s_idx, r_idx, o_idx) = snap.edge_index();
        let msg = self.rel.lookup(&r_idx).add(&self.ent.lookup(&o_idx));
        let mut counts = vec![0u32; num_entities];
        for &s in &s_idx {
            counts[s] += 1;
        }
        let inv: Vec<f32> = s_idx
            .iter()
            .map(|&s| 1.0 / counts[s].max(1) as f32)
            .collect();
        let weights = Var::constant(Tensor::from_vec(inv, &[s_idx.len(), 1]));
        msg.mul(&weights).scatter_add_rows(&s_idx, num_entities)
    }

    fn logits(
        &mut self,
        snapshots: &[Snapshot],
        queries: &[Quad],
        t: usize,
        training: bool,
    ) -> Var {
        let num_entities = self.ent.len();
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let start = t.saturating_sub(self.m);

        // Candidate branch: background evolution of every entity.
        let bg = self.background.encode(
            &self.ent.weight,
            &self.rel.weight,
            snapshots,
            t,
            self.m,
            training,
            &mut self.rng,
        );

        // Query branch: the subject's own neighborhood sequence.
        let mut hidden = Var::constant(Tensor::zeros(&[num_entities, self.ent.dim()]));
        for snap in &snapshots[start..t] {
            let n = self.neighborhood(snap, num_entities);
            hidden = self.query_gru.forward(&hidden, &n);
        }
        let q_hist = hidden.gather_rows(&s);

        // Matching head: fuse query-side evidence, score against candidates.
        let s_state = bg.h_final.gather_rows(&s);
        let r_state = bg.rel_final.gather_rows(&r);
        let fused = self
            .matcher
            .forward(&q_hist.concat_cols(&s_state).concat_cols(&r_state))
            .tanh();
        fused.matmul(&bg.h_final.transpose2())
    }
}

impl TkgModel for HisMatch {
    fn name(&self) -> String {
        "HisMatch".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let snapshots = ds.snapshots();
        let by_time = group_by_time(&ds.train, ds.num_times);
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            for (t, quads) in by_time.iter().enumerate().take(ds.train_end_time()) {
                if quads.is_empty() {
                    continue;
                }
                let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
                let loss1 = self
                    .logits(&snapshots, quads, t, true)
                    .cross_entropy(&targets1);
                let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ds.num_rels)).collect();
                let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();
                let loss2 = self
                    .logits(&snapshots, &inv, t, true)
                    .cross_entropy(&targets2);
                loss1.add(&loss2).backward();
                opt.clip_and_step(opts.grad_clip);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let logits = self.logits(ctx.snapshots, queries, ctx.t, false);
        logits_to_rows(&logits, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn trains_above_untrained_self() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = HisMatch::new(&ds, 16, 3, 7);
        let test = ds.test.clone();
        let before = evaluate(&mut model, &ds, &test);
        model.fit(&ds, &TrainOptions::epochs(4)).unwrap();
        let after = evaluate(&mut model, &ds, &test);
        assert!(
            after.mrr > before.mrr + 2.0,
            "{} -> {}",
            before.mrr,
            after.mrr
        );
    }

    #[test]
    fn branches_both_matter() {
        // With zero history (t = 0) the query branch is all-zero, but the
        // matcher must still produce finite scores.
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let snaps = ds.snapshots();
        let hist = logcl_tkg::HistoryIndex::new();
        let mut model = HisMatch::new(&ds, 8, 3, 7);
        let ctx = EvalContext {
            ds: &ds,
            snapshots: &snaps,
            history: &hist,
            t: 0,
        };
        let scores = model.score(&ctx, &[Quad::new(0, 0, 0, 0)]);
        assert!(scores[0].iter().all(|v| v.is_finite()));
    }
}
