//! The shared RE-GCN-style recurrent encoder: per-snapshot R-GCN
//! aggregation, entity GRU evolution and relation time-gate evolution over
//! the last `m` snapshots — *without* LogCL's periodic time encoding or
//! entity-aware attention. RE-GCN, CEN-lite and TiRGN-lite all build on it.

use logcl_gnn::aggregator::EdgeBatch;
use logcl_gnn::{AggregatorKind, GruCell, RelGnn, RelationEvolution};
use logcl_tensor::nn::{dropout, ParamSet};
use logcl_tensor::{Rng, Var};
use logcl_tkg::Snapshot;

/// The recurrent evolution encoder.
pub struct RecurrentEncoder {
    gnn: RelGnn,
    gru: GruCell,
    rel_evo: RelationEvolution,
    dropout_p: f32,
}

/// Final evolved matrices.
pub struct RecurrentEncoding {
    /// Entity matrix at the query time (`[E, D]`).
    pub h_final: Var,
    /// Relation matrix at the query time (`[2R, D]`).
    pub rel_final: Var,
}

impl RecurrentEncoder {
    /// Builds the encoder (`layers`-deep R-GCN, width `dim`).
    pub fn new(dim: usize, layers: usize, dropout_p: f32, rng: &mut Rng) -> Self {
        Self {
            gnn: RelGnn::new(AggregatorKind::Rgcn, dim, layers, rng),
            gru: GruCell::new(dim, rng),
            rel_evo: RelationEvolution::new(dim, rng),
            dropout_p,
        }
    }

    /// Evolves embeddings over snapshots `t_q − m .. t_q − 1`.
    #[allow(clippy::too_many_arguments)] // mirrors the encoder call signature used across models
    pub fn encode(
        &self,
        h0: &Var,
        rel0: &Var,
        snapshots: &[Snapshot],
        t_q: usize,
        m: usize,
        training: bool,
        rng: &mut Rng,
    ) -> RecurrentEncoding {
        let num_entities = h0.shape()[0];
        let start = t_q.saturating_sub(m);
        let mut h = h0.clone();
        let mut rel = rel0.clone();
        for snap in &snapshots[start..t_q] {
            let (s_idx, r_idx, o_idx) = snap.edge_index();
            let edges = EdgeBatch {
                subjects: &s_idx,
                relations: &r_idx,
                objects: &o_idx,
                num_entities,
            };
            let h_agg = self.gnn.forward(&h, &rel, &edges);
            let h_agg = dropout(&h_agg, self.dropout_p, training, rng);
            h = self.gru.forward(&h, &h_agg);
            rel = self.rel_evo.forward(&rel, rel0, &h, &s_idx, &r_idx);
        }
        RecurrentEncoding {
            h_final: h,
            rel_final: rel,
        }
    }

    /// Registers all sub-modules.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        self.gnn.register(params, &format!("{prefix}.gnn"));
        self.gru.register(params, &format!("{prefix}.gru"));
        self.rel_evo.register(params, &format!("{prefix}.rel_evo"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;
    use logcl_tkg::Quad;

    #[test]
    fn encode_shapes_and_grads() {
        let mut rng = Rng::seed(131);
        let enc = RecurrentEncoder::new(8, 2, 0.0, &mut rng);
        let h0 = Var::param(Tensor::randn(&[5, 8], 0.3, &mut rng));
        let rel0 = Var::param(Tensor::randn(&[4, 8], 0.3, &mut rng));
        let quads = vec![
            Quad::new(0, 0, 1, 0),
            Quad::new(1, 1, 2, 1),
            Quad::new(2, 0, 3, 2),
        ];
        let snaps = Snapshot::group_by_time(&quads, 4);
        let out = enc.encode(&h0, &rel0, &snaps, 3, 3, false, &mut rng);
        assert_eq!(out.h_final.shape(), vec![5, 8]);
        out.h_final.sum().backward();
        assert!(h0.grad().is_some());
    }

    #[test]
    fn zero_window_returns_initial() {
        let mut rng = Rng::seed(132);
        let enc = RecurrentEncoder::new(4, 1, 0.0, &mut rng);
        let h0 = Var::constant(Tensor::randn(&[3, 4], 0.3, &mut rng));
        let rel0 = Var::constant(Tensor::randn(&[2, 4], 0.3, &mut rng));
        let snaps = Snapshot::group_by_time(&[], 2);
        let out = enc.encode(&h0, &rel0, &snaps, 0, 3, false, &mut rng);
        assert_eq!(out.h_final.value().data(), h0.value().data());
        assert_eq!(out.rel_final.value().data(), rel0.value().data());
    }
}
