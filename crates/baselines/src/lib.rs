//! # logcl-baselines
//!
//! Re-implemented comparison models for Table III (and Figs. 2 & 10),
//! one strong representative per category of the paper's baseline taxonomy:
//!
//! | Category | Models |
//! |---|---|
//! | Static KG reasoning | [`DistMult`], [`ConvTransEStatic`] |
//! | TKG interpolation | [`TTransE`] |
//! | TKG extrapolation, global/copy | [`CyGNet`], [`CenetLite`] |
//! | TKG extrapolation, local recurrent | [`ReNet`], [`ReGcn`], [`CenLite`] |
//! | TKG extrapolation, local + global | [`TirgnLite`], [`HisMatch`] |
//!
//! The `-lite` suffix marks faithful-in-spirit reductions (see DESIGN.md):
//! CEN-lite ensembles RE-GCN rollouts over multiple history lengths (CEN's
//! core idea), TiRGN-lite gates RE-GCN's local scores with a global
//! repetition-history score (TiRGN's core idea), CENET-lite augments a
//! generation scorer with frequency features and a historical/non-historical
//! boundary classifier (CENET's core idea).
//!
//! Every model implements [`logcl_core::TkgModel`], so the same two-phase
//! time-aware-filtered evaluation driver produces every number.

pub mod cen;
pub mod cenet;
pub mod cygnet;
pub mod hismatch;
pub mod recurrent;
pub mod regcn;
pub mod registry;
pub mod renet;
pub mod static_models;
pub mod tirgn;
pub mod ttranse;
pub mod util;

pub use cen::CenLite;
pub use cenet::CenetLite;
pub use cygnet::CyGNet;
pub use hismatch::HisMatch;
pub use regcn::ReGcn;
pub use registry::BaselineKind;
pub use renet::ReNet;
pub use static_models::{ConvTransEStatic, DistMult};
pub use tirgn::TirgnLite;
pub use ttranse::TTransE;
