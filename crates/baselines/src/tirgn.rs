//! TiRGN-lite (Li et al., 2022) — time-guided recurrent graph network with
//! local-global historical patterns, reduced to its core idea and published
//! form: the final distribution is a fixed-weight mixture of the local
//! recurrent (RE-GCN-style) softmax and a *global* softmax of the same
//! scores restricted to the query's full repetition-history vocabulary
//! (`p = α·p_local + (1−α)·p_global`, TiRGN's history gate).

use logcl_gnn::ConvTransE;
use logcl_tensor::nn::{Embedding, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::recurrent::RecurrentEncoder;
use crate::util::{group_by_time, logits_to_rows};

/// The TiRGN-lite model.
pub struct TirgnLite {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    encoder: RecurrentEncoder,
    decoder: ConvTransE,
    /// Mixture weight α of the unrestricted local distribution
    /// (TiRGN's fixed history-gate weight).
    pub alpha: f32,
    /// History window length.
    pub m: usize,
    /// Gaussian perturbation of the initial entity representations
    /// (Fig. 2's robustness probe); `CLEAN` by default.
    pub noise: logcl_tkg::NoiseSpec,
    rng: Rng,
}

impl TirgnLite {
    /// Builds TiRGN-lite for `ds` with window `m`.
    pub fn new(ds: &TkgDataset, dim: usize, m: usize, channels: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let encoder = RecurrentEncoder::new(dim, 2, 0.2, &mut rng);
        let decoder = ConvTransE::new(dim, channels, 0.2, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        encoder.register(&mut params, "encoder");
        decoder.register(&mut params, "decoder");
        Self {
            params,
            ent,
            rel,
            encoder,
            decoder,
            alpha: 0.7,
            m,
            noise: logcl_tkg::NoiseSpec::CLEAN,
            rng,
        }
    }

    /// Mask penalty: 0 where `(s, r, o)` has occurred, −1e4 elsewhere
    /// (TiRGN's binary history vocabulary restricted to past answers).
    fn history_mask(&self, history: &HistoryIndex, queries: &[Quad]) -> Tensor {
        let e = self.ent.len();
        let mut feat = Tensor::full(&[queries.len(), e], -1e4);
        for (i, q) in queries.iter().enumerate() {
            for (o, _) in history.seen_objects(q.s, q.r) {
                feat.set2(i, o, 0.0);
            }
        }
        feat
    }

    fn probs(
        &mut self,
        snapshots: &[logcl_tkg::Snapshot],
        history: &HistoryIndex,
        queries: &[Quad],
        t: usize,
        training: bool,
    ) -> Var {
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let h0 = if self.noise.is_clean() {
            self.ent.weight.clone()
        } else {
            let shape = self.ent.weight.shape();
            let n = Tensor::randn(&shape, self.noise.std, &mut self.rng);
            self.ent.weight.add(&Var::constant(n))
        };
        let enc = self.encoder.encode(
            &h0,
            &self.rel.weight,
            snapshots,
            t,
            self.m,
            training,
            &mut self.rng,
        );
        let e_s = enc.h_final.gather_rows(&s);
        let e_r = enc.rel_final.gather_rows(&r);
        let decoded = self.decoder.decode(&e_s, &e_r, training, &mut self.rng);
        let local = self.decoder.score_all(&decoded, &enc.h_final);
        let p_local = local.softmax_rows();
        let masked = local.add(&Var::constant(self.history_mask(history, queries)));
        let p_global = masked.softmax_rows();
        p_local
            .scale(self.alpha)
            .add(&p_global.scale(1.0 - self.alpha))
    }

    /// NLL of the mixture distribution.
    fn nll(
        &mut self,
        snapshots: &[logcl_tkg::Snapshot],
        history: &HistoryIndex,
        queries: &[Quad],
        t: usize,
    ) -> Var {
        let probs = self.probs(snapshots, history, queries, t, true);
        let e = self.ent.len();
        let mut onehot = Tensor::zeros(&[queries.len(), e]);
        for (i, q) in queries.iter().enumerate() {
            onehot.set2(i, q.o, 1.0);
        }
        let picked = probs.add_scalar(1e-9).ln().mul(&Var::constant(onehot));
        picked.sum().scale(-1.0 / queries.len() as f32)
    }
}

impl TkgModel for TirgnLite {
    fn name(&self) -> String {
        "TiRGN".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let snapshots = ds.snapshots();
        let by_time = group_by_time(&ds.train, ds.num_times);
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            let mut history = HistoryIndex::new();
            for t in 0..ds.train_end_time() {
                if !by_time[t].is_empty() {
                    let quads = by_time[t].clone();
                    let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ds.num_rels)).collect();
                    let loss1 = self.nll(&snapshots, &history, &quads, t);
                    let loss2 = self.nll(&snapshots, &history, &inv, t);
                    loss1.add(&loss2).backward();
                    opt.clip_and_step(opts.grad_clip);
                }
                history.advance(&snapshots[t]);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let probs = self.probs(ctx.snapshots, ctx.history, queries, ctx.t, false);
        logits_to_rows(&probs, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn history_mask_marks_past_answers() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = TirgnLite::new(&ds, 8, 3, 3, 7);
        let mut history = HistoryIndex::new();
        history.advance(&logcl_tkg::Snapshot {
            t: 0,
            edges: vec![(0, 0, 2), (0, 0, 2)],
        });
        let f = model.history_mask(&history, &[Quad::new(0, 0, 0, 1)]);
        assert_eq!(f.at2(0, 2), 0.0);
        assert_eq!(f.at2(0, 3), -1e4);
    }

    #[test]
    fn trained_model_keeps_global_strength() {
        // The history feature alone is a strong prior; after a few epochs
        // the combined model must stay strong (the local decoder refines
        // the non-repetitive queries over longer training).
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = TirgnLite::new(&ds, 16, 3, 4, 7);
        let test = ds.test.clone();
        model.fit(&ds, &TrainOptions::epochs(3)).unwrap();
        let after = evaluate(&mut model, &ds, &test);
        assert!(after.mrr > 40.0, "TiRGN-lite too weak: {}", after.mrr);
    }
}
