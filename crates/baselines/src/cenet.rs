//! CENET-lite (Xu et al., 2023) — contrastive historical/non-historical
//! reasoning, reduced to its core ideas:
//!
//! 1. a generation scorer over query embeddings augmented with a trainable
//!    **frequency feature** `w_f · log(1 + count(s, r, o))`;
//! 2. a **boundary classifier** predicting whether the answer is a
//!    historical entity for `(s, r)`, trained jointly (BCE);
//! 3. CENET's mask-based inference: the classifier's verdict boosts either
//!    the historical or the non-historical candidate set at test time.

use logcl_tensor::nn::{Embedding, Linear, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::util::group_by_time;

/// Test-time boost applied to the candidate set the classifier favours.
const MASK_BOOST: f32 = 2.0;

/// The CENET-lite model.
pub struct CenetLite {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    gen_head: Linear,
    /// Weight of the log-frequency feature.
    pub w_freq: Var,
    classifier: Linear,
}

impl CenetLite {
    /// Builds CENET-lite for `ds`.
    pub fn new(ds: &TkgDataset, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let gen_head = Linear::new(2 * dim, dim, &mut rng);
        let w_freq = Var::param(Tensor::scalar(1.0));
        let classifier = Linear::new(2 * dim + 1, 1, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        gen_head.register(&mut params, "gen_head");
        params.register("w_freq", w_freq.clone());
        classifier.register(&mut params, "classifier");
        Self {
            params,
            ent,
            rel,
            gen_head,
            w_freq,
            classifier,
        }
    }

    fn query_emb(&self, queries: &[Quad]) -> Var {
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        self.ent.lookup(&s).concat_cols(&self.rel.lookup(&r))
    }

    /// Log-frequency features `log(1 + count)` per candidate, `[B, E]`.
    fn freq_features(&self, history: &HistoryIndex, queries: &[Quad]) -> Tensor {
        let e = self.ent.len();
        let mut feat = Tensor::zeros(&[queries.len(), e]);
        for (i, q) in queries.iter().enumerate() {
            for (o, c) in history.seen_objects(q.s, q.r) {
                feat.set2(i, o, (1.0 + c as f32).ln());
            }
        }
        feat
    }

    /// Generation + frequency logits, `[B, E]`.
    fn logits(&self, history: &HistoryIndex, queries: &[Quad]) -> Var {
        let emb = self.query_emb(queries);
        let gen = self
            .gen_head
            .forward(&emb)
            .matmul(&self.ent.weight.transpose2());
        let freq = Var::constant(self.freq_features(history, queries));
        gen.add(&freq.mul(&self.w_freq))
    }

    /// History-volume feature `log(1 + Σ count(s, r, ·))` per query, `[B, 1]`.
    ///
    /// Without it the boundary classifier is time-blind: it sees only the
    /// (s, r) embeddings, so it learns the label marginal of the training
    /// timeline (mostly "non-historical" — early timesteps have little
    /// history) and carries that prior to test time, where the full history
    /// makes most answers historical. CENET's classifier conditions on
    /// history-dependent features for exactly this reason.
    fn history_feature(history: &HistoryIndex, queries: &[Quad]) -> Tensor {
        let mut feat = Tensor::zeros(&[queries.len(), 1]);
        for (i, q) in queries.iter().enumerate() {
            let total: u32 = history.seen_objects(q.s, q.r).iter().map(|&(_, c)| c).sum();
            feat.set2(i, 0, (1.0 + total as f32).ln());
        }
        feat
    }

    /// Historical-boundary classifier logit per query, `[B, 1]`.
    fn boundary_logits(&self, history: &HistoryIndex, queries: &[Quad]) -> Var {
        let feat = Var::constant(Self::history_feature(history, queries));
        self.classifier
            .forward(&self.query_emb(queries).concat_cols(&feat))
    }

    fn joint_loss(&self, history: &HistoryIndex, queries: &[Quad]) -> Var {
        let targets: Vec<usize> = queries.iter().map(|q| q.o).collect();
        let ce = self.logits(history, queries).cross_entropy(&targets);
        // Boundary labels: answer is a historical object of (s, r)?
        let labels: Vec<f32> = queries
            .iter()
            .map(|q| {
                if history.count(q.s, q.r, q.o) > 0 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        let labels = Tensor::from_vec(labels, &[queries.len(), 1]);
        let bce = self
            .boundary_logits(history, queries)
            .bce_with_logits(&labels);
        ce.add(&bce)
    }
}

impl TkgModel for CenetLite {
    fn name(&self) -> String {
        "CENET".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let snapshots = ds.snapshots();
        let by_time = group_by_time(&ds.train, ds.num_times);
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            let mut history = HistoryIndex::new();
            for t in 0..ds.train_end_time() {
                if !by_time[t].is_empty() {
                    let quads = &by_time[t];
                    let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ds.num_rels)).collect();
                    let loss = self
                        .joint_loss(&history, quads)
                        .add(&self.joint_loss(&history, &inv));
                    loss.backward();
                    opt.clip_and_step(opts.grad_clip);
                }
                history.advance(&snapshots[t]);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let logits = self.logits(ctx.history, queries).to_tensor();
        let boundary = self.boundary_logits(ctx.history, queries).to_tensor();
        let e = self.ent.len();
        let mut rows = Vec::with_capacity(queries.len());
        for (i, q) in queries.iter().enumerate() {
            let mut row = logits.row(i).to_vec();
            // Mask-based inference: boost the candidate set the boundary
            // classifier favours.
            let p_hist = 1.0 / (1.0 + (-boundary.at2(i, 0)).exp());
            let mut is_hist = vec![false; e];
            for (o, _) in ctx.history.seen_objects(q.s, q.r) {
                is_hist[o] = true;
            }
            // Confidence-weighted mask: +MASK_BOOST on historical candidates
            // when the classifier is sure the answer is historical (p → 1),
            // -MASK_BOOST when sure it is novel (p → 0), and ~0 when
            // uncertain — an unsure classifier must not distort the ranking.
            let boost = MASK_BOOST * (2.0 * p_hist - 1.0);
            for (o, v) in row.iter_mut().enumerate() {
                if is_hist[o] {
                    *v += boost;
                }
            }
            rows.push(row);
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn freq_features_reflect_counts() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = CenetLite::new(&ds, 8, 7);
        let mut history = HistoryIndex::new();
        history.advance(&logcl_tkg::Snapshot {
            t: 0,
            edges: vec![(0, 0, 3), (0, 0, 3), (0, 0, 4)],
        });
        let f = model.freq_features(&history, &[Quad::new(0, 0, 0, 1)]);
        assert!((f.at2(0, 3) - 3.0f32.ln()).abs() < 1e-5);
        assert!((f.at2(0, 4) - 2.0f32.ln()).abs() < 1e-5);
        assert_eq!(f.at2(0, 0), 0.0);
    }

    #[test]
    fn training_improves() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = CenetLite::new(&ds, 16, 7);
        let test = ds.test.clone();
        let before = evaluate(&mut model, &ds, &test);
        model.fit(&ds, &TrainOptions::epochs(4)).unwrap();
        let after = evaluate(&mut model, &ds, &test);
        assert!(after.mrr > before.mrr, "{} -> {}", before.mrr, after.mrr);
    }

    #[test]
    fn boundary_classifier_produces_finite_logits() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = CenetLite::new(&ds, 8, 7);
        let b = model.boundary_logits(
            &HistoryIndex::new(),
            &[Quad::new(0, 0, 0, 0), Quad::new(1, 1, 0, 0)],
        );
        assert_eq!(b.shape(), vec![2, 1]);
        assert!(b.value().all_finite());
    }
}
