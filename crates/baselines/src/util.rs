//! Shared training scaffolding for the baselines.

use logcl_tensor::{Rng, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::TkgDataset;

/// Groups quads by timestamp into a dense vector of length `num_times`.
pub fn group_by_time(quads: &[Quad], num_times: usize) -> Vec<Vec<Quad>> {
    let mut by_t: Vec<Vec<Quad>> = vec![Vec::new(); num_times];
    for q in quads {
        by_t[q.t].push(*q);
    }
    by_t
}

/// Both-direction training instances: every fact plus its inverse, shuffled.
/// Static and interpolation models train on these directly (no timeline
/// walk needed).
pub fn bidirectional_instances(ds: &TkgDataset, rng: &mut Rng) -> Vec<Quad> {
    let mut all = ds.with_inverses(&ds.train);
    rng.shuffle(&mut all);
    all
}

/// Splits instances into minibatches of at most `batch` quads.
pub fn minibatches(quads: &[Quad], batch: usize) -> impl Iterator<Item = &[Quad]> {
    quads.chunks(batch.max(1))
}

/// Extracts per-query score rows from a `[B, E]` logits variable.
pub fn logits_to_rows(logits: &Var, n: usize) -> Vec<Vec<f32>> {
    let t = logits.to_tensor();
    (0..n).map(|i| t.row(i).to_vec()).collect()
}

/// Sum of squared entries per row of `ent` (`[E, D]`) as a `[1, E]`
/// constant-friendly variable: `‖e_o‖²` terms for distance-based scorers.
pub fn row_sq_norms(ent: &Var) -> Var {
    let sq = ent.mul(ent);
    let d = ent.shape()[1];
    let ones = Var::constant(logcl_tensor::Tensor::ones(&[d, 1]));
    sq.matmul(&ones).transpose2() // [1, E]
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;

    #[test]
    fn grouping_and_batching() {
        let quads = vec![
            Quad::new(0, 0, 1, 0),
            Quad::new(1, 0, 2, 0),
            Quad::new(2, 0, 0, 1),
        ];
        let g = group_by_time(&quads, 3);
        assert_eq!(g[0].len(), 2);
        assert_eq!(g[1].len(), 1);
        assert!(g[2].is_empty());
        let batches: Vec<_> = minibatches(&quads, 2).collect();
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].len(), 2);
    }

    #[test]
    fn bidirectional_doubles_and_inverts() {
        let ds =
            TkgDataset::from_quads("t", 3, 2, (0..10).map(|t| Quad::new(0, 1, 2, t)).collect());
        let mut rng = Rng::seed(1);
        let inst = bidirectional_instances(&ds, &mut rng);
        assert_eq!(inst.len(), ds.train.len() * 2);
        assert!(inst.iter().any(|q| q.r == 3), "inverse relation present");
    }

    #[test]
    fn row_sq_norms_values() {
        let ent = Var::constant(Tensor::from_vec(vec![3.0, 4.0, 1.0, 0.0], &[2, 2]));
        let n = row_sq_norms(&ent);
        assert_eq!(n.shape(), vec![1, 2]);
        assert_eq!(n.value().data(), &[25.0, 1.0]);
    }
}
