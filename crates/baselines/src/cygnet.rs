//! CyGNet (Zhu et al., 2021) — the copy-generation global baseline.
//!
//! Two modes score every candidate: **copy** restricts attention to the
//! one-hop historical answer vocabulary of `(s, r)` (a masked linear score),
//! **generation** scores all entities from the query embedding. The final
//! distribution is the fixed mixture `α·copy + (1−α)·generation`, trained
//! with negative log-likelihood.

use logcl_tensor::nn::{Embedding, Linear, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::util::group_by_time;

/// Mask value applied to non-historical candidates in copy mode.
const COPY_MASK: f32 = -100.0;

/// The CyGNet model.
pub struct CyGNet {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    gen_head: Linear,
    copy_head: Linear,
    /// Copy-mode mixture weight α (paper: 0.8).
    pub alpha: f32,
}

impl CyGNet {
    /// Builds CyGNet for `ds`.
    pub fn new(ds: &TkgDataset, dim: usize, alpha: f32, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let gen_head = Linear::new(2 * dim, dim, &mut rng);
        let copy_head = Linear::new(2 * dim, dim, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        gen_head.register(&mut params, "gen_head");
        copy_head.register(&mut params, "copy_head");
        Self {
            params,
            ent,
            rel,
            gen_head,
            copy_head,
            alpha,
        }
    }

    /// The combined probability distribution `[B, E]`.
    fn probs(&self, history: &HistoryIndex, queries: &[Quad]) -> Var {
        let b = queries.len();
        let e = self.ent.len();
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let query_emb = self.ent.lookup(&s).concat_cols(&self.rel.lookup(&r));

        let gen_logits = self
            .gen_head
            .forward(&query_emb)
            .matmul(&self.ent.weight.transpose2());
        let gen_probs = gen_logits.softmax_rows();

        // Copy vocabulary mask: 0 where (s, r, o) occurred, COPY_MASK else.
        let mut mask = vec![COPY_MASK; b * e];
        for (i, q) in queries.iter().enumerate() {
            for (o, _) in history.seen_objects(q.s, q.r) {
                mask[i * e + o] = 0.0;
            }
        }
        let copy_logits = self
            .copy_head
            .forward(&query_emb)
            .matmul(&self.ent.weight.transpose2())
            .add(&Var::constant(Tensor::from_vec(mask, &[b, e])));
        let copy_probs = copy_logits.softmax_rows();

        copy_probs
            .scale(self.alpha)
            .add(&gen_probs.scale(1.0 - self.alpha))
    }

    /// NLL of the targets under the mixture.
    fn nll(&self, history: &HistoryIndex, queries: &[Quad]) -> Var {
        let probs = self.probs(history, queries);
        let e = self.ent.len();
        let mut onehot = Tensor::zeros(&[queries.len(), e]);
        for (i, q) in queries.iter().enumerate() {
            onehot.set2(i, q.o, 1.0);
        }
        let picked = probs.add_scalar(1e-9).ln().mul(&Var::constant(onehot));
        picked.sum().scale(-1.0 / queries.len() as f32)
    }
}

impl TkgModel for CyGNet {
    fn name(&self) -> String {
        "CyGNet".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let snapshots = ds.snapshots();
        let by_time = group_by_time(&ds.train, ds.num_times);
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            let mut history = HistoryIndex::new();
            for t in 0..ds.train_end_time() {
                if !by_time[t].is_empty() {
                    let quads = &by_time[t];
                    let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ds.num_rels)).collect();
                    let loss = self.nll(&history, quads).add(&self.nll(&history, &inv));
                    loss.backward();
                    opt.clip_and_step(opts.grad_clip);
                }
                history.advance(&snapshots[t]);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let probs = self.probs(ctx.history, queries).to_tensor();
        (0..queries.len()).map(|i| probs.row(i).to_vec()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::{Snapshot, SyntheticPreset};

    #[test]
    fn copy_mode_prefers_historical_answers() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = CyGNet::new(&ds, 8, 0.8, 7);
        let mut history = HistoryIndex::new();
        history.advance(&Snapshot {
            t: 0,
            edges: vec![(0, 0, 5), (0, 0, 5), (0, 0, 7)],
        });
        let q = Quad::new(0, 0, 5, 1);
        let probs = model.probs(&history, &[q]).to_tensor();
        // Historical candidates 5 and 7 must dominate random entities even
        // untrained, because of the copy-mode mask.
        let p5 = probs.at2(0, 5);
        let p7 = probs.at2(0, 7);
        let p1 = probs.at2(0, 1);
        assert!(p5 > p1 * 5.0, "copy mask ineffective: {p5} vs {p1}");
        assert!(p7 > p1 * 5.0);
    }

    #[test]
    fn probabilities_normalise() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = CyGNet::new(&ds, 8, 0.5, 7);
        let history = HistoryIndex::new();
        let probs = model.probs(&history, &[Quad::new(0, 0, 0, 0)]).to_tensor();
        let total: f32 = probs.row(0).iter().sum();
        assert!((total - 1.0).abs() < 1e-4, "sum {total}");
    }

    #[test]
    fn copy_model_exploits_repetitions() {
        // The copy mask alone already ranks repeated facts highly; training
        // must keep that strength (the generation head refines within it).
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = CyGNet::new(&ds, 16, 0.8, 7);
        let test = ds.test.clone();
        let before = evaluate(&mut model, &ds, &test);
        model.fit(&ds, &TrainOptions::epochs(4)).unwrap();
        let after = evaluate(&mut model, &ds, &test);
        assert!(
            after.mrr > 30.0,
            "copy model should exploit repetitions: {}",
            after.mrr
        );
        assert!(
            after.mrr > before.mrr - 5.0,
            "{} -> {}",
            before.mrr,
            after.mrr
        );
    }
}
