//! TTransE (Leblay & Chekol, 2018) — the interpolation baseline:
//! `score(s, r, o, t) = −‖e_s + r + w_t − e_o‖²` with a per-timestamp
//! translation embedding `w_t`.
//!
//! Under extrapolation the test timestamps were never trained, so their
//! `w_t` rows stay at initialisation — exactly why interpolation models
//! underperform in Table III.

use logcl_tensor::nn::{Embedding, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::TkgDataset;

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::util::{bidirectional_instances, logits_to_rows, minibatches, row_sq_norms};

const BATCH: usize = 256;

/// The TTransE model.
pub struct TTransE {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    time: Embedding,
    rng: Rng,
}

impl TTransE {
    /// Builds the model for `ds` (time table spans the full horizon).
    pub fn new(ds: &TkgDataset, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let time = Embedding::new(ds.num_times.max(1), dim, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        time.register(&mut params, "time");
        Self {
            params,
            ent,
            rel,
            time,
            rng,
        }
    }

    /// `−‖x − e_o‖²` for all candidates, with the `‖x‖²` constant dropped:
    /// `2 x·e_o − ‖e_o‖²`.
    fn logits(&self, queries: &[Quad]) -> Var {
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let t: Vec<usize> = queries
            .iter()
            .map(|q| q.t.min(self.time.len() - 1))
            .collect();
        let x = self
            .ent
            .lookup(&s)
            .add(&self.rel.lookup(&r))
            .add(&self.time.lookup(&t));
        let dots = x.matmul(&self.ent.weight.transpose2()).scale(2.0);
        dots.sub(&row_sq_norms(&self.ent.weight))
    }
}

impl TkgModel for TTransE {
    fn name(&self) -> String {
        "TTransE".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            let inst = bidirectional_instances(ds, &mut self.rng);
            for batch in minibatches(&inst, BATCH) {
                let targets: Vec<usize> = batch.iter().map(|q| q.o).collect();
                let loss = self.logits(batch).cross_entropy(&targets);
                loss.backward();
                opt.clip_and_step(opts.grad_clip);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, _ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let logits = self.logits(queries);
        logits_to_rows(&logits, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn trains_above_chance_but_uses_time() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = TTransE::new(&ds, 16, 7);
        model.fit(&ds, &TrainOptions::epochs(6)).unwrap();
        let test = ds.test.clone();
        let m = evaluate(&mut model, &ds, &test);
        // Chance MRR on |E| entities is roughly ln(E)/E-scale; anything
        // above a few percent means the translation learned structure.
        assert!(m.mrr > 2.0, "MRR {}", m.mrr);
    }

    #[test]
    fn time_embedding_changes_scores_for_trained_times() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = TTransE::new(&ds, 8, 3);
        model.fit(&ds, &TrainOptions::epochs(2)).unwrap();
        let q1 = Quad::new(0, 0, 0, 1);
        let q2 = Quad::new(0, 0, 0, 5);
        let l = model.logits(&[q1, q2]).to_tensor();
        assert_ne!(l.row(0), l.row(1));
    }

    #[test]
    fn out_of_range_time_is_clamped() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = TTransE::new(&ds, 8, 3);
        let q = Quad::new(0, 0, 0, ds.num_times + 50);
        let l = model.logits(&[q]);
        assert!(l.value().all_finite());
    }
}
