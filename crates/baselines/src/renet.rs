//! RE-NET-lite (Jin et al., 2020) — autoregressive neighborhood-sequence
//! modelling, reduced to its core idea: for each query `(s, r, ?)` the
//! *sequence of s's one-hop neighborhood summaries* over the last `m`
//! snapshots is encoded by a GRU, and the final state (with the query
//! embeddings) decodes the answer. Unlike RE-GCN there is no global entity
//! matrix evolution — history enters purely through the per-subject
//! neighborhood sequence, which is RE-NET's distinctive design.

use logcl_gnn::GruCell;
use logcl_tensor::nn::{Embedding, Linear, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::{Snapshot, TkgDataset};

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::util::{group_by_time, logits_to_rows};

/// The RE-NET-lite model.
pub struct ReNet {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    gru: GruCell,
    head: Linear,
    /// History window length.
    pub m: usize,
}

impl ReNet {
    /// Builds RE-NET-lite for `ds` with window `m`.
    pub fn new(ds: &TkgDataset, dim: usize, m: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let gru = GruCell::new(dim, &mut rng);
        let head = Linear::new(3 * dim, dim, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        gru.register(&mut params, "gru");
        head.register(&mut params, "head");
        Self {
            params,
            ent,
            rel,
            gru,
            head,
            m,
        }
    }

    /// Neighborhood summary matrix for one snapshot: `N[s] = mean over
    /// (s, r, o) ∈ G_τ of (r_emb + o_emb)` (zero rows for inactive
    /// subjects).
    fn neighborhood(&self, snap: &Snapshot, num_entities: usize) -> Var {
        if snap.is_empty() {
            return Var::constant(Tensor::zeros(&[num_entities, self.ent.dim()]));
        }
        let (s_idx, r_idx, o_idx) = snap.edge_index();
        let msg = self.rel.lookup(&r_idx).add(&self.ent.lookup(&o_idx));
        let mut counts = vec![0u32; num_entities];
        for &s in &s_idx {
            counts[s] += 1;
        }
        let inv: Vec<f32> = s_idx
            .iter()
            .map(|&s| 1.0 / counts[s].max(1) as f32)
            .collect();
        let weights = Var::constant(Tensor::from_vec(inv, &[s_idx.len(), 1]));
        msg.mul(&weights).scatter_add_rows(&s_idx, num_entities)
    }

    /// Query logits: GRU over the subject's neighborhood sequence, decoded
    /// against every entity.
    fn logits(&mut self, snapshots: &[Snapshot], queries: &[Quad], t: usize) -> Var {
        let num_entities = self.ent.len();
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let start = t.saturating_sub(self.m);
        // GRU over neighborhood matrices, read out at query subjects.
        let mut hidden = Var::constant(Tensor::zeros(&[num_entities, self.ent.dim()]));
        for snap in &snapshots[start..t] {
            let n = self.neighborhood(snap, num_entities);
            hidden = self.gru.forward(&hidden, &n);
        }
        let h_s = hidden.gather_rows(&s);
        let e_s = self.ent.lookup(&s);
        let e_r = self.rel.lookup(&r);
        let feat = e_s.concat_cols(&e_r).concat_cols(&h_s);
        let decoded = self.head.forward(&feat).tanh();
        decoded.matmul(&self.ent.weight.transpose2())
    }
}

impl TkgModel for ReNet {
    fn name(&self) -> String {
        "RE-NET".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let snapshots = ds.snapshots();
        let by_time = group_by_time(&ds.train, ds.num_times);
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            for (t, quads) in by_time.iter().enumerate().take(ds.train_end_time()) {
                if quads.is_empty() {
                    continue;
                }
                let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
                let loss1 = self.logits(&snapshots, quads, t).cross_entropy(&targets1);
                let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ds.num_rels)).collect();
                let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();
                let loss2 = self.logits(&snapshots, &inv, t).cross_entropy(&targets2);
                loss1.add(&loss2).backward();
                opt.clip_and_step(opts.grad_clip);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let logits = self.logits(ctx.snapshots, queries, ctx.t);
        logits_to_rows(&logits, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn neighborhood_means_messages() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = ReNet::new(&ds, 4, 3, 7);
        let snap = Snapshot {
            t: 0,
            edges: vec![(0, 0, 1), (0, 0, 2), (3, 1, 1)],
        };
        let n = model.neighborhood(&snap, ds.num_entities);
        // Subject 0 averaged two messages; subject 3 got one; subject 1 none.
        let m01 = model.rel.lookup(&[0]).add(&model.ent.lookup(&[1]));
        let m02 = model.rel.lookup(&[0]).add(&model.ent.lookup(&[2]));
        let expected: Vec<f32> = m01
            .value()
            .row(0)
            .iter()
            .zip(m02.value().row(0))
            .map(|(a, b)| (a + b) / 2.0)
            .collect();
        for (got, want) in n.value().row(0).iter().zip(&expected) {
            assert!((got - want).abs() < 1e-5);
        }
        assert!(n.value().row(1).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn trains_above_untrained_self() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ReNet::new(&ds, 16, 3, 7);
        let test = ds.test.clone();
        let before = evaluate(&mut model, &ds, &test);
        model.fit(&ds, &TrainOptions::epochs(4)).unwrap();
        let after = evaluate(&mut model, &ds, &test);
        assert!(
            after.mrr > before.mrr + 2.0,
            "{} -> {}",
            before.mrr,
            after.mrr
        );
    }

    #[test]
    fn empty_history_scores_finitely() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let snaps = ds.snapshots();
        let hist = logcl_tkg::HistoryIndex::new();
        let mut model = ReNet::new(&ds, 8, 3, 7);
        let ctx = EvalContext {
            ds: &ds,
            snapshots: &snaps,
            history: &hist,
            t: 0,
        };
        let scores = model.score(&ctx, &[Quad::new(0, 0, 0, 0)]);
        assert!(scores[0].iter().all(|v| v.is_finite()));
    }
}
