//! Static KG baselines: DistMult and ConvTransE with the time dimension
//! stripped (the paper's "Static" block of Table III).

use logcl_gnn::ConvTransE;
use logcl_tensor::nn::{Embedding, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::TkgDataset;

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::util::{bidirectional_instances, logits_to_rows, minibatches};

const BATCH: usize = 256;

/// DistMult (Yang et al., 2015): `score(s, r, o) = Σ_d e_s[d] · r[d] · e_o[d]`.
pub struct DistMult {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    rng: Rng,
}

impl DistMult {
    /// Builds the factorisation model for `ds`.
    pub fn new(ds: &TkgDataset, dim: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        Self {
            params,
            ent,
            rel,
            rng,
        }
    }

    fn logits(&self, queries: &[Quad]) -> Var {
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let e_s = self.ent.lookup(&s);
        let e_r = self.rel.lookup(&r);
        e_s.mul(&e_r).matmul(&self.ent.weight.transpose2())
    }
}

impl TkgModel for DistMult {
    fn name(&self) -> String {
        "DistMult".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            let inst = bidirectional_instances(ds, &mut self.rng);
            for batch in minibatches(&inst, BATCH) {
                let targets: Vec<usize> = batch.iter().map(|q| q.o).collect();
                let loss = self.logits(batch).cross_entropy(&targets);
                loss.backward();
                opt.clip_and_step(opts.grad_clip);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, _ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let logits = self.logits(queries);
        logits_to_rows(&logits, queries.len())
    }
}

/// Conv-TransE (Shang et al., 2019) as a static scorer: the same decoder
/// LogCL uses, applied to time-agnostic embeddings.
pub struct ConvTransEStatic {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    decoder: ConvTransE,
    rng: Rng,
}

impl ConvTransEStatic {
    /// Builds the static decoder model for `ds`.
    pub fn new(ds: &TkgDataset, dim: usize, channels: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let decoder = ConvTransE::new(dim, channels, 0.2, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        decoder.register(&mut params, "decoder");
        Self {
            params,
            ent,
            rel,
            decoder,
            rng,
        }
    }

    fn logits(&mut self, queries: &[Quad], training: bool) -> Var {
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let e_s = self.ent.lookup(&s);
        let e_r = self.rel.lookup(&r);
        self.decoder
            .forward(&e_s, &e_r, &self.ent.weight, training, &mut self.rng)
    }
}

impl TkgModel for ConvTransEStatic {
    fn name(&self) -> String {
        "Conv-TransE".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        let mut opt = Adam::new(&self.params, opts.lr);
        for _ in 0..opts.epochs {
            let inst = bidirectional_instances(ds, &mut self.rng);
            for batch in minibatches(&inst, BATCH) {
                let targets: Vec<usize> = batch.iter().map(|q| q.o).collect();
                let loss = self.logits(batch, true).cross_entropy(&targets);
                loss.backward();
                opt.clip_and_step(opts.grad_clip);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, _ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let logits = self.logits(queries, false);
        logits_to_rows(&logits, queries.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::evaluate;
    use logcl_tkg::SyntheticPreset;

    fn tiny() -> TkgDataset {
        SyntheticPreset::Icews14.generate_scaled(0.15)
    }

    #[test]
    fn distmult_learns_some_structure() {
        // Static factorisation is *supposed* to be weak on these temporal
        // patterns (Table III's point); we only require that training moves
        // it above its untrained self.
        let ds = tiny();
        let mut model = DistMult::new(&ds, 16, 7);
        let test = ds.test.clone();
        let before = evaluate(&mut model, &ds, &test);
        model.fit(&ds, &TrainOptions::epochs(8)).unwrap();
        let after = evaluate(&mut model, &ds, &test);
        assert!(after.mrr > before.mrr, "{} -> {}", before.mrr, after.mrr);
    }

    #[test]
    fn convtranse_static_trains_and_scores() {
        let ds = tiny();
        let mut model = ConvTransEStatic::new(&ds, 16, 4, 7);
        model.fit(&ds, &TrainOptions::epochs(3)).unwrap();
        let test = ds.test.clone();
        let m = evaluate(&mut model, &ds, &test);
        assert!(m.mrr > 0.0 && m.mrr.is_finite());
        assert_eq!(m.count, 2 * test.len());
    }

    #[test]
    fn scores_are_query_dependent() {
        let ds = tiny();
        let mut model = DistMult::new(&ds, 8, 1);
        let snaps = ds.snapshots();
        let hist = logcl_tkg::HistoryIndex::new();
        let ctx = EvalContext {
            ds: &ds,
            snapshots: &snaps,
            history: &hist,
            t: 0,
        };
        let qs = vec![Quad::new(0, 0, 0, 0), Quad::new(1, 1, 0, 0)];
        let rows = model.score(&ctx, &qs);
        assert_ne!(rows[0], rows[1]);
    }
}
