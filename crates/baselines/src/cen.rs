//! CEN-lite (Li et al., 2022) — complex evolutional pattern learning,
//! reduced to its core idea: evolution is rolled out over *multiple history
//! lengths* and the per-length predictions are ensembled, so the model is
//! not tied to one fixed window. The published CEN additionally learns the
//! lengths curriculum-style; the lite version averages a short and a long
//! rollout sharing one encoder. Its online mode (Fig. 10) fine-tunes on each
//! evaluated timestamp.

use logcl_gnn::ConvTransE;
use logcl_tensor::nn::{Embedding, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::TkgDataset;

use logcl_core::api::{EvalContext, TkgModel, TrainOptions};
use logcl_core::{TrainError, TrainReport};

use crate::recurrent::RecurrentEncoder;
use crate::util::{group_by_time, logits_to_rows};

/// The CEN-lite model.
pub struct CenLite {
    /// All trainable parameters.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    encoder: RecurrentEncoder,
    decoder: ConvTransE,
    /// The ensembled history lengths (short, long).
    pub lengths: (usize, usize),
    rng: Rng,
    opt: Option<Adam>,
    lr: f32,
    grad_clip: f32,
}

impl CenLite {
    /// Builds CEN-lite with rollout lengths `(max(1, m/2), m)`.
    pub fn new(ds: &TkgDataset, dim: usize, m: usize, channels: usize, seed: u64) -> Self {
        let mut rng = Rng::seed(seed);
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let encoder = RecurrentEncoder::new(dim, 2, 0.2, &mut rng);
        let decoder = ConvTransE::new(dim, channels, 0.2, &mut rng);
        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        encoder.register(&mut params, "encoder");
        decoder.register(&mut params, "decoder");
        Self {
            params,
            ent,
            rel,
            encoder,
            decoder,
            lengths: ((m / 2).max(1), m.max(1)),
            rng,
            opt: None,
            lr: 1e-3,
            grad_clip: 5.0,
        }
    }

    /// Mean of the two rollout logits.
    fn ensemble_logits(
        &mut self,
        snapshots: &[logcl_tkg::Snapshot],
        queries: &[Quad],
        t: usize,
        training: bool,
    ) -> Var {
        let s: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let r: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let mut combined: Option<Var> = None;
        let (short, long) = self.lengths;
        for m in [short, long] {
            let enc = self.encoder.encode(
                &self.ent.weight,
                &self.rel.weight,
                snapshots,
                t,
                m,
                training,
                &mut self.rng,
            );
            let e_s = enc.h_final.gather_rows(&s);
            let e_r = enc.rel_final.gather_rows(&r);
            let decoded = self.decoder.decode(&e_s, &e_r, training, &mut self.rng);
            let logits = self.decoder.score_all(&decoded, &enc.h_final);
            combined = Some(match combined {
                Some(acc) => acc.add(&logits),
                None => logits,
            });
        }
        combined.expect("at least one length").scale(0.5)
    }

    fn step_on(
        &mut self,
        snapshots: &[logcl_tkg::Snapshot],
        quads: &[Quad],
        num_rels: usize,
        t: usize,
    ) {
        let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
        let loss1 = self
            .ensemble_logits(snapshots, quads, t, true)
            .cross_entropy(&targets1);
        let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(num_rels)).collect();
        let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();
        let loss2 = self
            .ensemble_logits(snapshots, &inv, t, true)
            .cross_entropy(&targets2);
        loss1.add(&loss2).backward();
        let clip = self.grad_clip;
        self.opt.as_mut().expect("optimizer").clip_and_step(clip);
    }
}

impl TkgModel for CenLite {
    fn name(&self) -> String {
        "CEN".into()
    }

    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError> {
        self.lr = opts.lr;
        self.grad_clip = opts.grad_clip;
        self.opt = Some(Adam::new(&self.params, opts.lr));
        let snapshots = ds.snapshots();
        let by_time = group_by_time(&ds.train, ds.num_times);
        for _ in 0..opts.epochs {
            for (t, quads) in by_time.iter().enumerate().take(ds.train_end_time()) {
                if quads.is_empty() {
                    continue;
                }
                let quads = quads.clone();
                self.step_on(&snapshots, &quads, ds.num_rels, t);
            }
        }
        Ok(TrainReport::default())
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let logits = self.ensemble_logits(ctx.snapshots, queries, ctx.t, false);
        logits_to_rows(&logits, queries.len())
    }

    fn online_update(&mut self, ctx: &EvalContext<'_>, quads: &[Quad]) {
        if quads.is_empty() {
            return;
        }
        if self.opt.is_none() {
            self.opt = Some(Adam::new(&self.params, self.lr * 0.5));
        }
        self.step_on(ctx.snapshots, quads, ctx.ds.num_rels, ctx.t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_core::{evaluate, evaluate_online};
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn ensemble_uses_both_lengths() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let model = CenLite::new(&ds, 8, 4, 3, 7);
        assert_eq!(model.lengths, (2, 4));
    }

    #[test]
    fn online_beats_or_matches_offline() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = CenLite::new(&ds, 16, 3, 4, 7);
        model.fit(&ds, &TrainOptions::epochs(2)).unwrap();
        let test = ds.test.clone();
        let offline = evaluate(&mut model, &ds, &test);
        // Re-train fresh for a fair online run.
        let mut model2 = CenLite::new(&ds, 16, 3, 4, 7);
        model2.fit(&ds, &TrainOptions::epochs(2)).unwrap();
        let online = evaluate_online(&mut model2, &ds, &test);
        assert!(online.mrr.is_finite() && offline.mrr.is_finite());
        // Online adaptation should not collapse performance.
        assert!(online.mrr > offline.mrr * 0.5);
    }
}
