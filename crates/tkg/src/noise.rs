//! Gaussian-noise specifications for the robustness studies (Figs. 2 & 5).
//!
//! The paper perturbs the *initial entity representations* with Gaussian
//! noise of increasing variance. The spec lives here (data layer) so every
//! experiment names noise levels consistently; the actual perturbation is
//! applied to embedding tensors by the model crates.

use serde::{Deserialize, Serialize};

/// Gaussian perturbation of entity embeddings: `h ← h + ε`,
/// `ε ~ N(0, std²)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Standard deviation of the additive noise (0 = clean input).
    pub std: f32,
}

impl NoiseSpec {
    /// No perturbation.
    pub const CLEAN: NoiseSpec = NoiseSpec { std: 0.0 };

    /// A spec with the given standard deviation.
    pub fn with_std(std: f32) -> Self {
        assert!(std >= 0.0, "noise std must be non-negative");
        Self { std }
    }

    /// Whether this spec actually perturbs anything.
    pub fn is_clean(&self) -> bool {
        self.std == 0.0
    }

    /// The intensity sweep used by Fig. 5 (variance steps 0, 0.5, 1, 2
    /// expressed as standard deviations).
    pub fn fig5_sweep() -> Vec<NoiseSpec> {
        [0.0, 0.5f32.sqrt(), 1.0, 2.0f32.sqrt()]
            .into_iter()
            .map(NoiseSpec::with_std)
            .collect()
    }
}

impl std::fmt::Display for NoiseSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "σ={:.3}", self.std)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_detection() {
        assert!(NoiseSpec::CLEAN.is_clean());
        assert!(!NoiseSpec::with_std(0.1).is_clean());
    }

    #[test]
    fn sweep_is_monotone() {
        let sweep = NoiseSpec::fig5_sweep();
        assert_eq!(sweep.len(), 4);
        assert!(sweep.windows(2).all(|w| w[0].std < w[1].std));
        assert!(sweep[0].is_clean());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_std_rejected() {
        NoiseSpec::with_std(-1.0);
    }
}
