//! The quadruple fact type `(subject, relation, object, time)`.

use serde::{Deserialize, Serialize};

/// Entity identifier (dense `0..num_entities`).
pub type EntityId = usize;
/// Relation identifier (dense; inverse relation of `r` is `r + num_rels`).
pub type RelId = usize;
/// Discrete timestamp identifier (dense `0..num_times`).
pub type Time = usize;

/// One temporal fact: the subject `s` is connected to the object `o` by
/// relation `r` at timestamp `t`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Quad {
    /// Subject entity.
    pub s: EntityId,
    /// Relation.
    pub r: RelId,
    /// Object entity.
    pub o: EntityId,
    /// Timestamp.
    pub t: Time,
}

impl Quad {
    /// Creates a quadruple.
    pub fn new(s: EntityId, r: RelId, o: EntityId, t: Time) -> Self {
        Self { s, r, o, t }
    }

    /// The inverse fact `(o, r⁻¹, s, t)`, where the inverse of relation `r`
    /// is encoded as `r + num_rels` (or back again if `r` is already an
    /// inverse).
    pub fn inverse(&self, num_rels: usize) -> Quad {
        let r = if self.r < num_rels {
            self.r + num_rels
        } else {
            self.r - num_rels
        };
        Quad {
            s: self.o,
            r,
            o: self.s,
            t: self.t,
        }
    }

    /// Whether `r` refers to an inverse relation given the base count.
    pub fn is_inverse(&self, num_rels: usize) -> bool {
        self.r >= num_rels
    }

    /// The triple part `(s, r, o)` without time.
    pub fn triple(&self) -> (EntityId, RelId, EntityId) {
        (self.s, self.r, self.o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_an_involution() {
        let q = Quad::new(3, 5, 7, 11);
        let inv = q.inverse(10);
        assert_eq!(inv, Quad::new(7, 15, 3, 11));
        assert!(inv.is_inverse(10));
        assert_eq!(inv.inverse(10), q);
    }

    #[test]
    fn triple_strips_time() {
        assert_eq!(Quad::new(1, 2, 3, 4).triple(), (1, 2, 3));
    }
}
