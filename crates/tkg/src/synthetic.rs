//! Synthetic TKG generators standing in for ICEWS14/ICEWS18/ICEWS05-15/GDELT.
//!
//! The real event dumps are license- and network-gated, so the benchmarks
//! are simulated by *planting the two historical pattern families the paper
//! is about* (Section I), at ~1/20 of the original scale:
//!
//! 1. **Global repetition/cyclic facts** — periodic `(s, r, o)` events (think
//!    recurring diplomatic meetings), each preceded by a rotating "hosting
//!    process" precursor fact one step earlier. The repetition is what copy/
//!    global models (CyGNet, CENET) exploit; the precursor gives the two-hop
//!    historical query subgraph genuinely more signal than one-hop answer
//!    copying — exactly the paper's motivation for its global encoder.
//! 2. **Local evolution chains** — walkers anchored at a subject whose
//!    object advances through a fixed successor permutation over an object
//!    pool while the relation cycles, emitting intermittently (every 1–3
//!    steps). Predicting these requires modelling recent-snapshot dynamics
//!    (RE-GCN-style), and the intermittence makes *query-relevant* snapshot
//!    selection (entity-aware attention) pay off, because the last relevant
//!    snapshot for a query subject is often not the most recent one (Fig. 1).
//! 3. **Uniform noise facts** — unpredictable background events.
//!
//! Each preset mirrors its benchmark's relative statistics (entity/relation
//! counts, horizon, density, noise share). Entities and relations carry
//! ICEWS-flavoured names so the Table VI case study reads like the paper's.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::dataset::TkgDataset;
use crate::quad::Quad;

/// The four benchmark stand-ins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyntheticPreset {
    /// ICEWS14 analogue: 1 year of daily political events.
    Icews14,
    /// ICEWS18 analogue: denser, more entities (harder).
    Icews18,
    /// ICEWS05-15 analogue: long horizon.
    Icews0515,
    /// GDELT analogue: fine granularity, heavy noise (hardest).
    Gdelt,
}

impl SyntheticPreset {
    /// All four presets in the paper's column order.
    pub const ALL: [SyntheticPreset; 4] =
        [Self::Icews14, Self::Icews18, Self::Icews0515, Self::Gdelt];

    /// Dataset name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Icews14 => "ICEWS14-s",
            Self::Icews18 => "ICEWS18-s",
            Self::Icews0515 => "ICEWS05-15-s",
            Self::Gdelt => "GDELT-s",
        }
    }

    /// The generator configuration for this preset.
    pub fn config(&self) -> SyntheticConfig {
        match self {
            Self::Icews14 => SyntheticConfig {
                name: self.name().into(),
                num_entities: 340,
                num_rels: 24,
                num_times: 120,
                periodic_triples: 140,
                chains: 30,
                chain_object_pool: 80,
                noise_per_t: 6,
                drift_prob: 0.5,
                seed: 1401,
            },
            Self::Icews18 => SyntheticConfig {
                name: self.name().into(),
                num_entities: 500,
                num_rels: 26,
                num_times: 120,
                periodic_triples: 240,
                chains: 56,
                chain_object_pool: 110,
                noise_per_t: 12,
                drift_prob: 0.65,
                seed: 1801,
            },
            Self::Icews0515 => SyntheticConfig {
                name: self.name().into(),
                num_entities: 760,
                num_rels: 25,
                num_times: 400,
                periodic_triples: 260,
                chains: 40,
                chain_object_pool: 130,
                noise_per_t: 7,
                drift_prob: 0.5,
                seed: 515,
            },
            Self::Gdelt => SyntheticConfig {
                name: self.name().into(),
                num_entities: 380,
                num_rels: 20,
                num_times: 300,
                periodic_triples: 120,
                chains: 28,
                chain_object_pool: 90,
                noise_per_t: 22,
                drift_prob: 0.6,
                seed: 2013,
            },
        }
    }

    /// Generates the dataset.
    pub fn generate(&self) -> TkgDataset {
        self.config().generate()
    }

    /// Generates a reduced-cost variant: entity/pattern counts and horizon
    /// scaled by `scale` ∈ (0, 1], for quick experiment runs.
    pub fn generate_scaled(&self, scale: f64) -> TkgDataset {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let mut cfg = self.config();
        let s = |x: usize, min: usize| ((x as f64 * scale).round() as usize).max(min);
        cfg.num_entities = s(cfg.num_entities, 40);
        cfg.num_times = s(cfg.num_times, 40);
        cfg.periodic_triples = s(cfg.periodic_triples, 20);
        cfg.chains = s(cfg.chains, 6);
        cfg.chain_object_pool = s(cfg.chain_object_pool, 15);
        cfg.noise_per_t = s(cfg.noise_per_t, 1);
        cfg.generate()
    }
}

/// Generator parameters; see module docs for the pattern semantics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Dataset name.
    pub name: String,
    /// Entity vocabulary size.
    pub num_entities: usize,
    /// Base relation vocabulary size (≥ 6).
    pub num_rels: usize,
    /// Number of snapshots.
    pub num_times: usize,
    /// Number of periodic `(s, r, o)` patterns.
    pub periodic_triples: usize,
    /// Number of evolution-chain walkers.
    pub chains: usize,
    /// Size of the entity pool chain objects move through.
    pub chain_object_pool: usize,
    /// Uniform noise facts per timestamp.
    pub noise_per_t: usize,
    /// Probability that a periodic pattern drifts (resamples its partner
    /// set) once mid-stream — the paper's "complex dynamic interactions"
    /// knob: ICEWS18/GDELT are more volatile.
    pub drift_prob: f64,
    /// Generator seed (datasets are fully deterministic).
    pub seed: u64,
}

impl SyntheticConfig {
    /// Generates the dataset (deterministic in `seed`).
    pub fn generate(&self) -> TkgDataset {
        assert!(
            self.num_rels >= 6,
            "need at least 6 relations for the pattern pools"
        );
        assert!(self.chain_object_pool <= self.num_entities);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut quads: Vec<Quad> = Vec::new();

        // Relation pools: first third periodic, second third precursor,
        // final third chains (noise draws from all).
        let third = (self.num_rels / 3).max(1);
        let periodic_rels = 0..third;
        let precursor_rels = third..(2 * third);
        let chain_rels: Vec<usize> = (2 * third..self.num_rels).collect();

        // ---------------------------------------------- periodic patterns
        // Recurring events whose object *rotates* through a small set, with
        // the upcoming object announced by a "hosting process" precursor
        // fact one step earlier (the paper's Fig. 1 / Section III-D
        // motivating example). Pure one-hop copy models see every rotation
        // member as equally historical; models that read the precursor
        // context (recent snapshots, or the two-hop query subgraph)
        // disambiguate which member fires now.
        for _ in 0..self.periodic_triples {
            let s = rng.gen_range(0..self.num_entities);
            let r = rng.gen_range(periodic_rels.clone());
            let period = rng.gen_range(4..13usize);
            let phase = rng.gen_range(0..period);
            // Wide rotation sets: the historical answer vocabulary of (s, r)
            // is large enough that knowing "the answer repeats" is weak on
            // its own (as on real ICEWS, where (s, r) pairs accumulate tens
            // of past objects) — the precursor context pins it down.
            let k = rng.gen_range(4..9usize);
            let mut objects: Vec<usize> = (0..k)
                .map(|_| rng.gen_range(0..self.num_entities))
                .collect();
            let r_pre = rng.gen_range(precursor_rels.clone());
            // How many steps before the event the "hosting process" fact
            // appears. With Δ > 1 the informative snapshot is *not* the most
            // recent one — precisely Fig. 1's scenario, which rewards
            // query-aware snapshot selection (entity-aware attention) over
            // uniform recency decay.
            let lead = rng.gen_range(1..4usize);
            // Half the patterns *drift*: the partner set is resampled once
            // mid-stream (political alignments change). Full-history
            // vocabularies then accumulate stale candidates, while models
            // reading the recent precursor context keep up — the concept
            // drift that separates history-as-mask from history-as-context.
            let drift_at = if rng.gen_bool(self.drift_prob) {
                Some(rng.gen_range(
                    self.num_times / 3..(2 * self.num_times / 3).max(1 + self.num_times / 3),
                ))
            } else {
                None
            };
            let mut occurrence = 0usize;
            for t in 0..self.num_times {
                if Some(t) == drift_at {
                    for o in objects.iter_mut() {
                        *o = rng.gen_range(0..self.num_entities);
                    }
                }
                if t % period == phase {
                    let j = occurrence % k;
                    quads.push(Quad::new(s, r, objects[j], t));
                    if t >= lead {
                        // The upcoming partner reaches out `lead` steps
                        // before the event. Pure one-hop copy models cannot
                        // use it (all rotation members look equally
                        // historical); recent-snapshot models can.
                        quads.push(Quad::new(objects[j], r_pre, s, t - lead));
                    }
                    occurrence += 1;
                }
            }
        }

        // ---------------------------------------------- evolution chains
        // One global successor permutation over the object pool.
        let mut pool: Vec<usize> = (0..self.chain_object_pool).collect();
        shuffle(&mut pool, &mut rng);
        let succ = |o: usize| pool[o % self.chain_object_pool];
        for _ in 0..self.chains {
            let s = rng.gen_range(0..self.num_entities);
            let stride = rng.gen_range(1..4usize); // emit every 1–3 steps
            let mut o = rng.gen_range(0..self.chain_object_pool);
            let mut rel_phase = rng.gen_range(0..chain_rels.len());
            let offset = rng.gen_range(0..stride);
            for t in 0..self.num_times {
                if t % stride == offset {
                    quads.push(Quad::new(s, chain_rels[rel_phase], o, t));
                    o = succ(o);
                    rel_phase = (rel_phase + 1) % chain_rels.len();
                }
            }
        }

        // --------------------------------------------------------- noise
        for t in 0..self.num_times {
            for _ in 0..self.noise_per_t {
                quads.push(Quad::new(
                    rng.gen_range(0..self.num_entities),
                    rng.gen_range(0..self.num_rels),
                    rng.gen_range(0..self.num_entities),
                    t,
                ));
            }
        }

        let mut ds = TkgDataset::from_quads(&self.name, self.num_entities, self.num_rels, quads);
        ds.entity_names = entity_names(self.num_entities);
        ds.rel_names = relation_names(self.num_rels);

        // Static KG information (the affiliation graph RE-GCN-lineage
        // models add on the ICEWS datasets): every entity belongs to one of
        // `num_entities / 25` blocs, anchored at low-id entities. Drawn from
        // an *independent* RNG stream so the dynamic facts above stay
        // byte-identical whether or not static facts are consumed.
        let mut static_rng = StdRng::seed_from_u64(self.seed ^ 0x5747_u64);
        let num_blocs = (self.num_entities / 25).max(2);
        ds.num_static_rels = 1;
        ds.static_facts = (0..self.num_entities)
            .map(|e| (e, 0usize, static_rng.gen_range(0..num_blocs)))
            .collect();
        ds
    }
}

fn shuffle(xs: &mut [usize], rng: &mut StdRng) {
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// ICEWS-flavoured entity names: a country/actor pool, suffixed when the
/// vocabulary outgrows it.
pub fn entity_names(n: usize) -> Vec<String> {
    const POOL: &[&str] = &[
        "China",
        "Iran",
        "Oman",
        "South_Africa",
        "South_Korea",
        "Malaysia",
        "France",
        "Kazakhstan",
        "Vietnam",
        "Iraq",
        "Qatar",
        "Portugal",
        "Guinea",
        "Tajikistan",
        "European_Parliament",
        "Food_and_Agriculture_Organization",
        "Ashraf_Ghani_Ahmadzai",
        "Russia",
        "Japan",
        "Germany",
        "Brazil",
        "India",
        "Nigeria",
        "Egypt",
        "Turkey",
        "Mexico",
        "Canada",
        "Australia",
        "Spain",
        "Italy",
        "Poland",
        "Sweden",
        "Norway",
        "Kenya",
        "Ethiopia",
        "Ghana",
        "Chile",
        "Peru",
        "Colombia",
        "Thailand",
    ];
    (0..n)
        .map(|i| {
            let base = POOL[i % POOL.len()];
            if i < POOL.len() {
                base.to_string()
            } else {
                format!("{base}_{}", i / POOL.len())
            }
        })
        .collect()
}

/// ICEWS-flavoured (CAMEO-style) relation names.
pub fn relation_names(n: usize) -> Vec<String> {
    const POOL: &[&str] = &[
        "Sign_formal_agreement",
        "Engage_in_diplomatic_cooperation",
        "Cooperate",
        "Make_a_visit",
        "Host_a_visit",
        "Consult",
        "Make_statement",
        "Express_intent_to_meet",
        "Provide_aid",
        "Criticize_or_denounce",
        "Make_an_appeal_or_request",
        "Engage_in_negotiation",
        "Praise_or_endorse",
        "Demand",
        "Threaten",
        "Impose_sanctions",
        "Reduce_relations",
        "Accuse",
        "Investigate",
        "Reject",
        "Grant_diplomatic_recognition",
        "Return_or_release",
        "Mediate",
        "Yield",
        "Share_intelligence",
        "Form_alliance",
    ];
    (0..n)
        .map(|i| {
            let base = POOL[i % POOL.len()];
            if i < POOL.len() {
                base.to_string()
            } else {
                format!("{base}_{}", i / POOL.len())
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rustc_hash::FxHashMap;

    #[test]
    fn generation_is_deterministic() {
        let a = SyntheticPreset::Icews14.generate();
        let b = SyntheticPreset::Icews14.generate();
        assert_eq!(a.train, b.train);
        assert_eq!(a.test, b.test);
    }

    #[test]
    fn presets_have_expected_scale() {
        let ds = SyntheticPreset::Icews14.generate();
        assert_eq!(ds.num_entities, 340);
        assert_eq!(ds.num_rels, 24);
        assert_eq!(ds.num_times, 120);
        assert!(ds.train.len() > 3000, "train size {}", ds.train.len());
        assert!(!ds.valid.is_empty() && !ds.test.is_empty());
    }

    #[test]
    fn all_ids_in_range() {
        for preset in SyntheticPreset::ALL {
            let ds = preset.generate_scaled(0.3);
            for q in ds.all_quads() {
                assert!(q.s < ds.num_entities && q.o < ds.num_entities);
                assert!(q.r < ds.num_rels);
                assert!(q.t < ds.num_times);
            }
        }
    }

    #[test]
    fn repetition_pattern_present() {
        // A substantial share of test facts must have occurred before (the
        // global repetition signal the copy models rely on).
        let ds = SyntheticPreset::Icews14.generate();
        let mut seen: FxHashMap<(usize, usize, usize), usize> = FxHashMap::default();
        for q in &ds.train {
            *seen.entry(q.triple()).or_default() += 1;
        }
        let repeated = ds
            .test
            .iter()
            .filter(|q| seen.contains_key(&q.triple()))
            .count();
        let share = repeated as f64 / ds.test.len() as f64;
        assert!(share > 0.25, "repetition share {share}");
        assert!(
            share < 0.95,
            "dataset must not be pure repetition, got {share}"
        );
    }

    #[test]
    fn evolution_pattern_present() {
        // Some test facts must be novel triples (never seen in training) —
        // the local-evolution signal copy models cannot answer.
        let ds = SyntheticPreset::Icews14.generate();
        let seen: rustc_hash::FxHashSet<_> = ds.train.iter().map(|q| q.triple()).collect();
        let novel = ds
            .test
            .iter()
            .filter(|q| !seen.contains(&q.triple()))
            .count();
        assert!(novel as f64 / ds.test.len() as f64 > 0.05);
    }

    #[test]
    fn names_cover_vocabulary() {
        let ds = SyntheticPreset::Icews14.generate();
        assert_eq!(ds.entity_names.len(), ds.num_entities);
        assert_eq!(ds.rel_names.len(), ds.num_rels);
        assert_eq!(ds.entity_name(0), "China");
        assert!(ds.rel_name(ds.num_rels).ends_with("^-1"));
        // Names are unique.
        let set: std::collections::HashSet<_> = ds.entity_names.iter().collect();
        assert_eq!(set.len(), ds.num_entities);
    }

    #[test]
    fn scaled_generation_shrinks() {
        let full = SyntheticPreset::Icews18.generate();
        let small = SyntheticPreset::Icews18.generate_scaled(0.4);
        assert!(small.num_entities < full.num_entities);
        assert!(small.train.len() < full.train.len());
        assert!(small.num_times < full.num_times);
    }
}
