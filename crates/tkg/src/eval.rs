//! Time-aware filtered evaluation: MRR and Hits@{1,3,10} (Section IV-B1).
//!
//! Under the *time-aware filtered* setting, when ranking the true object of
//! a query `(s, r, ?, t)` we remove from the candidate list only the other
//! objects `o'` such that `(s, r, o', t)` is a true fact **at the same
//! timestamp** — never facts from other timestamps (that would leak the
//! static filter criticised by recent work).

use std::collections::BTreeSet;

use crate::quad::Quad;

/// Aggregate ranking metrics, reported as percentages like the paper.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    /// Mean reciprocal rank × 100.
    pub mrr: f64,
    /// Hits@1 × 100.
    pub hits1: f64,
    /// Hits@3 × 100.
    pub hits3: f64,
    /// Hits@10 × 100.
    pub hits10: f64,
    /// Number of ranked queries.
    pub count: usize,
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MRR {:5.2}  H@1 {:5.2}  H@3 {:5.2}  H@10 {:5.2}  (n={})",
            self.mrr, self.hits1, self.hits3, self.hits10, self.count
        )
    }
}

/// Streaming accumulator of ranks.
///
/// ```
/// use logcl_tkg::RankAccumulator;
/// let mut acc = RankAccumulator::new();
/// acc.push(1);
/// acc.push(4);
/// let m = acc.finish();
/// assert_eq!(m.hits1, 50.0);
/// assert_eq!(m.hits10, 100.0);
/// assert!((m.mrr - 62.5).abs() < 1e-9); // (1 + 1/4) / 2
/// ```
#[derive(Debug, Default, Clone)]
pub struct RankAccumulator {
    sum_rr: f64,
    h1: usize,
    h3: usize,
    h10: usize,
    n: usize,
}

impl RankAccumulator {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one 1-based rank.
    pub fn push(&mut self, rank: usize) {
        assert!(rank >= 1, "ranks are 1-based");
        self.sum_rr += 1.0 / rank as f64;
        if rank <= 1 {
            self.h1 += 1;
        }
        if rank <= 3 {
            self.h3 += 1;
        }
        if rank <= 10 {
            self.h10 += 1;
        }
        self.n += 1;
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RankAccumulator) {
        self.sum_rr += other.sum_rr;
        self.h1 += other.h1;
        self.h3 += other.h3;
        self.h10 += other.h10;
        self.n += other.n;
    }

    /// Number of queries recorded.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Final metrics (percentages).
    pub fn finish(&self) -> Metrics {
        if self.n == 0 {
            return Metrics::default();
        }
        let n = self.n as f64;
        Metrics {
            mrr: 100.0 * self.sum_rr / n,
            hits1: 100.0 * self.h1 as f64 / n,
            hits3: 100.0 * self.h3 as f64 / n,
            hits10: 100.0 * self.h10 as f64 / n,
            count: self.n,
        }
    }
}

/// Computes the time-aware filtered 1-based rank of the true object of `q`
/// within `scores` (one score per candidate entity). `truth_at_t` is the set
/// of `(s, r, o)` facts true at the query timestamp, inverse-closed.
pub fn rank_time_aware(
    scores: &[f32],
    q: &Quad,
    truth_at_t: &BTreeSet<(usize, usize, usize)>,
) -> usize {
    let target = q.o;
    let target_score = scores[target];
    let mut rank = 1usize;
    for (o, &sc) in scores.iter().enumerate() {
        if o == target {
            continue;
        }
        if truth_at_t.contains(&(q.s, q.r, o)) {
            continue; // filtered: another true answer at the same timestamp
        }
        if sc > target_score {
            rank += 1;
        }
    }
    rank
}

/// Raw (unfiltered) rank, for diagnostics.
pub fn rank_raw(scores: &[f32], target: usize) -> usize {
    let target_score = scores[target];
    1 + scores
        .iter()
        .enumerate()
        .filter(|&(o, &sc)| o != target && sc > target_score)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_math() {
        let mut acc = RankAccumulator::new();
        acc.push(1);
        acc.push(2);
        acc.push(11);
        let m = acc.finish();
        assert_eq!(m.count, 3);
        assert!((m.mrr - 100.0 * (1.0 + 0.5 + 1.0 / 11.0) / 3.0).abs() < 1e-9);
        assert!((m.hits1 - 100.0 / 3.0).abs() < 1e-9);
        assert!((m.hits3 - 200.0 / 3.0).abs() < 1e-9);
        assert!((m.hits10 - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = RankAccumulator::new();
        a.push(1);
        let mut b = RankAccumulator::new();
        b.push(4);
        b.push(20);
        let mut c = RankAccumulator::new();
        for r in [1, 4, 20] {
            c.push(r);
        }
        a.merge(&b);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn empty_metrics_are_zero() {
        assert_eq!(RankAccumulator::new().finish(), Metrics::default());
    }

    #[test]
    fn filtered_rank_removes_same_time_answers() {
        // Candidates 0..4; query (s=7, r=1, o=2, t=5). Scores rank entity 0
        // first, then 1, then 2.
        let scores = vec![0.9, 0.8, 0.7, 0.1];
        let q = Quad::new(7, 1, 2, 5);
        let mut truth = BTreeSet::new();
        assert_eq!(rank_time_aware(&scores, &q, &truth), 3);
        // Entity 0 is another true answer at t=5 -> filtered out.
        truth.insert((7, 1, 0));
        assert_eq!(rank_time_aware(&scores, &q, &truth), 2);
        // Facts with a different relation are not filtered.
        truth.clear();
        truth.insert((7, 0, 0));
        assert_eq!(rank_time_aware(&scores, &q, &truth), 3);
    }

    #[test]
    fn target_never_filtered_even_if_true() {
        let scores = vec![0.9, 0.1];
        let q = Quad::new(0, 0, 1, 0);
        let mut truth = BTreeSet::new();
        truth.insert((0, 0, 1)); // the target itself
        assert_eq!(rank_time_aware(&scores, &q, &truth), 2);
    }

    #[test]
    fn raw_rank_counts_all_better() {
        let scores = vec![0.5, 0.9, 0.7];
        assert_eq!(rank_raw(&scores, 0), 3);
        assert_eq!(rank_raw(&scores, 1), 1);
    }

    #[test]
    fn ties_resolve_optimistically() {
        // Equal scores do not outrank the target (strictly-greater rule).
        let scores = vec![0.5, 0.5, 0.5];
        assert_eq!(rank_raw(&scores, 1), 1);
    }
}
