//! Global history: the repetition index and the paper's two-hop historical
//! query subgraph (Section III-D).
//!
//! [`HistoryIndex`] is advanced snapshot-by-snapshot so that, when queries at
//! time `t_q` are answered, it contains exactly the facts with `t < t_q` —
//! the extrapolation setting's information boundary.

use std::collections::{BTreeMap, BTreeSet};

use crate::quad::{EntityId, RelId, Time};
use crate::snapshot::Snapshot;

/// A static (time-stripped) subgraph of historical facts relevant to one
/// query, per the paper: one-hop facts of the query subject united with
/// one-hop facts of every historical answer object of `(s, r)`.
#[derive(Debug, Clone, Default)]
pub struct QuerySubgraph {
    /// Deduplicated triples, oldest first.
    pub edges: Vec<(EntityId, RelId, EntityId)>,
}

impl QuerySubgraph {
    /// Entities participating in the subgraph, sorted and deduplicated.
    pub fn entities(&self) -> Vec<EntityId> {
        let mut ents: Vec<EntityId> = self.edges.iter().flat_map(|&(s, _, o)| [s, o]).collect();
        ents.sort_unstable();
        ents.dedup();
        ents
    }

    /// Number of triples.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the query has no usable history.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Cumulative index of all facts seen strictly before the current time.
///
/// ```
/// use logcl_tkg::{HistoryIndex, Snapshot};
/// let mut idx = HistoryIndex::new();
/// idx.advance(&Snapshot { t: 0, edges: vec![(0, 1, 2), (0, 1, 2), (2, 0, 3)] });
/// assert_eq!(idx.count(0, 1, 2), 2);
/// assert_eq!(idx.seen_objects(0, 1), vec![(2, 2)]);
/// let g = idx.query_subgraph(0, 1, 10); // one-hop of 0 ∪ one-hop of answer 2
/// assert_eq!(g.entities(), vec![0, 2, 3]);
/// ```
#[derive(Debug, Default)]
pub struct HistoryIndex {
    /// `(s, r)` → object → occurrence count (the CyGNet/CENET "copy
    /// vocabulary" and the subgraph seed). Ordered maps so every iteration
    /// order is a function of the keys, never of hasher internals.
    sr_objects: BTreeMap<(EntityId, RelId), BTreeMap<EntityId, u32>>,
    /// Entity → incident triples in first-seen order (for subgraph
    /// sampling); the set deduplicates.
    incident: BTreeMap<EntityId, Vec<(EntityId, RelId, EntityId)>>,
    seen: BTreeSet<(EntityId, RelId, EntityId)>,
    /// Next timestamp expected by [`HistoryIndex::advance`].
    t_next: Time,
}

impl HistoryIndex {
    /// An empty index (no history yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an index covering every snapshot in `snaps` (must be
    /// inverse-closed if inverse queries will be asked).
    pub fn build(snaps: &[Snapshot]) -> Self {
        let mut idx = Self::new();
        for s in snaps {
            idx.advance(s);
        }
        idx
    }

    /// Absorbs one snapshot. Snapshots must be fed in time order.
    pub fn advance(&mut self, snap: &Snapshot) {
        assert!(
            snap.t >= self.t_next,
            "snapshots must be advanced in time order (got {}, expected >= {})",
            snap.t,
            self.t_next
        );
        self.t_next = snap.t + 1;
        for &(s, r, o) in &snap.edges {
            *self
                .sr_objects
                .entry((s, r))
                .or_default()
                .entry(o)
                .or_insert(0) += 1;
            if self.seen.insert((s, r, o)) {
                self.incident.entry(s).or_default().push((s, r, o));
                self.incident.entry(o).or_default().push((s, r, o));
            }
        }
    }

    /// Timestamps covered so far (facts with `t <` this are indexed).
    pub fn horizon(&self) -> Time {
        self.t_next
    }

    /// Historical answer objects of `(s, r)` with their frequencies,
    /// ascending by object id (BTreeMap iteration order — no sort needed).
    pub fn seen_objects(&self, s: EntityId, r: RelId) -> Vec<(EntityId, u32)> {
        self.sr_objects
            .get(&(s, r))
            .map(|m| m.iter().map(|(&o, &c)| (o, c)).collect())
            .unwrap_or_default()
    }

    /// Total number of occurrences of `(s, r, o)` in history.
    pub fn count(&self, s: EntityId, r: RelId, o: EntityId) -> u32 {
        self.sr_objects
            .get(&(s, r))
            .and_then(|m| m.get(&o))
            .copied()
            .unwrap_or(0)
    }

    /// Whether the entity has appeared in any historical fact.
    pub fn entity_seen(&self, e: EntityId) -> bool {
        self.incident.contains_key(&e)
    }

    /// The paper's historical query subgraph for query `(s, r, ?)`:
    /// `G'_g = G'_g1 ∪ G'_g2` where `G'_g1` are one-hop facts containing
    /// `s` and `G'_g2` are one-hop facts containing each historical answer
    /// object of `(s, r)`. At most `max_edges` triples are kept, preferring
    /// the most recently first-seen ones.
    pub fn query_subgraph(&self, s: EntityId, r: RelId, max_edges: usize) -> QuerySubgraph {
        let mut edges: Vec<(EntityId, RelId, EntityId)> = Vec::new();
        let mut dedup: BTreeSet<(EntityId, RelId, EntityId)> = BTreeSet::new();
        let push_incident = |e: EntityId, edges: &mut Vec<_>, dedup: &mut BTreeSet<_>| {
            if let Some(list) = self.incident.get(&e) {
                for &tr in list {
                    if dedup.insert(tr) {
                        edges.push(tr);
                    }
                }
            }
        };
        push_incident(s, &mut edges, &mut dedup);
        for (o, _) in self.seen_objects(s, r) {
            push_incident(o, &mut edges, &mut dedup);
        }
        if edges.len() > max_edges {
            // Keep the most recent facts (first-seen order is time order).
            edges.drain(..edges.len() - max_edges);
        }
        QuerySubgraph { edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snaps() -> Vec<Snapshot> {
        vec![
            Snapshot {
                t: 0,
                edges: vec![(0, 0, 1), (1, 1, 2)],
            },
            Snapshot {
                t: 1,
                edges: vec![(0, 0, 1), (2, 0, 3)],
            },
            Snapshot {
                t: 2,
                edges: vec![(1, 0, 4), (4, 1, 5)],
            },
        ]
    }

    #[test]
    fn counts_accumulate_over_time() {
        let idx = HistoryIndex::build(&snaps());
        assert_eq!(idx.count(0, 0, 1), 2);
        assert_eq!(idx.count(2, 0, 3), 1);
        assert_eq!(idx.count(9, 9, 9), 0);
        assert_eq!(idx.horizon(), 3);
    }

    #[test]
    fn seen_objects_sorted() {
        let mut idx = HistoryIndex::new();
        idx.advance(&Snapshot {
            t: 0,
            edges: vec![(0, 0, 5), (0, 0, 2), (0, 0, 5)],
        });
        assert_eq!(idx.seen_objects(0, 0), vec![(2, 1), (5, 2)]);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn advance_enforces_order() {
        let mut idx = HistoryIndex::new();
        idx.advance(&Snapshot::empty(2));
        idx.advance(&Snapshot::empty(1));
    }

    #[test]
    fn subgraph_is_two_hop_union() {
        let idx = HistoryIndex::build(&snaps());
        // Query (0, 0, ?): one-hop of 0 = {(0,0,1)}; historical answers of
        // (0,0) = {1}; one-hop of 1 = {(0,0,1), (1,1,2), (1,0,4)}.
        let g = idx.query_subgraph(0, 0, 100);
        let set: BTreeSet<_> = g.edges.iter().copied().collect();
        assert!(set.contains(&(0, 0, 1)));
        assert!(set.contains(&(1, 1, 2)));
        assert!(set.contains(&(1, 0, 4)));
        // Facts not touching 0 or answer 1 are excluded.
        assert!(!set.contains(&(4, 1, 5)));
        assert!(!set.contains(&(2, 0, 3)));
        assert_eq!(g.entities(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn subgraph_caps_to_most_recent() {
        let idx = HistoryIndex::build(&snaps());
        let g = idx.query_subgraph(0, 0, 2);
        assert_eq!(g.len(), 2);
        // The oldest triple (0,0,1) was dropped first.
        assert!(!g.edges.contains(&(0, 0, 1)));
    }

    #[test]
    fn unseen_query_yields_empty_subgraph() {
        let idx = HistoryIndex::build(&snaps());
        assert!(idx.query_subgraph(9, 0, 10).is_empty());
        assert!(!idx.entity_seen(9));
        assert!(idx.entity_seen(4));
    }
}
