//! # logcl-tkg
//!
//! Temporal-knowledge-graph data structures and evaluation machinery for the
//! LogCL (ICDE 2024) reproduction:
//!
//! * [`Quad`] / [`TkgDataset`] — quadruple facts `(s, r, o, t)`, train/valid/
//!   test splits, inverse-relation closure and a TSV loader compatible with
//!   the public ICEWS/GDELT dumps.
//! * [`Snapshot`] — the per-timestamp multi-relational graph `G_t` with
//!   degree bookkeeping for GCN normalisation.
//! * [`synthetic`] — pattern-planting generators standing in for the four
//!   benchmark datasets (see DESIGN.md for the substitution argument), with
//!   presets mirroring ICEWS14/ICEWS18/ICEWS05-15/GDELT statistics at
//!   reduced scale.
//! * [`history`] — the global repetition index and the paper's two-hop
//!   historical query-subgraph sampler (Section III-D).
//! * [`eval`] — time-aware filtered MRR / Hits@k exactly as defined in
//!   Section IV-B1.
//! * [`noise`] — Gaussian perturbation specs for the robustness studies
//!   (Figs. 2 and 5).
//! * [`extension`] — the serializable ingestion delta (appended facts +
//!   advanced horizon) used by the serving stack's compaction snapshots.

pub mod dataset;
pub mod eval;
pub mod extension;
pub mod history;
pub mod noise;
pub mod quad;
pub mod snapshot;
pub mod synthetic;

pub use dataset::{DatasetError, TkgDataset};
pub use eval::{Metrics, RankAccumulator};
pub use extension::{DatasetExtension, ExtensionError};
pub use history::{HistoryIndex, QuerySubgraph};
pub use noise::NoiseSpec;
pub use quad::Quad;
pub use snapshot::Snapshot;
pub use synthetic::{SyntheticConfig, SyntheticPreset};
