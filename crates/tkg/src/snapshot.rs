//! Per-timestamp KG snapshots `G_t` and the adjacency bookkeeping needed by
//! the relational GCN aggregators.

use std::collections::BTreeMap;

use crate::quad::{EntityId, Quad, RelId, Time};

/// The multi-relational graph of all facts valid at one timestamp.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// The timestamp.
    pub t: Time,
    /// Directed labelled edges `(s, r, o)`, inverse edges included when the
    /// snapshot was built from an inverse-closed fact list.
    pub edges: Vec<(EntityId, RelId, EntityId)>,
}

impl Snapshot {
    /// Empty snapshot at time `t`.
    pub fn empty(t: Time) -> Self {
        Self {
            t,
            edges: Vec::new(),
        }
    }

    /// Groups quadruples into one snapshot per timestamp `0..num_times`
    /// (timestamps with no facts yield empty snapshots).
    pub fn group_by_time(quads: &[Quad], num_times: usize) -> Vec<Snapshot> {
        let mut snaps: Vec<Snapshot> = (0..num_times).map(Snapshot::empty).collect();
        for q in quads {
            assert!(
                q.t < num_times,
                "quad time {} beyond horizon {num_times}",
                q.t
            );
            snaps[q.t].edges.push((q.s, q.r, q.o));
        }
        snaps
    }

    /// Number of facts in the snapshot.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the snapshot holds no facts.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// In-degree of each entity (the `c_o` normaliser of Eq. 4).
    pub fn in_degrees(&self, num_entities: usize) -> Vec<usize> {
        let mut deg = vec![0usize; num_entities];
        for &(_, _, o) in &self.edges {
            deg[o] += 1;
        }
        deg
    }

    /// The set of entities participating in any fact, sorted.
    pub fn active_entities(&self) -> Vec<EntityId> {
        let mut ents: Vec<EntityId> = self.edges.iter().flat_map(|&(s, _, o)| [s, o]).collect();
        ents.sort_unstable();
        ents.dedup();
        ents
    }

    /// For each relation, the subject entities of its edges — used by the
    /// relation-evolution mean pooling `f_ave(H_{t,r})` of Eq. 6. Returns a
    /// map `r -> Vec<s>`.
    pub fn rel_subjects(&self) -> BTreeMap<RelId, Vec<EntityId>> {
        let mut map: BTreeMap<RelId, Vec<EntityId>> = BTreeMap::new();
        for &(s, r, _) in &self.edges {
            map.entry(r).or_default().push(s);
        }
        map
    }

    /// Edge list views used to drive gather/scatter message passing:
    /// `(subjects, relations, objects)` as parallel index vectors.
    pub fn edge_index(&self) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut s = Vec::with_capacity(self.edges.len());
        let mut r = Vec::with_capacity(self.edges.len());
        let mut o = Vec::with_capacity(self.edges.len());
        for &(es, er, eo) in &self.edges {
            s.push(es);
            r.push(er);
            o.push(eo);
        }
        (s, r, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> Snapshot {
        Snapshot {
            t: 3,
            edges: vec![(0, 0, 1), (2, 1, 1), (1, 0, 2)],
        }
    }

    #[test]
    fn group_by_time_places_and_pads() {
        let quads = vec![Quad::new(0, 0, 1, 0), Quad::new(1, 0, 2, 2)];
        let snaps = Snapshot::group_by_time(&quads, 4);
        assert_eq!(snaps.len(), 4);
        assert_eq!(snaps[0].len(), 1);
        assert!(snaps[1].is_empty());
        assert_eq!(snaps[2].len(), 1);
        assert!(snaps[3].is_empty());
    }

    #[test]
    #[should_panic(expected = "beyond horizon")]
    fn group_by_time_checks_horizon() {
        Snapshot::group_by_time(&[Quad::new(0, 0, 1, 9)], 4);
    }

    #[test]
    fn in_degrees_count_objects() {
        assert_eq!(snap().in_degrees(3), vec![0, 2, 1]);
    }

    #[test]
    fn active_entities_sorted_unique() {
        assert_eq!(snap().active_entities(), vec![0, 1, 2]);
    }

    #[test]
    fn rel_subjects_groups() {
        let map = snap().rel_subjects();
        assert_eq!(map[&0], vec![0, 1]);
        assert_eq!(map[&1], vec![2]);
    }

    #[test]
    fn edge_index_parallel_vectors() {
        let (s, r, o) = snap().edge_index();
        assert_eq!(s, vec![0, 2, 1]);
        assert_eq!(r, vec![0, 1, 0]);
        assert_eq!(o, vec![1, 1, 2]);
    }
}
