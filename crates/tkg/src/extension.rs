//! Dataset extensions: the serializable delta between a base dataset and
//! the same dataset after a run of online ingestion.
//!
//! The serving stack appends ingested facts to the test split and may
//! advance the time horizon; everything else about the dataset (entity and
//! relation vocabularies, train/valid splits) is immutable at serve time.
//! A [`DatasetExtension`] captures exactly that delta so a compaction
//! snapshot can persist it and a restarted server can replay it onto a
//! freshly loaded base dataset — fail-closed: every fact is bounds-checked
//! against the base vocabularies before anything is mutated.

use serde::{Deserialize, Serialize};

use crate::dataset::TkgDataset;
use crate::quad::Quad;

/// The serializable delta accumulated by online ingestion on top of a base
/// dataset: the facts appended to the test split and the advanced horizon.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetExtension {
    /// Length of the base dataset's test split the extension applies onto.
    /// Applying onto a dataset whose test split has a different length is
    /// rejected: the base on disk changed under the snapshot.
    pub base_test_len: usize,
    /// The horizon (`num_times`) after the extension is applied.
    pub num_times: usize,
    /// Facts appended beyond `base_test_len`, in append order.
    pub quads: Vec<Quad>,
}

/// Why applying a [`DatasetExtension`] was refused. Nothing is mutated when
/// an error is returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExtensionError {
    /// The dataset's test split is not at the recorded base length.
    BaseMismatch {
        /// Length recorded when the extension was captured.
        expected: usize,
        /// Length of the dataset it was applied to.
        found: usize,
    },
    /// A stored fact references an entity/relation/time outside the base
    /// dataset's bounds (the base on disk shrank, or the file lies).
    OutOfRange {
        /// The offending fact.
        quad: Quad,
        /// Which bound it violated.
        what: &'static str,
    },
    /// The recorded horizon is below the base dataset's (time never moves
    /// backwards) or below a stored fact's timestamp.
    HorizonRegression {
        /// The horizon recorded in the extension.
        recorded: usize,
        /// The minimum the dataset and facts require.
        minimum: usize,
    },
}

impl std::fmt::Display for ExtensionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtensionError::BaseMismatch { expected, found } => write!(
                f,
                "dataset extension expects a base test split of {expected} quads, found {found}"
            ),
            ExtensionError::OutOfRange { quad, what } => {
                write!(f, "extension fact {quad:?} is out of range: {what}")
            }
            ExtensionError::HorizonRegression { recorded, minimum } => write!(
                f,
                "extension horizon {recorded} regresses below the required minimum {minimum}"
            ),
        }
    }
}

impl std::error::Error for ExtensionError {}

impl DatasetExtension {
    /// Captures the delta of `ds` relative to a base whose test split had
    /// `base_test_len` quads (everything appended past that index).
    pub fn capture(ds: &TkgDataset, base_test_len: usize) -> Self {
        let quads = ds
            .test
            .get(base_test_len..)
            .map(<[Quad]>::to_vec)
            .unwrap_or_default();
        DatasetExtension {
            base_test_len: base_test_len.min(ds.test.len()),
            num_times: ds.num_times,
            quads,
        }
    }

    /// Whether the extension records no appended facts and no horizon move
    /// beyond `num_times` of the base it was captured from.
    pub fn is_empty(&self) -> bool {
        self.quads.is_empty()
    }

    /// Validates the extension against `ds` and applies it: appends the
    /// stored quads to the test split and advances `num_times`. All-or-
    /// nothing — validation happens before any mutation.
    pub fn apply(&self, ds: &mut TkgDataset) -> Result<(), ExtensionError> {
        if ds.test.len() != self.base_test_len {
            return Err(ExtensionError::BaseMismatch {
                expected: self.base_test_len,
                found: ds.test.len(),
            });
        }
        let mut min_horizon = ds.num_times;
        for q in &self.quads {
            if q.s >= ds.num_entities || q.o >= ds.num_entities {
                return Err(ExtensionError::OutOfRange {
                    quad: *q,
                    what: "entity id exceeds the base vocabulary",
                });
            }
            if q.r >= ds.num_rels {
                return Err(ExtensionError::OutOfRange {
                    quad: *q,
                    what: "relation id exceeds the base vocabulary",
                });
            }
            min_horizon = min_horizon.max(q.t + 1);
        }
        if self.num_times < min_horizon {
            return Err(ExtensionError::HorizonRegression {
                recorded: self.num_times,
                minimum: min_horizon,
            });
        }
        ds.test.extend_from_slice(&self.quads);
        ds.num_times = self.num_times;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::SyntheticPreset;

    fn tiny_ds() -> TkgDataset {
        SyntheticPreset::Icews14.generate_scaled(0.1)
    }

    #[test]
    fn capture_then_apply_round_trips() {
        let mut ds = tiny_ds();
        let base_len = ds.test.len();
        let horizon = ds.num_times;
        ds.test.push(Quad::new(0, 0, 1, horizon));
        ds.test.push(Quad::new(1, 0, 2, horizon));
        ds.num_times = horizon + 1;

        let ext = DatasetExtension::capture(&ds, base_len);
        assert_eq!(ext.quads.len(), 2);
        assert!(!ext.is_empty());

        let mut fresh = tiny_ds();
        ext.apply(&mut fresh).unwrap();
        assert_eq!(fresh.test, ds.test);
        assert_eq!(fresh.num_times, ds.num_times);
    }

    #[test]
    fn empty_extension_is_a_no_op() {
        let ds = tiny_ds();
        let ext = DatasetExtension::capture(&ds, ds.test.len());
        assert!(ext.is_empty());
        let mut fresh = tiny_ds();
        ext.apply(&mut fresh).unwrap();
        assert_eq!(fresh.test.len(), ds.test.len());
    }

    #[test]
    fn apply_rejects_base_mismatch_without_mutating() {
        let ds = tiny_ds();
        let ext = DatasetExtension {
            base_test_len: ds.test.len() + 5,
            num_times: ds.num_times,
            quads: vec![],
        };
        let mut target = tiny_ds();
        let before = target.test.len();
        assert!(matches!(
            ext.apply(&mut target),
            Err(ExtensionError::BaseMismatch { .. })
        ));
        assert_eq!(target.test.len(), before);
    }

    #[test]
    fn apply_rejects_out_of_range_facts_without_mutating() {
        let ds = tiny_ds();
        for (quad, expect_entity) in [
            (Quad::new(ds.num_entities, 0, 0, ds.num_times), true),
            (Quad::new(0, ds.num_rels, 0, ds.num_times), false),
        ] {
            let ext = DatasetExtension {
                base_test_len: ds.test.len(),
                num_times: ds.num_times + 1,
                quads: vec![quad],
            };
            let mut target = tiny_ds();
            let before = (target.test.len(), target.num_times);
            let err = ext.apply(&mut target).unwrap_err();
            match err {
                ExtensionError::OutOfRange { what, .. } => {
                    assert_eq!(what.contains("entity"), expect_entity, "{what}");
                }
                other => panic!("expected OutOfRange, got {other:?}"),
            }
            assert_eq!((target.test.len(), target.num_times), before);
        }
    }

    #[test]
    fn apply_rejects_horizon_regression() {
        let ds = tiny_ds();
        let ext = DatasetExtension {
            base_test_len: ds.test.len(),
            num_times: ds.num_times.saturating_sub(1),
            quads: vec![],
        };
        let mut target = tiny_ds();
        assert!(matches!(
            ext.apply(&mut target),
            Err(ExtensionError::HorizonRegression { .. })
        ));
    }
}
