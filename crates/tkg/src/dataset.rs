//! The dataset container: splits, vocabulary, inverse-relation closure and a
//! loader for the standard ICEWS/GDELT TSV layout.

use std::fmt;
use std::io::{self, BufRead};
use std::path::Path;

use rustc_hash::FxHashSet;

use crate::quad::{Quad, Time};
use crate::snapshot::Snapshot;

/// A temporal knowledge graph split into train/valid/test by time, exactly
/// as the extrapolation benchmarks are (all training timestamps precede all
/// validation timestamps, which precede all test timestamps).
#[derive(Debug, Clone)]
pub struct TkgDataset {
    /// Human-readable dataset name (e.g. `icews14-s`).
    pub name: String,
    /// Number of entities `|E|`.
    pub num_entities: usize,
    /// Number of *base* relations `|R|` (before inverse closure; models see
    /// `2 |R|` relation ids).
    pub num_rels: usize,
    /// Number of timestamps `|T|` across all splits.
    pub num_times: usize,
    /// Training facts (base direction only; inverse closure is applied by
    /// [`TkgDataset::with_inverses`] when snapshots are built).
    pub train: Vec<Quad>,
    /// Validation facts.
    pub valid: Vec<Quad>,
    /// Test facts.
    pub test: Vec<Quad>,
    /// Optional entity names (index = id), for case studies.
    pub entity_names: Vec<String>,
    /// Optional relation names (index = id).
    pub rel_names: Vec<String>,
    /// Static (time-less) facts `(entity, static_rel, anchor_entity)` — the
    /// "static KG information" RE-GCN-lineage models add on the ICEWS
    /// datasets (affiliations/blocs). Empty when unavailable.
    pub static_facts: Vec<(usize, usize, usize)>,
    /// Number of static relations.
    pub num_static_rels: usize,
}

impl fmt::Display for TkgDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: |E|={} |R|={} |T|={} train={} valid={} test={}",
            self.name,
            self.num_entities,
            self.num_rels,
            self.num_times,
            self.train.len(),
            self.valid.len(),
            self.test.len()
        )
    }
}

impl TkgDataset {
    /// Builds a dataset from raw quadruples, splitting **by time** with the
    /// benchmarks' 80/10/10 proportions.
    pub fn from_quads(
        name: &str,
        num_entities: usize,
        num_rels: usize,
        mut quads: Vec<Quad>,
    ) -> Self {
        quads.sort_unstable_by_key(|q| (q.t, q.s, q.r, q.o));
        quads.dedup();
        let num_times = quads.last().map_or(0, |q| q.t + 1);
        let t_train_end = (num_times as f64 * 0.8).round() as usize;
        let t_valid_end = (num_times as f64 * 0.9).round() as usize;
        let mut train = Vec::new();
        let mut valid = Vec::new();
        let mut test = Vec::new();
        for q in quads {
            if q.t < t_train_end {
                train.push(q);
            } else if q.t < t_valid_end {
                valid.push(q);
            } else {
                test.push(q);
            }
        }
        Self {
            name: name.to_string(),
            num_entities,
            num_rels,
            num_times,
            train,
            valid,
            test,
            entity_names: Vec::new(),
            rel_names: Vec::new(),
            static_facts: Vec::new(),
            num_static_rels: 0,
        }
    }

    /// Total relation count after the inverse closure (`2 |R|`).
    pub fn num_rels_with_inverse(&self) -> usize {
        self.num_rels * 2
    }

    /// All facts of every split, in time order.
    pub fn all_quads(&self) -> Vec<Quad> {
        let mut all = Vec::with_capacity(self.train.len() + self.valid.len() + self.test.len());
        all.extend_from_slice(&self.train);
        all.extend_from_slice(&self.valid);
        all.extend_from_slice(&self.test);
        all.sort_unstable_by_key(|q| q.t);
        all
    }

    /// Adds the inverse of every fact to `quads` (the paper adds inverse
    /// quadruples to the TKG before building snapshots).
    pub fn with_inverses(&self, quads: &[Quad]) -> Vec<Quad> {
        let mut out = Vec::with_capacity(quads.len() * 2);
        for q in quads {
            out.push(*q);
            out.push(q.inverse(self.num_rels));
        }
        out
    }

    /// Snapshots `G_0..G_{|T|-1}` over **all** splits, including inverse
    /// edges; index = timestamp. Used as the history every model conditions
    /// on (facts at the query time itself must not be fed to the encoders —
    /// callers slice `[..t]`).
    pub fn snapshots(&self) -> Vec<Snapshot> {
        let all = self.with_inverses(&self.all_quads());
        Snapshot::group_by_time(&all, self.num_times)
    }

    /// Last training timestamp + 1 (the first unseen timestamp for
    /// validation).
    pub fn train_end_time(&self) -> Time {
        self.train.last().map_or(0, |q| q.t + 1)
    }

    /// The set of timestamps present in a split.
    pub fn split_times(quads: &[Quad]) -> Vec<Time> {
        let mut ts: Vec<Time> = quads.iter().map(|q| q.t).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Ground-truth object sets at each timestamp, for time-aware filtering:
    /// returns, for timestamp `t`, the set of `(s, r, o)` facts (with
    /// inverses) true at `t` across all splits.
    pub fn facts_at(&self, t: Time) -> FxHashSet<(usize, usize, usize)> {
        let mut set = FxHashSet::default();
        for q in self.all_quads().iter().filter(|q| q.t == t) {
            set.insert((q.s, q.r, q.o));
            let inv = q.inverse(self.num_rels);
            set.insert((inv.s, inv.r, inv.o));
        }
        set
    }

    /// Loads the standard benchmark TSV layout from a directory containing
    /// `train.txt`, `valid.txt`, `test.txt` with rows
    /// `subject<TAB>relation<TAB>object<TAB>time` (integer ids; an optional
    /// fifth column is ignored). Timestamps are renumbered densely in order.
    pub fn load_tsv_dir(name: &str, dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        let train = read_quads(&dir.join("train.txt"))?;
        let valid = read_quads(&dir.join("valid.txt"))?;
        let test = read_quads(&dir.join("test.txt"))?;
        let mut all: Vec<Quad> = train.iter().chain(&valid).chain(&test).copied().collect();
        // Dense time renumbering shared across splits.
        let mut times: Vec<Time> = all.iter().map(|q| q.t).collect();
        times.sort_unstable();
        times.dedup();
        let remap = |t: Time| times.binary_search(&t).expect("time present");
        for q in &mut all {
            q.t = remap(q.t);
        }
        let num_entities = all.iter().map(|q| q.s.max(q.o) + 1).max().unwrap_or(0);
        let num_rels = all.iter().map(|q| q.r + 1).max().unwrap_or(0);
        let num_times = times.len();
        let (mut tr, mut va, mut te) = (train, valid, test);
        for q in tr.iter_mut().chain(va.iter_mut()).chain(te.iter_mut()) {
            q.t = remap(q.t);
        }
        Ok(Self {
            name: name.to_string(),
            num_entities,
            num_rels,
            num_times,
            train: tr,
            valid: va,
            test: te,
            entity_names: Vec::new(),
            rel_names: Vec::new(),
            static_facts: Vec::new(),
            num_static_rels: 0,
        })
    }

    /// Writes the dataset in the standard benchmark TSV layout
    /// (`train.txt`/`valid.txt`/`test.txt` plus `stat.txt` with
    /// `num_entities num_relations`, and name files when names exist).
    pub fn save_tsv_dir(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        use std::io::Write;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (name, quads) in [
            ("train.txt", &self.train),
            ("valid.txt", &self.valid),
            ("test.txt", &self.test),
        ] {
            let mut out = std::io::BufWriter::new(std::fs::File::create(dir.join(name))?);
            for q in quads {
                writeln!(out, "{}\t{}\t{}\t{}", q.s, q.r, q.o, q.t)?;
            }
        }
        std::fs::write(
            dir.join("stat.txt"),
            format!(
                "{}\t{}\t{}\n",
                self.num_entities, self.num_rels, self.num_times
            ),
        )?;
        if !self.entity_names.is_empty() {
            std::fs::write(dir.join("entity2id.txt"), names_file(&self.entity_names))?;
        }
        if !self.rel_names.is_empty() {
            std::fs::write(dir.join("relation2id.txt"), names_file(&self.rel_names))?;
        }
        Ok(())
    }

    /// Resolves an entity by exact name.
    pub fn entity_by_name(&self, name: &str) -> Option<usize> {
        self.entity_names.iter().position(|n| n == name)
    }

    /// Resolves a base relation by exact name.
    pub fn rel_by_name(&self, name: &str) -> Option<usize> {
        self.rel_names.iter().position(|n| n == name)
    }

    /// Name of entity `e` (falls back to `entity_<id>`).
    pub fn entity_name(&self, e: usize) -> String {
        self.entity_names
            .get(e)
            .cloned()
            .unwrap_or_else(|| format!("entity_{e}"))
    }

    /// Name of relation `r`, labelling inverses as `r^-1`.
    pub fn rel_name(&self, r: usize) -> String {
        if r >= self.num_rels {
            format!("{}^-1", self.rel_name(r - self.num_rels))
        } else {
            self.rel_names
                .get(r)
                .cloned()
                .unwrap_or_else(|| format!("rel_{r}"))
        }
    }
}

fn names_file(names: &[String]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, n) in names.iter().enumerate() {
        let _ = writeln!(out, "{n}\t{i}");
    }
    out
}

fn read_quads(path: &Path) -> io::Result<Vec<Quad>> {
    let file = std::fs::File::open(path)?;
    let mut out = Vec::new();
    for (lineno, line) in io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let mut field = |name: &str| -> io::Result<usize> {
            parts
                .next()
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}:{}: missing {name}", path.display(), lineno + 1),
                    )
                })?
                .parse()
                .map_err(|e| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("{}:{}: bad {name}: {e}", path.display(), lineno + 1),
                    )
                })
        };
        let (s, r, o, t) = (
            field("subject")?,
            field("relation")?,
            field("object")?,
            field("time")?,
        );
        out.push(Quad::new(s, r, o, t));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TkgDataset {
        // 10 timestamps, one fact each.
        let quads: Vec<Quad> = (0..10)
            .map(|t| Quad::new(t % 3, 0, (t + 1) % 3, t))
            .collect();
        TkgDataset::from_quads("toy", 3, 2, quads)
    }

    #[test]
    fn split_is_80_10_10_by_time() {
        let ds = toy();
        assert_eq!(ds.train.len(), 8);
        assert_eq!(ds.valid.len(), 1);
        assert_eq!(ds.test.len(), 1);
        assert!(ds.train.iter().all(|q| q.t < 8));
        assert_eq!(ds.valid[0].t, 8);
        assert_eq!(ds.test[0].t, 9);
    }

    #[test]
    fn inverse_closure_doubles_facts() {
        let ds = toy();
        let inv = ds.with_inverses(&ds.train);
        assert_eq!(inv.len(), ds.train.len() * 2);
        assert!(inv.iter().any(|q| q.r == 2)); // inverse relation id = r + num_rels
    }

    #[test]
    fn snapshots_cover_all_times() {
        let ds = toy();
        let snaps = ds.snapshots();
        assert_eq!(snaps.len(), 10);
        for (t, s) in snaps.iter().enumerate() {
            assert_eq!(s.t, t);
            assert_eq!(s.edges.len(), 2); // fact + inverse
        }
    }

    #[test]
    fn facts_at_includes_inverses() {
        let ds = toy();
        let set = ds.facts_at(0);
        assert!(set.contains(&(0, 0, 1)));
        assert!(set.contains(&(1, 2, 0)));
    }

    #[test]
    fn tsv_round_trip() {
        let dir = std::env::temp_dir().join("logcl-tkg-tsv");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.txt"), "0\t0\t1\t0\n1\t1\t2\t24\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "2\t0\t0\t48\n").unwrap();
        std::fs::write(dir.join("test.txt"), "0\t1\t2\t72\n").unwrap();
        let ds = TkgDataset::load_tsv_dir("t", &dir).unwrap();
        assert_eq!(ds.num_entities, 3);
        assert_eq!(ds.num_rels, 2);
        assert_eq!(ds.num_times, 4); // dense renumbering 0..4
        assert_eq!(ds.train[1].t, 1);
        assert_eq!(ds.test[0].t, 3);
    }

    #[test]
    fn tsv_rejects_garbage() {
        let dir = std::env::temp_dir().join("logcl-tkg-tsv-bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.txt"), "0\tx\t1\t0\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "").unwrap();
        std::fs::write(dir.join("test.txt"), "").unwrap();
        assert!(TkgDataset::load_tsv_dir("t", &dir).is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("logcl-tkg-save");
        let mut ds = toy();
        ds.entity_names = vec!["a".into(), "b".into(), "c".into()];
        ds.rel_names = vec!["r0".into(), "r1".into()];
        ds.save_tsv_dir(&dir).unwrap();
        let loaded = TkgDataset::load_tsv_dir("toy", &dir).unwrap();
        assert_eq!(loaded.train, ds.train);
        assert_eq!(loaded.valid, ds.valid);
        assert_eq!(loaded.test, ds.test);
        assert_eq!(loaded.num_entities, ds.num_entities);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn name_resolution() {
        let mut ds = toy();
        ds.entity_names = vec!["China".into(), "Iran".into(), "Oman".into()];
        ds.rel_names = vec!["Cooperate".into(), "Consult".into()];
        assert_eq!(ds.entity_by_name("Iran"), Some(1));
        assert_eq!(ds.entity_by_name("Atlantis"), None);
        assert_eq!(ds.rel_by_name("Consult"), Some(1));
    }

    #[test]
    fn display_summarises() {
        let ds = toy();
        let s = format!("{ds}");
        assert!(s.contains("|E|=3") && s.contains("train=8"));
    }
}
