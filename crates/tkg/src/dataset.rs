//! The dataset container: splits, vocabulary, inverse-relation closure and a
//! loader for the standard ICEWS/GDELT TSV layout.

use std::collections::BTreeSet;
use std::fmt;
use std::io::{self, BufRead};
use std::path::{Path, PathBuf};

use crate::quad::{Quad, Time};
use crate::snapshot::Snapshot;

/// Why a dataset failed to load or validate. Every variant carries enough
/// context (file, line, column) for an operator to fix the offending input,
/// and loading is fail-closed: a fact whose ids exceed the declared
/// dimensions is an error, never a later index panic.
#[derive(Debug)]
pub enum DatasetError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A cell failed to parse (missing or non-integer).
    Parse {
        /// File the bad cell is in.
        file: PathBuf,
        /// 1-based line number.
        line: usize,
        /// 1-based byte column where the field starts (0: end of line).
        column: usize,
        /// Which field (`subject`, `relation`, `object`, `time`).
        field: &'static str,
        /// What went wrong.
        message: String,
    },
    /// An id is out of range for the declared dimensions.
    OutOfBounds {
        /// File the bad id is in.
        file: PathBuf,
        /// 1-based line number (0 when detected outside a specific line).
        line: usize,
        /// 1-based byte column where the field starts.
        column: usize,
        /// Which field the id belongs to.
        field: &'static str,
        /// The offending id.
        value: usize,
        /// The declared exclusive upper bound it violated.
        limit: usize,
    },
    /// The dataset contradicts itself (bad `stat.txt`, impossible split…).
    Inconsistent(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "dataset I/O error: {e}"),
            Self::Parse {
                file,
                line,
                column,
                field,
                message,
            } => write!(
                f,
                "{}:{line}:{column}: bad {field}: {message}",
                file.display()
            ),
            Self::OutOfBounds {
                file,
                line,
                column,
                field,
                value,
                limit,
            } => write!(
                f,
                "{}:{line}:{column}: {field} id {value} out of range (declared dimension {limit})",
                file.display()
            ),
            Self::Inconsistent(m) => write!(f, "inconsistent dataset: {m}"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Declared dimensions from `stat.txt`, when present.
#[derive(Debug, Clone, Copy)]
struct DeclaredDims {
    num_entities: usize,
    num_rels: usize,
    /// Third column when the file has one (dense timestamp count).
    num_times: Option<usize>,
}

/// A temporal knowledge graph split into train/valid/test by time, exactly
/// as the extrapolation benchmarks are (all training timestamps precede all
/// validation timestamps, which precede all test timestamps).
#[derive(Debug, Clone)]
pub struct TkgDataset {
    /// Human-readable dataset name (e.g. `icews14-s`).
    pub name: String,
    /// Number of entities `|E|`.
    pub num_entities: usize,
    /// Number of *base* relations `|R|` (before inverse closure; models see
    /// `2 |R|` relation ids).
    pub num_rels: usize,
    /// Number of timestamps `|T|` across all splits.
    pub num_times: usize,
    /// Training facts (base direction only; inverse closure is applied by
    /// [`TkgDataset::with_inverses`] when snapshots are built).
    pub train: Vec<Quad>,
    /// Validation facts.
    pub valid: Vec<Quad>,
    /// Test facts.
    pub test: Vec<Quad>,
    /// Optional entity names (index = id), for case studies.
    pub entity_names: Vec<String>,
    /// Optional relation names (index = id).
    pub rel_names: Vec<String>,
    /// Static (time-less) facts `(entity, static_rel, anchor_entity)` — the
    /// "static KG information" RE-GCN-lineage models add on the ICEWS
    /// datasets (affiliations/blocs). Empty when unavailable.
    pub static_facts: Vec<(usize, usize, usize)>,
    /// Number of static relations.
    pub num_static_rels: usize,
}

impl fmt::Display for TkgDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: |E|={} |R|={} |T|={} train={} valid={} test={}",
            self.name,
            self.num_entities,
            self.num_rels,
            self.num_times,
            self.train.len(),
            self.valid.len(),
            self.test.len()
        )
    }
}

impl TkgDataset {
    /// Builds a dataset from raw quadruples, splitting **by time** with the
    /// benchmarks' 80/10/10 proportions.
    pub fn from_quads(
        name: &str,
        num_entities: usize,
        num_rels: usize,
        mut quads: Vec<Quad>,
    ) -> Self {
        quads.sort_unstable_by_key(|q| (q.t, q.s, q.r, q.o));
        quads.dedup();
        let num_times = quads.last().map_or(0, |q| q.t + 1);
        let t_train_end = (num_times as f64 * 0.8).round() as usize;
        let t_valid_end = (num_times as f64 * 0.9).round() as usize;
        let mut train = Vec::new();
        let mut valid = Vec::new();
        let mut test = Vec::new();
        for q in quads {
            if q.t < t_train_end {
                train.push(q);
            } else if q.t < t_valid_end {
                valid.push(q);
            } else {
                test.push(q);
            }
        }
        Self {
            name: name.to_string(),
            num_entities,
            num_rels,
            num_times,
            train,
            valid,
            test,
            entity_names: Vec::new(),
            rel_names: Vec::new(),
            static_facts: Vec::new(),
            num_static_rels: 0,
        }
    }

    /// Total relation count after the inverse closure (`2 |R|`).
    pub fn num_rels_with_inverse(&self) -> usize {
        self.num_rels * 2
    }

    /// All facts of every split, in time order.
    pub fn all_quads(&self) -> Vec<Quad> {
        let mut all = Vec::with_capacity(self.train.len() + self.valid.len() + self.test.len());
        all.extend_from_slice(&self.train);
        all.extend_from_slice(&self.valid);
        all.extend_from_slice(&self.test);
        all.sort_unstable_by_key(|q| q.t);
        all
    }

    /// Adds the inverse of every fact to `quads` (the paper adds inverse
    /// quadruples to the TKG before building snapshots).
    pub fn with_inverses(&self, quads: &[Quad]) -> Vec<Quad> {
        let mut out = Vec::with_capacity(quads.len() * 2);
        for q in quads {
            out.push(*q);
            out.push(q.inverse(self.num_rels));
        }
        out
    }

    /// Snapshots `G_0..G_{|T|-1}` over **all** splits, including inverse
    /// edges; index = timestamp. Used as the history every model conditions
    /// on (facts at the query time itself must not be fed to the encoders —
    /// callers slice `[..t]`).
    pub fn snapshots(&self) -> Vec<Snapshot> {
        let all = self.with_inverses(&self.all_quads());
        Snapshot::group_by_time(&all, self.num_times)
    }

    /// Last training timestamp + 1 (the first unseen timestamp for
    /// validation).
    pub fn train_end_time(&self) -> Time {
        self.train.last().map_or(0, |q| q.t + 1)
    }

    /// The set of timestamps present in a split.
    pub fn split_times(quads: &[Quad]) -> Vec<Time> {
        let mut ts: Vec<Time> = quads.iter().map(|q| q.t).collect();
        ts.sort_unstable();
        ts.dedup();
        ts
    }

    /// Ground-truth object sets at each timestamp, for time-aware filtering:
    /// returns, for timestamp `t`, the set of `(s, r, o)` facts (with
    /// inverses) true at `t` across all splits. Ordered so any iteration
    /// over it is deterministic.
    pub fn facts_at(&self, t: Time) -> BTreeSet<(usize, usize, usize)> {
        let mut set = BTreeSet::new();
        for q in self.all_quads().iter().filter(|q| q.t == t) {
            set.insert((q.s, q.r, q.o));
            let inv = q.inverse(self.num_rels);
            set.insert((inv.s, inv.r, inv.o));
        }
        set
    }

    /// Loads the standard benchmark TSV layout from a directory containing
    /// `train.txt`, `valid.txt`, `test.txt` with rows
    /// `subject<TAB>relation<TAB>object<TAB>time` (integer ids; an optional
    /// fifth column is ignored). Timestamps are renumbered densely in order.
    ///
    /// Loading is fail-closed: when the directory declares its dimensions in
    /// `stat.txt` (`num_entities<TAB>num_relations[<TAB>num_times]`), every
    /// entity/relation id is bounds-checked against them and the dense
    /// timestamp count must fit the declared one — a single corrupt row is
    /// reported with file/line/column context instead of becoming an
    /// out-of-bounds index deep inside training.
    pub fn load_tsv_dir(name: &str, dir: impl AsRef<Path>) -> Result<Self, DatasetError> {
        let dir = dir.as_ref();
        let declared = read_declared_dims(&dir.join("stat.txt"))?;
        let train = read_quads(&dir.join("train.txt"), declared.as_ref())?;
        let valid = read_quads(&dir.join("valid.txt"), declared.as_ref())?;
        let test = read_quads(&dir.join("test.txt"), declared.as_ref())?;
        // Dense time renumbering shared across splits.
        let mut times: Vec<Time> = train
            .iter()
            .chain(&valid)
            .chain(&test)
            .map(|q| q.t)
            .collect();
        times.sort_unstable();
        times.dedup();
        let remap = |t: Time| -> Result<Time, DatasetError> {
            times.binary_search(&t).map_err(|_| {
                DatasetError::Inconsistent(format!(
                    "timestamp {t} vanished during dense renumbering (loader invariant)"
                ))
            })
        };
        let num_times = times.len();
        if let Some(d) = &declared {
            if let Some(nt) = d.num_times {
                if num_times > nt {
                    return Err(DatasetError::Inconsistent(format!(
                        "{} distinct timestamps found but stat.txt declares {nt}",
                        num_times
                    )));
                }
            }
        }
        let (mut tr, mut va, mut te) = (train, valid, test);
        for q in tr.iter_mut().chain(va.iter_mut()).chain(te.iter_mut()) {
            q.t = remap(q.t)?;
        }
        let seen_entities = tr
            .iter()
            .chain(&va)
            .chain(&te)
            .map(|q| q.s.max(q.o) + 1)
            .max()
            .unwrap_or(0);
        let seen_rels = tr
            .iter()
            .chain(&va)
            .chain(&te)
            .map(|q| q.r + 1)
            .max()
            .unwrap_or(0);
        // Trust declared dimensions when present (vocabularies may be larger
        // than what the splits happen to mention); fall back to inference.
        let (num_entities, num_rels) = match &declared {
            Some(d) => (d.num_entities, d.num_rels),
            None => (seen_entities, seen_rels),
        };
        let ds = Self {
            name: name.to_string(),
            num_entities,
            num_rels,
            num_times,
            train: tr,
            valid: va,
            test: te,
            entity_names: Vec::new(),
            rel_names: Vec::new(),
            static_facts: Vec::new(),
            num_static_rels: 0,
        };
        ds.validate()?;
        Ok(ds)
    }

    /// Checks every fact of every split against this dataset's declared
    /// dimensions. Cheap (one pass) and fail-closed: call it after any
    /// mutation that could desynchronise facts and vocabulary sizes.
    pub fn validate(&self) -> Result<(), DatasetError> {
        for (split, quads) in [
            ("train", &self.train),
            ("valid", &self.valid),
            ("test", &self.test),
        ] {
            for (i, q) in quads.iter().enumerate() {
                let checks = [
                    ("subject", q.s, self.num_entities),
                    ("relation", q.r, self.num_rels),
                    ("object", q.o, self.num_entities),
                    ("time", q.t, self.num_times),
                ];
                for (field, value, limit) in checks {
                    if value >= limit {
                        return Err(DatasetError::Inconsistent(format!(
                            "{split} fact #{i} has {field} id {value} but the dataset \
                             declares only {limit}"
                        )));
                    }
                }
            }
        }
        for (i, &(e, r, a)) in self.static_facts.iter().enumerate() {
            if e >= self.num_entities || a >= self.num_entities || r >= self.num_static_rels {
                return Err(DatasetError::Inconsistent(format!(
                    "static fact #{i} ({e}, {r}, {a}) exceeds declared dimensions \
                     |E|={}, static |R|={}",
                    self.num_entities, self.num_static_rels
                )));
            }
        }
        Ok(())
    }

    /// Writes the dataset in the standard benchmark TSV layout
    /// (`train.txt`/`valid.txt`/`test.txt` plus `stat.txt` with
    /// `num_entities num_relations`, and name files when names exist).
    pub fn save_tsv_dir(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        use std::io::Write;
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (name, quads) in [
            ("train.txt", &self.train),
            ("valid.txt", &self.valid),
            ("test.txt", &self.test),
        ] {
            let mut out = std::io::BufWriter::new(std::fs::File::create(dir.join(name))?);
            for q in quads {
                writeln!(out, "{}\t{}\t{}\t{}", q.s, q.r, q.o, q.t)?;
            }
        }
        std::fs::write(
            dir.join("stat.txt"),
            format!(
                "{}\t{}\t{}\n",
                self.num_entities, self.num_rels, self.num_times
            ),
        )?;
        if !self.entity_names.is_empty() {
            std::fs::write(dir.join("entity2id.txt"), names_file(&self.entity_names))?;
        }
        if !self.rel_names.is_empty() {
            std::fs::write(dir.join("relation2id.txt"), names_file(&self.rel_names))?;
        }
        Ok(())
    }

    /// Resolves an entity by exact name.
    pub fn entity_by_name(&self, name: &str) -> Option<usize> {
        self.entity_names.iter().position(|n| n == name)
    }

    /// Resolves a base relation by exact name.
    pub fn rel_by_name(&self, name: &str) -> Option<usize> {
        self.rel_names.iter().position(|n| n == name)
    }

    /// Name of entity `e` (falls back to `entity_<id>`).
    pub fn entity_name(&self, e: usize) -> String {
        self.entity_names
            .get(e)
            .cloned()
            .unwrap_or_else(|| format!("entity_{e}"))
    }

    /// Name of relation `r`, labelling inverses as `r^-1`.
    pub fn rel_name(&self, r: usize) -> String {
        if r >= self.num_rels {
            format!("{}^-1", self.rel_name(r - self.num_rels))
        } else {
            self.rel_names
                .get(r)
                .cloned()
                .unwrap_or_else(|| format!("rel_{r}"))
        }
    }
}

fn names_file(names: &[String]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (i, n) in names.iter().enumerate() {
        let _ = writeln!(out, "{n}\t{i}");
    }
    out
}

/// Splits a line into whitespace-separated tokens with their 1-based byte
/// columns, so parse errors can point at the exact cell.
fn tokens_with_columns(line: &str) -> Vec<(usize, &str)> {
    let mut out = Vec::new();
    let mut start: Option<usize> = None;
    for (i, c) in line.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s + 1, &line[s..i]));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s + 1, &line[s..]));
    }
    out
}

/// Reads the optional `stat.txt` (`num_entities num_rels [num_times]`).
/// A missing file means "no declaration" (dims are inferred); a present but
/// malformed file is an error — silently ignoring it would disable every
/// bounds check the declaration exists to enable.
fn read_declared_dims(path: &Path) -> Result<Option<DeclaredDims>, DatasetError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let first_line = text.lines().next().unwrap_or("");
    let toks = tokens_with_columns(first_line);
    let parse = |idx: usize, field: &'static str| -> Result<usize, DatasetError> {
        let (column, tok) = toks.get(idx).copied().ok_or(DatasetError::Parse {
            file: path.to_path_buf(),
            line: 1,
            column: 0,
            field,
            message: "missing".into(),
        })?;
        tok.parse().map_err(|e| DatasetError::Parse {
            file: path.to_path_buf(),
            line: 1,
            column,
            field,
            message: format!("{e}"),
        })
    };
    Ok(Some(DeclaredDims {
        num_entities: parse(0, "num_entities")?,
        num_rels: parse(1, "num_relations")?,
        num_times: match toks.len() {
            n if n >= 3 => Some(parse(2, "num_times")?),
            _ => None,
        },
    }))
}

fn read_quads(path: &Path, declared: Option<&DeclaredDims>) -> Result<Vec<Quad>, DatasetError> {
    let file = std::fs::File::open(path)?;
    let mut out = Vec::new();
    for (lineno, line) in io::BufReader::new(file).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let toks = tokens_with_columns(&line);
        let field = |idx: usize, name: &'static str| -> Result<(usize, usize), DatasetError> {
            let (column, tok) = toks.get(idx).copied().ok_or(DatasetError::Parse {
                file: path.to_path_buf(),
                line: lineno + 1,
                column: 0,
                field: name,
                message: "missing".into(),
            })?;
            let value = tok.parse().map_err(|e| DatasetError::Parse {
                file: path.to_path_buf(),
                line: lineno + 1,
                column,
                field: name,
                message: format!("{e}"),
            })?;
            Ok((column, value))
        };
        let (s_col, s) = field(0, "subject")?;
        let (r_col, r) = field(1, "relation")?;
        let (o_col, o) = field(2, "object")?;
        let (_, t) = field(3, "time")?;
        if let Some(d) = declared {
            for (field, column, value, limit) in [
                ("subject", s_col, s, d.num_entities),
                ("relation", r_col, r, d.num_rels),
                ("object", o_col, o, d.num_entities),
            ] {
                if value >= limit {
                    return Err(DatasetError::OutOfBounds {
                        file: path.to_path_buf(),
                        line: lineno + 1,
                        column,
                        field,
                        value,
                        limit,
                    });
                }
            }
        }
        out.push(Quad::new(s, r, o, t));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> TkgDataset {
        // 10 timestamps, one fact each.
        let quads: Vec<Quad> = (0..10)
            .map(|t| Quad::new(t % 3, 0, (t + 1) % 3, t))
            .collect();
        TkgDataset::from_quads("toy", 3, 2, quads)
    }

    #[test]
    fn split_is_80_10_10_by_time() {
        let ds = toy();
        assert_eq!(ds.train.len(), 8);
        assert_eq!(ds.valid.len(), 1);
        assert_eq!(ds.test.len(), 1);
        assert!(ds.train.iter().all(|q| q.t < 8));
        assert_eq!(ds.valid[0].t, 8);
        assert_eq!(ds.test[0].t, 9);
    }

    #[test]
    fn inverse_closure_doubles_facts() {
        let ds = toy();
        let inv = ds.with_inverses(&ds.train);
        assert_eq!(inv.len(), ds.train.len() * 2);
        assert!(inv.iter().any(|q| q.r == 2)); // inverse relation id = r + num_rels
    }

    #[test]
    fn snapshots_cover_all_times() {
        let ds = toy();
        let snaps = ds.snapshots();
        assert_eq!(snaps.len(), 10);
        for (t, s) in snaps.iter().enumerate() {
            assert_eq!(s.t, t);
            assert_eq!(s.edges.len(), 2); // fact + inverse
        }
    }

    #[test]
    fn facts_at_includes_inverses() {
        let ds = toy();
        let set = ds.facts_at(0);
        assert!(set.contains(&(0, 0, 1)));
        assert!(set.contains(&(1, 2, 0)));
    }

    #[test]
    fn tsv_round_trip() {
        let dir = std::env::temp_dir().join("logcl-tkg-tsv");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.txt"), "0\t0\t1\t0\n1\t1\t2\t24\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "2\t0\t0\t48\n").unwrap();
        std::fs::write(dir.join("test.txt"), "0\t1\t2\t72\n").unwrap();
        let ds = TkgDataset::load_tsv_dir("t", &dir).unwrap();
        assert_eq!(ds.num_entities, 3);
        assert_eq!(ds.num_rels, 2);
        assert_eq!(ds.num_times, 4); // dense renumbering 0..4
        assert_eq!(ds.train[1].t, 1);
        assert_eq!(ds.test[0].t, 3);
    }

    #[test]
    fn tsv_rejects_garbage() {
        let dir = std::env::temp_dir().join("logcl-tkg-tsv-bad");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.txt"), "0\tx\t1\t0\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "").unwrap();
        std::fs::write(dir.join("test.txt"), "").unwrap();
        assert!(TkgDataset::load_tsv_dir("t", &dir).is_err());
    }

    #[test]
    fn tsv_parse_errors_carry_file_line_column() {
        let dir = std::env::temp_dir().join("logcl-tkg-tsv-ctx");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("train.txt"), "0\t0\t1\t0\n1\tbogus\t2\t1\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "").unwrap();
        std::fs::write(dir.join("test.txt"), "").unwrap();
        let err = TkgDataset::load_tsv_dir("t", &dir).unwrap_err();
        match &err {
            DatasetError::Parse {
                line,
                column,
                field,
                ..
            } => {
                assert_eq!(*line, 2);
                assert_eq!(*column, 3, "column of the bad token");
                assert_eq!(*field, "relation");
            }
            other => panic!("expected Parse, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(
            msg.contains("train.txt:2:3") && msg.contains("relation"),
            "{msg}"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn declared_dims_make_loading_fail_closed() {
        let dir = std::env::temp_dir().join("logcl-tkg-tsv-bounds");
        std::fs::create_dir_all(&dir).unwrap();
        // stat.txt declares |E|=3, |R|=2; entity id 7 must be rejected.
        std::fs::write(dir.join("stat.txt"), "3\t2\n").unwrap();
        std::fs::write(dir.join("train.txt"), "0\t0\t1\t0\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "0\t1\t7\t1\n").unwrap();
        std::fs::write(dir.join("test.txt"), "").unwrap();
        let err = TkgDataset::load_tsv_dir("t", &dir).unwrap_err();
        match &err {
            DatasetError::OutOfBounds {
                line,
                field,
                value,
                limit,
                ..
            } => {
                assert_eq!((*line, *field, *value, *limit), (1, "object", 7, 3));
            }
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
        assert!(err.to_string().contains("valid.txt:1:5"), "{}", err);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn malformed_stat_file_is_an_error_not_ignored() {
        let dir = std::env::temp_dir().join("logcl-tkg-tsv-badstat");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("stat.txt"), "three\t2\n").unwrap();
        std::fs::write(dir.join("train.txt"), "0\t0\t1\t0\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "").unwrap();
        std::fs::write(dir.join("test.txt"), "").unwrap();
        let err = TkgDataset::load_tsv_dir("t", &dir).unwrap_err();
        assert!(matches!(err, DatasetError::Parse { .. }), "{err:?}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn declared_dims_may_exceed_seen_ids() {
        // A split that only mentions entity 0 must still get the declared
        // vocabulary (real benchmarks list entities unseen in train).
        let dir = std::env::temp_dir().join("logcl-tkg-tsv-declared");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("stat.txt"), "50\t9\n").unwrap();
        std::fs::write(dir.join("train.txt"), "0\t0\t1\t0\n0\t0\t1\t1\n").unwrap();
        std::fs::write(dir.join("valid.txt"), "0\t0\t1\t2\n").unwrap();
        std::fs::write(dir.join("test.txt"), "0\t0\t1\t3\n").unwrap();
        let ds = TkgDataset::load_tsv_dir("t", &dir).unwrap();
        assert_eq!(ds.num_entities, 50);
        assert_eq!(ds.num_rels, 9);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn validate_rejects_desynchronised_dims() {
        let mut ds = toy();
        ds.validate().unwrap();
        ds.num_entities = 2; // entity id 2 exists in the facts
        let err = ds.validate().unwrap_err();
        assert!(matches!(err, DatasetError::Inconsistent(_)));
        assert!(err.to_string().contains("declares only 2"), "{err}");
        let mut ds = toy();
        ds.static_facts = vec![(0, 0, 99)];
        ds.num_static_rels = 1;
        assert!(ds.validate().is_err());
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("logcl-tkg-save");
        let mut ds = toy();
        ds.entity_names = vec!["a".into(), "b".into(), "c".into()];
        ds.rel_names = vec!["r0".into(), "r1".into()];
        ds.save_tsv_dir(&dir).unwrap();
        let loaded = TkgDataset::load_tsv_dir("toy", &dir).unwrap();
        assert_eq!(loaded.train, ds.train);
        assert_eq!(loaded.valid, ds.valid);
        assert_eq!(loaded.test, ds.test);
        assert_eq!(loaded.num_entities, ds.num_entities);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn name_resolution() {
        let mut ds = toy();
        ds.entity_names = vec!["China".into(), "Iran".into(), "Oman".into()];
        ds.rel_names = vec!["Cooperate".into(), "Consult".into()];
        assert_eq!(ds.entity_by_name("Iran"), Some(1));
        assert_eq!(ds.entity_by_name("Atlantis"), None);
        assert_eq!(ds.rel_by_name("Consult"), Some(1));
    }

    #[test]
    fn display_summarises() {
        let ds = toy();
        let s = format!("{ds}");
        assert!(s.contains("|E|=3") && s.contains("train=8"));
    }
}
