//! Determinism regression tests for the history/eval structures whose
//! hash-ordered containers were replaced with ordered ones (`BTreeMap`/
//! `BTreeSet`, lint L003): the observable outputs must not depend on
//! insertion order or on which process run produced them — two runs must
//! render byte-identical output.

use std::collections::BTreeSet;

use logcl_tkg::eval::rank_time_aware;
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, Snapshot};

/// A small synthetic stream with repeated `(s, r)` pairs and shared
/// entities, deterministically scrambled per-snapshot by `order`.
fn snapshots(reverse_within_snapshot: bool) -> Vec<Snapshot> {
    let base = vec![
        (0, vec![(0, 0, 1), (1, 1, 2), (0, 0, 3), (3, 2, 0)]),
        (1, vec![(0, 0, 1), (2, 0, 3), (1, 1, 2), (4, 2, 1)]),
        (2, vec![(1, 0, 4), (4, 1, 5), (0, 0, 3), (5, 2, 2)]),
    ];
    base.into_iter()
        .map(|(t, mut edges)| {
            if reverse_within_snapshot {
                edges.reverse();
            }
            Snapshot { t, edges }
        })
        .collect()
}

#[test]
fn seen_objects_is_insertion_order_invariant() {
    let a = HistoryIndex::build(&snapshots(false));
    let b = HistoryIndex::build(&snapshots(true));
    for s in 0..6 {
        for r in 0..3 {
            assert_eq!(
                a.seen_objects(s, r),
                b.seen_objects(s, r),
                "seen_objects({s}, {r}) depends on within-snapshot edge order"
            );
        }
    }
}

#[test]
fn two_runs_render_identical_bytes() {
    // The end-to-end form of the invariant: independently build the index
    // twice and render every query's history to a byte string — the bytes
    // must match exactly. Before the BTreeMap conversion this went through
    // hasher-seeded iteration order and could differ across processes.
    let render = || {
        let idx = HistoryIndex::build(&snapshots(false));
        let mut out = String::new();
        for s in 0..6 {
            for r in 0..3 {
                out.push_str(&format!("{s},{r}:{:?};", idx.seen_objects(s, r)));
                out.push_str(&format!("{:?}\n", idx.query_subgraph(s, r, 8).edges));
            }
        }
        out
    };
    assert_eq!(render().into_bytes(), render().into_bytes());
}

#[test]
fn rel_subjects_iterates_in_relation_order() {
    let snap = &snapshots(false)[0];
    let rels: Vec<usize> = snap.rel_subjects().into_keys().collect();
    let mut sorted = rels.clone();
    sorted.sort_unstable();
    assert_eq!(
        rels, sorted,
        "rel_subjects must iterate in ascending RelId order"
    );
}

#[test]
fn time_aware_ranking_is_stable_across_truth_set_construction_order() {
    let scores = vec![0.1f32, 0.9, 0.3, 0.9, 0.2];
    let q = Quad {
        s: 0,
        r: 0,
        o: 3,
        t: 0,
    };
    let mut fwd = BTreeSet::new();
    let mut rev = BTreeSet::new();
    let facts = [(0usize, 0usize, 1usize), (0, 0, 3), (2, 1, 4)];
    for f in facts {
        fwd.insert(f);
    }
    for f in facts.iter().rev() {
        rev.insert(*f);
    }
    assert_eq!(
        rank_time_aware(&scores, &q, &fwd),
        rank_time_aware(&scores, &q, &rev)
    );
}
