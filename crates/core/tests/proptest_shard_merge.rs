//! Property tests for the scatter-gather merge contract (PR 10 satellite):
//! for ANY N-way entity partition, per-shard `shard_topk` followed by
//! `merge_topk` must be `to_bits`-identical — same entity order, same raw
//! score bits — to single-node `topk_from_scores`. Tie-heavy score vectors
//! (drawn from a tiny palette) exercise the entity-id tie-break, and a
//! companion property checks that `SoftmaxStat::combine` recovers the
//! single-node softmax probabilities to float tolerance.

use logcl_core::{merge_topk, shard_topk, topk_from_scores, ScoredEntity, ShardSpec, SoftmaxStat};
use logcl_tkg::TkgDataset;
use proptest::prelude::*;

/// A dataset stub with just enough shape for `topk_from_scores`: it only
/// reads `entity_names` (all fields are public, so no preset generation
/// is needed).
fn tiny_dataset(num_entities: usize) -> TkgDataset {
    TkgDataset {
        name: "merge-prop".to_string(),
        num_entities,
        num_rels: 1,
        num_times: 1,
        train: Vec::new(),
        valid: Vec::new(),
        test: Vec::new(),
        entity_names: (0..num_entities).map(|i| format!("e{i}")).collect(),
        rel_names: vec!["r0".to_string()],
        static_facts: Vec::new(),
        num_static_rels: 0,
    }
}

/// Splits `scores` into the `n` shard ranges of `ShardSpec` and runs the
/// per-shard top-k. `n` may exceed the entity count; trailing shards are
/// empty and must merge away cleanly.
fn scatter(scores: &[f32], n: usize, k: usize) -> Vec<Vec<ScoredEntity>> {
    (0..n)
        .map(|i| {
            let spec = ShardSpec::new(i, n).expect("valid shard index");
            let (lo, hi) = spec.range(scores.len());
            shard_topk(&scores[lo..hi], lo, k)
        })
        .collect()
}

fn assert_bit_identical(scores: &[f32], n: usize, k: usize) -> Result<(), TestCaseError> {
    let ds = tiny_dataset(scores.len());
    let single = topk_from_scores(&ds, scores, k);
    let merged = merge_topk(&scatter(scores, n, k), k);

    prop_assert_eq!(
        merged.len(),
        single.len(),
        "merged {} entries vs single-node {} (n={}, k={})",
        merged.len(),
        single.len(),
        n,
        k
    );
    for (rank, (m, s)) in merged.iter().zip(single.iter()).enumerate() {
        prop_assert_eq!(
            m.entity,
            s.entity,
            "rank {}: merged entity {} != single-node {} (n={})",
            rank,
            m.entity,
            s.entity,
            n
        );
        prop_assert_eq!(
            m.score.to_bits(),
            s.score.to_bits(),
            "rank {}: merged score bits differ from single-node (n={})",
            rank,
            n
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary scores, arbitrary partition width (including n > |E|,
    /// which leaves trailing shards empty).
    #[test]
    fn merge_matches_single_node_for_random_scores(
        raw in proptest::collection::vec(-1000i32..1000, 1..80),
        n in 1usize..9,
        k in 1usize..16,
    ) {
        let scores: Vec<f32> = raw.iter().map(|&v| v as f32 / 16.0).collect();
        assert_bit_identical(&scores, n, k)?;
    }

    /// Tie-heavy vectors: scores drawn from a 3-value palette force exact
    /// f32 ties, so only the entity-id ascending tie-break can produce a
    /// deterministic order — and it must match single-node exactly.
    #[test]
    fn merge_matches_single_node_on_exact_ties(
        raw in proptest::collection::vec(0usize..3, 1..60),
        n in 1usize..7,
        k in 1usize..32,
    ) {
        let palette = [0.5f32, -2.25, 7.125];
        let scores: Vec<f32> = raw.iter().map(|&v| palette[v]).collect();
        assert_bit_identical(&scores, n, k)?;
    }

    /// Degenerate partitions: every entity its own shard (plus empties
    /// when n > |E|) must still reproduce the single-node ranking.
    #[test]
    fn one_entity_per_shard_is_still_identical(
        raw in proptest::collection::vec(-64i32..64, 1..24),
        extra in 0usize..4,
        k in 1usize..8,
    ) {
        let scores: Vec<f32> = raw.iter().map(|&v| v as f32 * 0.375).collect();
        let n = scores.len() + extra;
        assert_bit_identical(&scores, n, k)?;
    }

    /// Softmax partials: combining per-shard `(max, Σ exp)` statistics
    /// recovers the single-node probabilities to float tolerance. (The
    /// merge contract guarantees bit-identical *scores*; probabilities
    /// are only numerically equal because f32 addition is not
    /// associative across shard boundaries.)
    #[test]
    fn combined_softmax_stats_match_full_softmax(
        raw in proptest::collection::vec(-200i32..200, 1..64),
        n in 1usize..7,
    ) {
        let scores: Vec<f32> = raw.iter().map(|&v| v as f32 / 8.0).collect();
        let ds = tiny_dataset(scores.len());
        let single = topk_from_scores(&ds, &scores, scores.len());

        let stats: Vec<SoftmaxStat> = (0..n)
            .map(|i| {
                let (lo, hi) = ShardSpec::new(i, n).unwrap().range(scores.len());
                SoftmaxStat::from_scores(&scores[lo..hi])
            })
            .collect();
        let combined = SoftmaxStat::combine(&stats);

        for p in &single {
            let got = combined.probability(p.score);
            prop_assert!(
                (got - p.probability).abs() <= 1e-5,
                "entity {}: combined probability {} vs single-node {} (n={})",
                p.entity, got, p.probability, n
            );
        }
    }
}
