//! Property test for the streaming encoder state: advancing an
//! [`EncoderState`] snapshot by snapshot must be **bit-identical**
//! (`to_bits`) to a from-scratch streaming encode at *every* history
//! prefix — not just the final horizon — over randomly generated graphs,
//! window lengths and dimensions. A serde round-trip mid-stream must also
//! resume the exact float stream, which is the property WAL recovery
//! leans on.

use proptest::prelude::*;

use logcl_core::config::LogClConfig;
use logcl_core::local_encoder::{EncoderState, LocalEncoder, LocalEncoding};
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::{Quad, Snapshot};

const NUM_RELS: usize = 4;

/// Folds raw generated tuples into in-range quads for an `e`-entity,
/// `t`-timestamp graph (the stand-in proptest has no `prop_flat_map`, so
/// dependent ranges are reduced modulo the drawn sizes).
fn fold_quads(raw: &[(usize, usize, usize, usize)], e: usize, t: usize) -> Vec<Quad> {
    raw.iter()
        .map(|&(s, r, o, time)| Quad::new(s % e, r % NUM_RELS, o % e, time % t))
        .collect()
}

/// Packs a reference encoding into a state-shaped container so the
/// comparison reuses `EncoderState::to_bits` (h0 deliberately mirrors h;
/// only the evolved quantities are compared).
fn fingerprint_encoding(enc: &LocalEncoding) -> u64 {
    EncoderState {
        h0: enc.h_final.to_tensor(),
        h: enc.h_final.to_tensor(),
        rel: enc.rel_final.to_tensor(),
        window: enc
            .aggs
            .iter()
            .zip(enc.evolved.iter())
            .map(|(a, e)| (a.to_tensor(), e.to_tensor()))
            .collect(),
        m: 0,
        horizon: 0,
        local: true,
    }
    .to_bits()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Incremental advance ≡ from-scratch streaming encode at every prefix.
    #[test]
    fn advance_is_bit_identical_to_reference_at_every_prefix(
        e in 2usize..7,
        t in 2usize..7,
        m in 1usize..5,
        raw in proptest::collection::vec((0usize..64, 0usize..64, 0usize..64, 0usize..64), 4..25),
        seed in 1u64..1_000,
    ) {
        let quads = fold_quads(&raw, e, t);
        let snaps = Snapshot::group_by_time(&quads, t);
        let cfg = LogClConfig { dim: 8, time_bank: 4, m, ..Default::default() };
        let mut rng = Rng::seed(seed);
        let enc = LocalEncoder::new(&cfg, &mut rng);
        let h0 = Var::param(Tensor::randn(&[e, 8], 0.3, &mut rng));
        let rel0 = Var::param(Tensor::randn(&[2 * NUM_RELS, 8], 0.3, &mut rng));

        let mut state = enc.init_state(&h0.to_tensor(), &rel0.to_tensor(), m, true);
        for horizon in 0..=snaps.len() {
            let reference = enc.encode_stream(&h0, &rel0, &snaps, horizon, m);
            let from_state = enc.encoding_from_state(&state);
            prop_assert_eq!(state.horizon, horizon);
            prop_assert_eq!(
                fingerprint_encoding(&from_state),
                fingerprint_encoding(&reference),
                "prefix {} of {} diverged", horizon, snaps.len()
            );
            if horizon < snaps.len() {
                enc.advance_state(&mut state, &rel0.to_tensor(), &snaps[horizon]);
            }
        }
        prop_assert!(state.window.len() <= m);
    }

    /// Serialising the state mid-stream and resuming from the record
    /// continues the exact same float stream as the uninterrupted state.
    #[test]
    fn serde_round_trip_mid_stream_resumes_exactly(
        e in 2usize..7,
        t in 2usize..7,
        m in 1usize..5,
        raw in proptest::collection::vec((0usize..64, 0usize..64, 0usize..64, 0usize..64), 4..25),
        seed in 1u64..1_000,
    ) {
        let quads = fold_quads(&raw, e, t);
        let snaps = Snapshot::group_by_time(&quads, t);
        let cfg = LogClConfig { dim: 8, time_bank: 4, m, ..Default::default() };
        let mut rng = Rng::seed(seed);
        let enc = LocalEncoder::new(&cfg, &mut rng);
        let h0 = Tensor::randn(&[e, 8], 0.3, &mut rng);
        let rel0 = Tensor::randn(&[2 * NUM_RELS, 8], 0.3, &mut rng);

        let cut = snaps.len() / 2;
        let mut live = enc.init_state(&h0, &rel0, m, true);
        for snap in &snaps[..cut] {
            enc.advance_state(&mut live, &rel0, snap);
        }
        let json = serde_json::to_string(&live.to_record()).unwrap();
        let mut resumed = EncoderState::from_record(
            &serde_json::from_str(&json).unwrap()
        ).unwrap();
        prop_assert_eq!(resumed.to_bits(), live.to_bits());
        for snap in &snaps[cut..] {
            enc.advance_state(&mut live, &rel0, snap);
            enc.advance_state(&mut resumed, &rel0, snap);
        }
        prop_assert_eq!(resumed.to_bits(), live.to_bits());
    }
}
