//! Crash/resume integration test: interrupting training mid-run (the
//! SIGKILL-equivalent `halt_after_epoch` hook stops right after a durable
//! checkpoint, exactly like a kill between epochs) and resuming from the
//! checkpoint must reproduce the uninterrupted run's final loss, final
//! parameters and test MRR **bit for bit** under a fixed seed — the
//! checkpoint provably captures the complete training state.
//!
//! The reference run uses the serial kernel backend while the interrupted
//! and resumed runs use the 4-thread parallel backend, so this test also
//! proves the two stronger guarantees at once: checkpoints are portable
//! across thread counts, and a multi-threaded resumed run is bit-identical
//! to a single-threaded uninterrupted one.

use logcl_core::api::evaluate;
use logcl_core::checkpoint::CheckpointPolicy;
use logcl_core::config::LogClConfig;
use logcl_core::trainer::train;
use logcl_core::{LogCl, TrainOptions};
use logcl_tkg::{SyntheticPreset, TkgDataset};

const EPOCHS: usize = 6;
const HALT_AFTER: usize = 2;

fn dataset() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn model(ds: &TkgDataset, threads: usize) -> LogCl {
    LogCl::new(
        ds,
        LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            seed: 20240807,
            threads,
            ..Default::default()
        },
    )
}

fn opts() -> TrainOptions {
    let mut o = TrainOptions::epochs(EPOCHS);
    o.select_on_valid = true; // exercise the valid-selection state too
    o
}

fn params_bits(model: &LogCl) -> Vec<(String, Vec<u32>)> {
    model
        .params
        .iter()
        .map(|(name, var)| {
            let t = var.to_tensor();
            (
                name.to_string(),
                t.data().iter().map(|f| f.to_bits()).collect(),
            )
        })
        .collect()
}

#[test]
fn interrupted_plus_resume_matches_uninterrupted_bit_for_bit() {
    let dir = std::env::temp_dir().join("logcl-crash-resume");
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt_path = dir.join("interrupted.ckpt");

    let ds = dataset();

    // --- Reference: one uninterrupted run on the serial backend. --------
    let mut reference = model(&ds, 1);
    let ref_report = train(&mut reference, &ds, &opts()).unwrap();
    let test = ds.test.clone();
    let ref_metrics = evaluate(&mut reference, &ds, &test);

    // --- Interrupted run: killed right after epoch HALT_AFTER's
    //     checkpoint hit the disk; runs on the 4-thread backend. ----------
    let mut interrupted = model(&ds, 4);
    let mut halt_opts = opts();
    halt_opts.checkpoint = Some(CheckpointPolicy::new(&ckpt_path, 1));
    halt_opts.halt_after_epoch = Some(HALT_AFTER);
    let halt_report = train(&mut interrupted, &ds, &halt_opts).unwrap();
    assert_eq!(halt_report.halted_at_epoch, Some(HALT_AFTER));
    assert_eq!(halt_report.epoch_losses.len(), HALT_AFTER + 1);

    // --- Resumed run: a fresh process restores everything, still on the
    //     4-thread backend. ----------------------------------------------
    let mut resumed = model(&ds, 4);
    let mut resume_opts = opts();
    resume_opts.resume = Some(ckpt_path.clone());
    let res_report = train(&mut resumed, &ds, &resume_opts).unwrap();
    assert_eq!(res_report.resumed_at_epoch, Some(HALT_AFTER + 1));

    // Loss curve: the interrupted prefix plus the resumed run's curve is
    // exactly the reference curve (resume carries the prefix forward).
    assert_eq!(res_report.epoch_losses.len(), EPOCHS);
    for (e, (a, b)) in ref_report
        .epoch_losses
        .iter()
        .zip(&res_report.epoch_losses)
        .enumerate()
    {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "epoch {e} loss diverged: {a} vs {b}"
        );
    }
    assert_eq!(
        ref_report.final_loss().to_bits(),
        res_report.final_loss().to_bits()
    );

    // Validation-selection state followed the same trajectory.
    assert_eq!(ref_report.selected_epoch, res_report.selected_epoch);
    assert_eq!(ref_report.valid_trace.len(), res_report.valid_trace.len());
    for ((ea, ma), (eb, mb)) in ref_report.valid_trace.iter().zip(&res_report.valid_trace) {
        assert_eq!(ea, eb);
        assert_eq!(ma.to_bits(), mb.to_bits(), "valid MRR diverged at {ea}");
    }

    // Final parameters are bitwise identical…
    assert_eq!(params_bits(&reference), params_bits(&resumed));

    // …so the final test metrics are too.
    let res_metrics = evaluate(&mut resumed, &ds, &test);
    assert_eq!(ref_metrics.mrr.to_bits(), res_metrics.mrr.to_bits());
    assert_eq!(ref_metrics.hits1.to_bits(), res_metrics.hits1.to_bits());
    assert_eq!(ref_metrics.hits3.to_bits(), res_metrics.hits3.to_bits());
    assert_eq!(ref_metrics.hits10.to_bits(), res_metrics.hits10.to_bits());

    std::fs::remove_file(&ckpt_path).ok();
}
