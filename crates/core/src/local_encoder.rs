//! The local entity-aware attention recurrent encoder (Section III-C).
//!
//! For each of the last `m` snapshots before the query time, entities are
//! (1) fused with a periodic encoding of the interval to the query time
//! (Eq. 2–3), (2) aggregated over concurrent facts by a relational GNN
//! (Eq. 4), and (3) evolved through an entity GRU (Eq. 5) while relations
//! evolve through mean pooling + a time gate (Eq. 6–8). Entity-aware
//! attention (Eq. 9–11) then forms per-query representations that weight
//! past snapshots by their relevance to the query.

use logcl_gnn::aggregator::EdgeBatch;
use logcl_gnn::attention::mean_relation_per_query;
use logcl_gnn::{GruCell, LocalEntityAttention, RelGnn, RelationEvolution, TimeEncoder};
use logcl_tensor::nn::{dropout, ParamSet};
use logcl_tensor::{Rng, Var};
use logcl_tkg::Snapshot;

use crate::config::LogClConfig;

/// The outputs of one local encoding pass over the last `m` snapshots.
pub struct LocalEncoding {
    /// Evolved entity matrix `H_{t_q}` (`[E, D]`).
    pub h_final: Var,
    /// Evolved relation matrix `R_{t_q}` (`[2R, D]`).
    pub rel_final: Var,
    /// Post-aggregation entity matrices, one per processed snapshot
    /// (oldest first).
    pub aggs: Vec<Var>,
    /// Post-evolution entity matrices, aligned with `aggs`.
    pub evolved: Vec<Var>,
}

/// The recurrent encoder.
pub struct LocalEncoder {
    time_enc: TimeEncoder,
    gnn: RelGnn,
    gru: GruCell,
    rel_evo: RelationEvolution,
    att: LocalEntityAttention,
    dropout_p: f32,
}

impl LocalEncoder {
    /// Builds the encoder from the model configuration.
    pub fn new(cfg: &LogClConfig, rng: &mut Rng) -> Self {
        Self {
            time_enc: TimeEncoder::new(cfg.dim, cfg.time_bank, rng),
            gnn: RelGnn::new(cfg.aggregator, cfg.dim, cfg.local_layers, rng),
            gru: GruCell::new(cfg.dim, rng),
            rel_evo: RelationEvolution::new(cfg.dim, rng),
            att: LocalEntityAttention::new(cfg.dim, rng),
            dropout_p: cfg.dropout,
        }
    }

    /// Runs the aggregation + evolution pipeline over snapshots
    /// `t_q − m .. t_q − 1` (clipped at 0).
    ///
    /// `h0` / `rel0` are the initial (possibly noise-perturbed) embeddings;
    /// `num_entities` anchors the scatter target size.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // t drives both indexing and the interval d
    pub fn encode(
        &self,
        h0: &Var,
        rel0: &Var,
        snapshots: &[Snapshot],
        t_q: usize,
        m: usize,
        training: bool,
        rng: &mut Rng,
    ) -> LocalEncoding {
        let num_entities = h0.shape()[0];
        let start = t_q.saturating_sub(m);
        let mut h = h0.clone();
        let mut rel = rel0.clone();
        let mut aggs = Vec::with_capacity(t_q - start);
        let mut evolved = Vec::with_capacity(t_q - start);
        for t in start..t_q {
            let snap = &snapshots[t];
            let d = (t_q - t) as f32;
            let h_dyn = self.time_enc.forward(&h, d); // Eq. 2–3
            let (s_idx, r_idx, o_idx) = snap.edge_index();
            let edges = EdgeBatch {
                subjects: &s_idx,
                relations: &r_idx,
                objects: &o_idx,
                num_entities,
            };
            let h_agg = self.gnn.forward(&h_dyn, &rel, &edges); // Eq. 4
            let h_agg = dropout(&h_agg, self.dropout_p, training, rng);
            h = self.gru.forward(&h, &h_agg); // Eq. 5
            rel = self.rel_evo.forward(&rel, rel0, &h, &s_idx, &r_idx); // Eq. 6–8
            aggs.push(h_agg);
            evolved.push(h.clone());
        }
        LocalEncoding {
            h_final: h,
            rel_final: rel,
            aggs,
            evolved,
        }
    }

    /// Per-query local representations (Eq. 9–11). With entity-aware
    /// attention disabled (LogCL-w/o-eatt) the representation is simply the
    /// subject's final evolved state.
    pub fn query_representation(
        &self,
        enc: &LocalEncoding,
        subjects: &[usize],
        rels: &[usize],
        use_entity_attention: bool,
    ) -> Var {
        let h_now = enc.h_final.gather_rows(subjects);
        if !use_entity_attention || enc.aggs.len() < 2 {
            return h_now;
        }
        let r_mean = mean_relation_per_query(&enc.rel_final, subjects, rels);
        // Past steps: all but the last processed snapshot (the last evolved
        // state *is* h_now's matrix).
        let past = enc.aggs.len() - 1;
        let agg_rows: Vec<Var> = enc.aggs[..past]
            .iter()
            .map(|a| a.gather_rows(subjects))
            .collect();
        let ev_rows: Vec<Var> = enc.evolved[..past]
            .iter()
            .map(|e| e.gather_rows(subjects))
            .collect();
        self.att.forward(&h_now, &r_mean, &agg_rows, &ev_rows)
    }

    /// Registers every sub-module's parameters.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        self.time_enc.register(params, &format!("{prefix}.time"));
        self.gnn.register(params, &format!("{prefix}.gnn"));
        self.gru.register(params, &format!("{prefix}.gru"));
        self.rel_evo.register(params, &format!("{prefix}.rel_evo"));
        self.att.register(params, &format!("{prefix}.att"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;
    use logcl_tkg::Quad;

    fn toy_snapshots() -> Vec<Snapshot> {
        let quads = vec![
            Quad::new(0, 0, 1, 0),
            Quad::new(1, 1, 2, 0),
            Quad::new(2, 0, 3, 1),
            Quad::new(0, 1, 3, 2),
            Quad::new(3, 0, 0, 3),
        ];
        Snapshot::group_by_time(&quads, 5)
    }

    fn setup() -> (LocalEncoder, Var, Var, Rng) {
        let cfg = LogClConfig {
            dim: 8,
            time_bank: 4,
            ..Default::default()
        };
        let mut rng = Rng::seed(101);
        let enc = LocalEncoder::new(&cfg, &mut rng);
        let h0 = Var::param(Tensor::randn(&[4, 8], 0.3, &mut rng));
        let rel0 = Var::param(Tensor::randn(&[4, 8], 0.3, &mut rng));
        (enc, h0, rel0, rng)
    }

    #[test]
    fn encode_produces_one_state_per_snapshot() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 4, 3, false, &mut rng);
        assert_eq!(out.aggs.len(), 3);
        assert_eq!(out.evolved.len(), 3);
        assert_eq!(out.h_final.shape(), vec![4, 8]);
        assert_eq!(out.rel_final.shape(), vec![4, 8]);
    }

    #[test]
    fn window_clips_at_time_zero() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 1, 5, false, &mut rng);
        assert_eq!(out.aggs.len(), 1);
        let out0 = enc.encode(&h0, &rel0, &snaps, 0, 5, false, &mut rng);
        assert_eq!(out0.aggs.len(), 0);
        assert_eq!(out0.h_final.value().data(), h0.value().data());
    }

    #[test]
    fn query_representation_shapes() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 4, 4, false, &mut rng);
        let rep = enc.query_representation(&out, &[0, 2], &[0, 1], true);
        assert_eq!(rep.shape(), vec![2, 8]);
        let rep_no_att = enc.query_representation(&out, &[0, 2], &[0, 1], false);
        assert_eq!(rep_no_att.shape(), vec![2, 8]);
        assert_ne!(rep.value().data(), rep_no_att.value().data());
    }

    #[test]
    fn gradient_flows_to_initial_embeddings() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 3, 3, true, &mut rng);
        let rep = enc.query_representation(&out, &[1], &[2], true);
        rep.sum().backward();
        assert!(h0.grad().is_some());
        assert!(rel0.grad().is_some());
        assert!(h0.grad().unwrap().all_finite());
    }

    #[test]
    fn registration_is_complete() {
        let (enc, _, _, _) = setup();
        let mut params = ParamSet::new();
        enc.register(&mut params, "local");
        // time(3) + gnn(2 layers × 2) + gru(9) + rel_evo(2) + att(3) = 21
        assert_eq!(params.len(), 21);
    }

    #[test]
    fn deterministic_in_eval_mode() {
        let (enc, h0, rel0, _) = setup();
        let snaps = toy_snapshots();
        let a = enc.encode(&h0, &rel0, &snaps, 4, 3, false, &mut Rng::seed(1));
        let b = enc.encode(&h0, &rel0, &snaps, 4, 3, false, &mut Rng::seed(2));
        assert_eq!(a.h_final.value().data(), b.h_final.value().data());
    }
}
