//! The local entity-aware attention recurrent encoder (Section III-C).
//!
//! For each of the last `m` snapshots before the query time, entities are
//! (1) fused with a periodic encoding of the interval to the query time
//! (Eq. 2–3), (2) aggregated over concurrent facts by a relational GNN
//! (Eq. 4), and (3) evolved through an entity GRU (Eq. 5) while relations
//! evolve through mean pooling + a time gate (Eq. 6–8). Entity-aware
//! attention (Eq. 9–11) then forms per-query representations that weight
//! past snapshots by their relevance to the query.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use logcl_gnn::aggregator::EdgeBatch;
use logcl_gnn::attention::mean_relation_per_query;
use logcl_gnn::{GruCell, LocalEntityAttention, RelGnn, RelationEvolution, TimeEncoder};
use logcl_tensor::nn::{dropout, ParamSet};
use logcl_tensor::serialize::{CheckpointError, TensorRecord};
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::Snapshot;

use crate::config::LogClConfig;

/// The outputs of one local encoding pass over the last `m` snapshots.
pub struct LocalEncoding {
    /// Evolved entity matrix `H_{t_q}` (`[E, D]`).
    pub h_final: Var,
    /// Evolved relation matrix `R_{t_q}` (`[2R, D]`).
    pub rel_final: Var,
    /// Post-aggregation entity matrices, one per processed snapshot
    /// (oldest first).
    pub aggs: Vec<Var>,
    /// Post-evolution entity matrices, aligned with `aggs`.
    pub evolved: Vec<Var>,
}

/// The checkpointable streaming state of the recurrent encoder.
///
/// Where [`LocalEncoder::encode`] re-runs a *query-relative* window (each
/// step's interval is `t_q − t`, so nothing can be reused across queries),
/// the streaming state evolves the entity/relation matrices over the full
/// snapshot prefix with a *fixed unit interval* per step — the
/// evolutional-representation discipline of RE-GCN/CEN. One consumed
/// snapshot is O(Δ) work, the state is a few dense tensors plus a bounded
/// window of the last `m` (aggregated, evolved) pairs for entity-aware
/// attention, and the whole thing serialises into a snapshot record so a
/// restarted server resumes the exact float stream.
///
/// The `horizon` cursor is a watermark: each snapshot is consumed exactly
/// once, when the horizon first passes it. Late facts appended behind the
/// watermark stay visible to the windowed encode path but never rewind the
/// stream — live serving and WAL replay therefore apply the same advance
/// ops in the same order, which is what makes recovery bit-identical.
#[derive(Debug, Clone)]
pub struct EncoderState {
    /// Initial (refined) entity embeddings the stream started from (`[E, D]`).
    pub h0: Tensor,
    /// Entities evolved over `snapshots[..horizon]` (`[E, D]`).
    pub h: Tensor,
    /// Relations evolved over the same prefix (`[2R, D]`).
    pub rel: Tensor,
    /// Last `≤ m` (post-aggregation, post-evolution) pairs, oldest first.
    pub window: VecDeque<(Tensor, Tensor)>,
    /// Attention window length.
    pub m: usize,
    /// Number of snapshots consumed (the watermark).
    pub horizon: usize,
    /// Whether the local encoder is enabled; when `false` the state only
    /// tracks the watermark (LogCL-w/o-local still serves the head).
    pub local: bool,
}

/// One serialised (aggregated, evolved) attention-window pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowPairRecord {
    /// Post-aggregation entity matrix.
    pub agg: TensorRecord,
    /// Post-evolution entity matrix.
    pub evolved: TensorRecord,
}

/// Serialisable form of [`EncoderState`], embedded in serving snapshots.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderStateRecord {
    /// See [`EncoderState::local`].
    pub local: bool,
    /// See [`EncoderState::m`].
    pub m: usize,
    /// See [`EncoderState::horizon`].
    pub horizon: usize,
    /// See [`EncoderState::h0`].
    pub h0: TensorRecord,
    /// See [`EncoderState::h`].
    pub h: TensorRecord,
    /// See [`EncoderState::rel`].
    pub rel: TensorRecord,
    /// See [`EncoderState::window`].
    pub window: Vec<WindowPairRecord>,
}

impl EncoderState {
    /// Converts to the serialisable record.
    pub fn to_record(&self) -> EncoderStateRecord {
        EncoderStateRecord {
            local: self.local,
            m: self.m,
            horizon: self.horizon,
            h0: TensorRecord::from(&self.h0),
            h: TensorRecord::from(&self.h),
            rel: TensorRecord::from(&self.rel),
            window: self
                .window
                .iter()
                .map(|(a, e)| WindowPairRecord {
                    agg: TensorRecord::from(a),
                    evolved: TensorRecord::from(e),
                })
                .collect(),
        }
    }

    /// Rebuilds the state from a record, rejecting shape-inconsistent
    /// records instead of panicking deep in `Tensor`.
    pub fn from_record(rec: &EncoderStateRecord) -> Result<Self, CheckpointError> {
        let mut window = VecDeque::with_capacity(rec.window.len());
        for pair in &rec.window {
            window.push_back((pair.agg.try_to_tensor()?, pair.evolved.try_to_tensor()?));
        }
        Ok(Self {
            h0: rec.h0.try_to_tensor()?,
            h: rec.h.try_to_tensor()?,
            rel: rec.rel.try_to_tensor()?,
            window,
            m: rec.m,
            horizon: rec.horizon,
            local: rec.local,
        })
    }

    /// FNV-1a fingerprint over the exact bit patterns of every tensor plus
    /// the cursor fields — two states with equal fingerprints are
    /// bit-identical for every serving purpose.
    pub fn to_bits(&self) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        fn mix(hash: &mut u64, word: u64) {
            *hash ^= word;
            *hash = hash.wrapping_mul(PRIME);
        }
        fn mix_tensor(hash: &mut u64, t: &Tensor) {
            for &d in t.shape() {
                mix(hash, d as u64);
            }
            for &v in t.data() {
                mix(hash, v.to_bits() as u64);
            }
        }
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        mix(&mut hash, self.local as u64);
        mix(&mut hash, self.m as u64);
        mix(&mut hash, self.horizon as u64);
        mix_tensor(&mut hash, &self.h0);
        mix_tensor(&mut hash, &self.h);
        mix_tensor(&mut hash, &self.rel);
        for (a, e) in &self.window {
            mix_tensor(&mut hash, a);
            mix_tensor(&mut hash, e);
        }
        hash
    }
}

/// The recurrent encoder.
pub struct LocalEncoder {
    time_enc: TimeEncoder,
    gnn: RelGnn,
    gru: GruCell,
    rel_evo: RelationEvolution,
    att: LocalEntityAttention,
    dropout_p: f32,
}

impl LocalEncoder {
    /// Builds the encoder from the model configuration.
    pub fn new(cfg: &LogClConfig, rng: &mut Rng) -> Self {
        Self {
            time_enc: TimeEncoder::new(cfg.dim, cfg.time_bank, rng),
            gnn: RelGnn::new(cfg.aggregator, cfg.dim, cfg.local_layers, rng),
            gru: GruCell::new(cfg.dim, rng),
            rel_evo: RelationEvolution::new(cfg.dim, rng),
            att: LocalEntityAttention::new(cfg.dim, rng),
            dropout_p: cfg.dropout,
        }
    }

    /// Runs the aggregation + evolution pipeline over snapshots
    /// `t_q − m .. t_q − 1` (clipped at 0).
    ///
    /// `h0` / `rel0` are the initial (possibly noise-perturbed) embeddings;
    /// `num_entities` anchors the scatter target size.
    #[allow(clippy::too_many_arguments, clippy::needless_range_loop)] // t drives both indexing and the interval d
    pub fn encode(
        &self,
        h0: &Var,
        rel0: &Var,
        snapshots: &[Snapshot],
        t_q: usize,
        m: usize,
        training: bool,
        rng: &mut Rng,
    ) -> LocalEncoding {
        let num_entities = h0.shape()[0];
        let start = t_q.saturating_sub(m);
        let mut h = h0.clone();
        let mut rel = rel0.clone();
        let mut aggs = Vec::with_capacity(t_q - start);
        let mut evolved = Vec::with_capacity(t_q - start);
        for t in start..t_q {
            let snap = &snapshots[t];
            let d = (t_q - t) as f32;
            let h_dyn = self.time_enc.forward(&h, d); // Eq. 2–3
            let (s_idx, r_idx, o_idx) = snap.edge_index();
            let edges = EdgeBatch {
                subjects: &s_idx,
                relations: &r_idx,
                objects: &o_idx,
                num_entities,
            };
            let h_agg = self.gnn.forward(&h_dyn, &rel, &edges); // Eq. 4
            let h_agg = dropout(&h_agg, self.dropout_p, training, rng);
            h = self.gru.forward(&h, &h_agg); // Eq. 5
            rel = self.rel_evo.forward(&rel, rel0, &h, &s_idx, &r_idx); // Eq. 6–8
            aggs.push(h_agg);
            evolved.push(h.clone());
        }
        LocalEncoding {
            h_final: h,
            rel_final: rel,
            aggs,
            evolved,
        }
    }

    /// Starts a streaming state at horizon 0 from the given initial
    /// embeddings. Advance it snapshot by snapshot with
    /// [`LocalEncoder::advance_state`].
    pub fn init_state(&self, h0: &Tensor, rel0: &Tensor, m: usize, local: bool) -> EncoderState {
        EncoderState {
            h0: h0.clone(),
            h: h0.clone(),
            rel: rel0.clone(),
            window: VecDeque::new(),
            m,
            horizon: 0,
            local,
        }
    }

    /// Consumes one closed snapshot: one aggregation + evolution step with
    /// a unit interval, in place, under inference semantics (dropout is
    /// identity, no RNG is drawn — the advance is a pure function of the
    /// state, the weights and the snapshot). O(|snap| + E·D) regardless of
    /// how deep the history already is.
    ///
    /// `rel0` is the static relation table (the time-gate anchor of
    /// Eq. 6–8), passed by value each call because the state must not hold
    /// a borrow of the model across ingests.
    pub fn advance_state(&self, state: &mut EncoderState, rel0: &Tensor, snap: &Snapshot) {
        debug_assert_eq!(
            snap.t, state.horizon,
            "streaming advance must consume snapshots in watermark order"
        );
        if state.local {
            let num_entities = state.h0.shape()[0];
            let h = Var::constant(state.h.clone());
            let rel = Var::constant(state.rel.clone());
            let rel0 = Var::constant(rel0.clone());
            let h_dyn = self.time_enc.forward(&h, 1.0); // Eq. 2–3, unit interval
            let (s_idx, r_idx, o_idx) = snap.edge_index();
            let edges = EdgeBatch {
                subjects: &s_idx,
                relations: &r_idx,
                objects: &o_idx,
                num_entities,
            };
            let h_agg = self.gnn.forward(&h_dyn, &rel, &edges); // Eq. 4
            let h_next = self.gru.forward(&h, &h_agg); // Eq. 5
            let rel_next = self.rel_evo.forward(&rel, &rel0, &h_next, &s_idx, &r_idx); // Eq. 6–8
            state.h = h_next.to_tensor();
            state.rel = rel_next.to_tensor();
            state.window.push_back((h_agg.to_tensor(), state.h.clone()));
            while state.window.len() > state.m {
                state.window.pop_front();
            }
        }
        state.horizon += 1;
    }

    /// Reads the state out as a [`LocalEncoding`] (constants — the
    /// streaming path is inference-only), shaped exactly like the output of
    /// [`LocalEncoder::encode_stream`] at the same horizon.
    pub fn encoding_from_state(&self, state: &EncoderState) -> LocalEncoding {
        LocalEncoding {
            h_final: Var::constant(state.h.clone()),
            rel_final: Var::constant(state.rel.clone()),
            aggs: state
                .window
                .iter()
                .map(|(a, _)| Var::constant(a.clone()))
                .collect(),
            evolved: state
                .window
                .iter()
                .map(|(_, e)| Var::constant(e.clone()))
                .collect(),
        }
    }

    /// From-scratch reference for the streaming semantics: evolves over the
    /// whole prefix `snapshots[..horizon]` with a unit interval per step in
    /// one connected graph, keeping the last `m` (agg, evolved) pairs. The
    /// incremental [`LocalEncoder::advance_state`] is property-tested
    /// bit-identical to this at every prefix — per-step graph truncation
    /// (constants in, tensors out) must not change a single float.
    pub fn encode_stream(
        &self,
        h0: &Var,
        rel0: &Var,
        snapshots: &[Snapshot],
        horizon: usize,
        m: usize,
    ) -> LocalEncoding {
        let num_entities = h0.shape()[0];
        let mut h = h0.clone();
        let mut rel = rel0.clone();
        let mut aggs: VecDeque<Var> = VecDeque::new();
        let mut evolved: VecDeque<Var> = VecDeque::new();
        for snap in &snapshots[..horizon] {
            let h_dyn = self.time_enc.forward(&h, 1.0);
            let (s_idx, r_idx, o_idx) = snap.edge_index();
            let edges = EdgeBatch {
                subjects: &s_idx,
                relations: &r_idx,
                objects: &o_idx,
                num_entities,
            };
            let h_agg = self.gnn.forward(&h_dyn, &rel, &edges);
            h = self.gru.forward(&h, &h_agg);
            rel = self.rel_evo.forward(&rel, rel0, &h, &s_idx, &r_idx);
            aggs.push_back(h_agg);
            evolved.push_back(h.clone());
            if aggs.len() > m {
                aggs.pop_front();
                evolved.pop_front();
            }
        }
        LocalEncoding {
            h_final: h,
            rel_final: rel,
            aggs: aggs.into(),
            evolved: evolved.into(),
        }
    }

    /// Per-query local representations (Eq. 9–11). With entity-aware
    /// attention disabled (LogCL-w/o-eatt) the representation is simply the
    /// subject's final evolved state.
    pub fn query_representation(
        &self,
        enc: &LocalEncoding,
        subjects: &[usize],
        rels: &[usize],
        use_entity_attention: bool,
    ) -> Var {
        let h_now = enc.h_final.gather_rows(subjects);
        if !use_entity_attention || enc.aggs.len() < 2 {
            return h_now;
        }
        let r_mean = mean_relation_per_query(&enc.rel_final, subjects, rels);
        // Past steps: all but the last processed snapshot (the last evolved
        // state *is* h_now's matrix).
        let past = enc.aggs.len() - 1;
        let agg_rows: Vec<Var> = enc.aggs[..past]
            .iter()
            .map(|a| a.gather_rows(subjects))
            .collect();
        let ev_rows: Vec<Var> = enc.evolved[..past]
            .iter()
            .map(|e| e.gather_rows(subjects))
            .collect();
        self.att.forward(&h_now, &r_mean, &agg_rows, &ev_rows)
    }

    /// Registers every sub-module's parameters.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        self.time_enc.register(params, &format!("{prefix}.time"));
        self.gnn.register(params, &format!("{prefix}.gnn"));
        self.gru.register(params, &format!("{prefix}.gru"));
        self.rel_evo.register(params, &format!("{prefix}.rel_evo"));
        self.att.register(params, &format!("{prefix}.att"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;
    use logcl_tkg::Quad;

    fn toy_snapshots() -> Vec<Snapshot> {
        let quads = vec![
            Quad::new(0, 0, 1, 0),
            Quad::new(1, 1, 2, 0),
            Quad::new(2, 0, 3, 1),
            Quad::new(0, 1, 3, 2),
            Quad::new(3, 0, 0, 3),
        ];
        Snapshot::group_by_time(&quads, 5)
    }

    fn setup() -> (LocalEncoder, Var, Var, Rng) {
        let cfg = LogClConfig {
            dim: 8,
            time_bank: 4,
            ..Default::default()
        };
        let mut rng = Rng::seed(101);
        let enc = LocalEncoder::new(&cfg, &mut rng);
        let h0 = Var::param(Tensor::randn(&[4, 8], 0.3, &mut rng));
        let rel0 = Var::param(Tensor::randn(&[4, 8], 0.3, &mut rng));
        (enc, h0, rel0, rng)
    }

    #[test]
    fn encode_produces_one_state_per_snapshot() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 4, 3, false, &mut rng);
        assert_eq!(out.aggs.len(), 3);
        assert_eq!(out.evolved.len(), 3);
        assert_eq!(out.h_final.shape(), vec![4, 8]);
        assert_eq!(out.rel_final.shape(), vec![4, 8]);
    }

    #[test]
    fn window_clips_at_time_zero() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 1, 5, false, &mut rng);
        assert_eq!(out.aggs.len(), 1);
        let out0 = enc.encode(&h0, &rel0, &snaps, 0, 5, false, &mut rng);
        assert_eq!(out0.aggs.len(), 0);
        assert_eq!(out0.h_final.value().data(), h0.value().data());
    }

    #[test]
    fn query_representation_shapes() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 4, 4, false, &mut rng);
        let rep = enc.query_representation(&out, &[0, 2], &[0, 1], true);
        assert_eq!(rep.shape(), vec![2, 8]);
        let rep_no_att = enc.query_representation(&out, &[0, 2], &[0, 1], false);
        assert_eq!(rep_no_att.shape(), vec![2, 8]);
        assert_ne!(rep.value().data(), rep_no_att.value().data());
    }

    #[test]
    fn gradient_flows_to_initial_embeddings() {
        let (enc, h0, rel0, mut rng) = setup();
        let snaps = toy_snapshots();
        let out = enc.encode(&h0, &rel0, &snaps, 3, 3, true, &mut rng);
        let rep = enc.query_representation(&out, &[1], &[2], true);
        rep.sum().backward();
        assert!(h0.grad().is_some());
        assert!(rel0.grad().is_some());
        assert!(h0.grad().unwrap().all_finite());
    }

    #[test]
    fn registration_is_complete() {
        let (enc, _, _, _) = setup();
        let mut params = ParamSet::new();
        enc.register(&mut params, "local");
        // time(3) + gnn(2 layers × 2) + gru(9) + rel_evo(2) + att(3) = 21
        assert_eq!(params.len(), 21);
    }

    #[test]
    fn advance_matches_stream_reference_at_every_prefix() {
        let (enc, h0, rel0, _) = setup();
        let snaps = toy_snapshots();
        let mut state = enc.init_state(&h0.to_tensor(), &rel0.to_tensor(), 3, true);
        for horizon in 0..=snaps.len() {
            let reference = enc.encode_stream(&h0, &rel0, &snaps, horizon, 3);
            let from_state = enc.encoding_from_state(&state);
            assert_eq!(state.horizon, horizon);
            assert_eq!(
                from_state.h_final.value().data(),
                reference.h_final.value().data(),
                "entity drift at horizon {horizon}"
            );
            assert_eq!(
                from_state.rel_final.value().data(),
                reference.rel_final.value().data(),
                "relation drift at horizon {horizon}"
            );
            assert_eq!(from_state.aggs.len(), reference.aggs.len());
            for (a, b) in from_state.aggs.iter().zip(reference.aggs.iter()) {
                assert_eq!(a.value().data(), b.value().data());
            }
            if horizon < snaps.len() {
                enc.advance_state(&mut state, &rel0.to_tensor(), &snaps[horizon]);
            }
        }
        assert_eq!(state.window.len(), 3, "window must stay bounded at m");
    }

    #[test]
    fn state_record_round_trip_is_bit_exact() {
        let (enc, h0, rel0, _) = setup();
        let snaps = toy_snapshots();
        let mut state = enc.init_state(&h0.to_tensor(), &rel0.to_tensor(), 2, true);
        for snap in &snaps[..3] {
            enc.advance_state(&mut state, &rel0.to_tensor(), snap);
        }
        let rec = state.to_record();
        let json = serde_json::to_string(&rec).unwrap();
        let back: EncoderStateRecord = serde_json::from_str(&json).unwrap();
        let restored = EncoderState::from_record(&back).unwrap();
        assert_eq!(restored.to_bits(), state.to_bits());
        // And the restored state advances identically to the original.
        let mut a = state.clone();
        let mut b = restored;
        enc.advance_state(&mut a, &rel0.to_tensor(), &snaps[3]);
        enc.advance_state(&mut b, &rel0.to_tensor(), &snaps[3]);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn corrupt_state_record_is_a_typed_error() {
        let (enc, h0, rel0, _) = setup();
        let state = enc.init_state(&h0.to_tensor(), &rel0.to_tensor(), 2, true);
        let mut rec = state.to_record();
        rec.h.shape = vec![999, 999];
        assert!(EncoderState::from_record(&rec).is_err());
    }

    #[test]
    fn disabled_local_state_only_tracks_the_watermark() {
        let (enc, h0, rel0, _) = setup();
        let snaps = toy_snapshots();
        let mut state = enc.init_state(&h0.to_tensor(), &rel0.to_tensor(), 3, false);
        for snap in &snaps {
            enc.advance_state(&mut state, &rel0.to_tensor(), snap);
        }
        assert_eq!(state.horizon, snaps.len());
        assert!(state.window.is_empty());
        assert_eq!(state.h.data(), h0.to_tensor().data());
    }

    #[test]
    fn deterministic_in_eval_mode() {
        let (enc, h0, rel0, _) = setup();
        let snaps = toy_snapshots();
        let a = enc.encode(&h0, &rel0, &snaps, 4, 3, false, &mut Rng::seed(1));
        let b = enc.encode(&h0, &rel0, &snaps, 4, 3, false, &mut Rng::seed(2));
        assert_eq!(a.h_final.value().data(), b.h_final.value().data());
    }
}
