//! Durable training checkpoints and the trainer's failure vocabulary.
//!
//! A [`TrainCheckpoint`] captures *everything* the training loop needs to
//! continue as if it had never stopped: model parameters, Adam moments,
//! the RNG state, the epoch cursor and the validation-selection state.
//! Restoring one therefore yields bit-identical final metrics to an
//! uninterrupted run under a fixed seed — the property the crash/resume
//! integration test pins down.
//!
//! Files use the checksummed atomic container from
//! [`logcl_tensor::serialize`]; a torn or corrupted checkpoint is rejected
//! with a typed error, never silently half-loaded.

use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use logcl_tensor::optim::AdamState;
use logcl_tensor::rng::RngState;
use logcl_tensor::serialize::{self, Checkpoint, CheckpointError};

/// When the trainer writes durable checkpoints.
#[derive(Debug, Clone)]
pub struct CheckpointPolicy {
    /// Destination file (written atomically; always the latest state).
    pub path: PathBuf,
    /// Write every N completed epochs (`0` disables the cadence).
    pub every_epochs: usize,
    /// Also write whenever validation MRR improves.
    pub on_best_valid: bool,
}

impl CheckpointPolicy {
    /// Checkpoint at `path` every `every_epochs` epochs and on best-valid.
    pub fn new(path: impl Into<PathBuf>, every_epochs: usize) -> Self {
        Self {
            path: path.into(),
            every_epochs,
            on_best_valid: true,
        }
    }
}

/// One divergence-rollback incident, kept in the report (and checkpoint)
/// so operators can see a run healed itself.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct RollbackEvent {
    /// Epoch that diverged.
    pub epoch: usize,
    /// Timestamp (batch) where divergence was detected.
    pub timestamp: usize,
    /// Human-readable cause (non-finite loss, gradient explosion, …).
    pub reason: String,
    /// Learning rate when the divergence hit.
    pub lr_before: f32,
    /// Halved learning rate the retry uses.
    pub lr_after: f32,
}

/// One validation measurement `(epoch, MRR)`; a named struct because the
/// checkpoint payload avoids tuple encodings.
#[derive(Serialize, Deserialize, Debug, Clone, Copy, PartialEq)]
pub struct ValidPoint {
    /// Epoch index the measurement was taken at.
    pub epoch: usize,
    /// Validation MRR (percent).
    pub mrr: f64,
}

/// The complete durable state of an interrupted training run.
#[derive(Serialize, Deserialize, Debug)]
pub struct TrainCheckpoint {
    /// Model parameters (with provenance metadata).
    pub model: Checkpoint,
    /// Adam step count, learning rate and both moment estimates.
    pub optimizer: AdamState,
    /// RNG state — dropout masks and noise draws continue the same stream.
    pub rng: RngState,
    /// Epoch cursor: how many epochs completed; resume starts here.
    pub next_epoch: usize,
    /// Total epochs the run was configured for (resume must match, since
    /// the validation-selection cadence is derived from it).
    pub total_epochs: usize,
    /// Mean loss of every completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation MRR trace so far.
    pub valid_trace: Vec<ValidPoint>,
    /// Best-valid epoch so far.
    pub selected_epoch: Option<usize>,
    /// Best validation MRR so far.
    pub best_valid: Option<f64>,
    /// Parameters at the best-valid epoch (restored at the end of
    /// training when selection is on).
    pub best_params: Option<Checkpoint>,
    /// Divergence rollbacks consumed so far (bounded by `max_rollbacks`).
    pub rollbacks_used: usize,
    /// The incidents themselves.
    pub rollback_events: Vec<RollbackEvent>,
}

impl TrainCheckpoint {
    /// Atomically writes the checkpoint (tmp file + fsync + rename).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        serialize::save_json_durable(self, path)
    }

    /// Loads and integrity-checks a checkpoint file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        serialize::load_json_durable(path)
    }
}

/// Why training stopped without producing a model.
#[derive(Debug)]
pub enum TrainError {
    /// Saving or loading a checkpoint failed (I/O, corruption, version
    /// skew, shape/config mismatch — see the inner error).
    Checkpoint(CheckpointError),
    /// A resume request could not be honoured (wrong run shape).
    Resume(String),
    /// The loss or gradients diverged and the rollback budget ran out.
    Diverged {
        /// Epoch the final divergence hit.
        epoch: usize,
        /// Rollbacks consumed before giving up.
        rollbacks: usize,
        /// Cause of the last incident.
        reason: String,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Checkpoint(e) => write!(f, "training checkpoint error: {e}"),
            Self::Resume(m) => write!(f, "cannot resume: {m}"),
            Self::Diverged {
                epoch,
                rollbacks,
                reason,
            } => write!(
                f,
                "training diverged at epoch {epoch} ({reason}) after exhausting {rollbacks} rollback(s); \
                 lower the learning rate or raise --max-rollbacks"
            ),
        }
    }
}

impl std::error::Error for TrainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::nn::ParamSet;
    use logcl_tensor::optim::Adam;
    use logcl_tensor::{Rng, Tensor};

    fn sample() -> TrainCheckpoint {
        let mut rng = Rng::seed(4);
        let mut params = ParamSet::new();
        params.new_param("w", Tensor::randn(&[2, 3], 1.0, &mut rng));
        let opt = Adam::new(&params, 1e-3);
        TrainCheckpoint {
            model: serialize::snapshot_with_meta(&params, "LogCL", "cfg"),
            optimizer: opt.export_state(),
            rng: rng.state(),
            next_epoch: 7,
            total_epochs: 12,
            epoch_losses: vec![3.0, 2.5, 2.0, 1.9, 1.7, 1.6, 1.55],
            valid_trace: vec![ValidPoint {
                epoch: 5,
                mrr: 31.25,
            }],
            selected_epoch: Some(5),
            best_valid: Some(31.25),
            best_params: Some(serialize::snapshot(&params)),
            rollbacks_used: 1,
            rollback_events: vec![RollbackEvent {
                epoch: 3,
                timestamp: 17,
                reason: "non-finite loss NaN".into(),
                lr_before: 1e-3,
                lr_after: 5e-4,
            }],
        }
    }

    #[test]
    fn train_checkpoint_file_round_trip() {
        let dir = std::env::temp_dir().join("logcl-train-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        let ck = sample();
        ck.save(&path).unwrap();
        let back = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(back.next_epoch, 7);
        assert_eq!(back.total_epochs, 12);
        assert_eq!(back.epoch_losses, ck.epoch_losses);
        assert_eq!(back.valid_trace, ck.valid_trace);
        assert_eq!(back.best_valid, ck.best_valid);
        assert_eq!(back.rng, ck.rng);
        assert_eq!(back.rollback_events, ck.rollback_events);
        assert_eq!(back.model.params, ck.model.params);
        assert!(back.best_params.is_some());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupted_train_checkpoint_is_rejected() {
        let dir = std::env::temp_dir().join("logcl-train-ckpt-corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.ckpt");
        sample().save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(&path, bytes).unwrap();
        let err = TrainCheckpoint::load(&path).unwrap_err();
        assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn train_error_messages_name_the_remedy() {
        let e = TrainError::Diverged {
            epoch: 4,
            rollbacks: 3,
            reason: "gradient norm 1.0e9 breached limit 1.0e4".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("epoch 4") && msg.contains("max-rollbacks"),
            "{msg}"
        );
    }
}
