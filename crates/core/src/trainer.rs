//! Offline training with two-phase forward propagation (Algorithm 1) and
//! the online-update protocol of Fig. 10.

use logcl_tensor::optim::Adam;
use logcl_tkg::eval::Metrics;
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use crate::api::{evaluate_with_phase, EvalContext, Phase, TkgModel, TrainOptions};
use crate::model::LogCl;

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean per-timestamp loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation MRR trace (epoch index, MRR) when selection ran.
    pub valid_trace: Vec<(usize, f64)>,
    /// The epoch whose parameters were kept.
    pub selected_epoch: Option<usize>,
}

impl TrainReport {
    /// Final epoch's loss (`NaN` when no training happened).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Groups quads by timestamp into a dense `Vec` of length `num_times`.
fn group_by_time(quads: &[Quad], num_times: usize) -> Vec<Vec<Quad>> {
    let mut by_t: Vec<Vec<Quad>> = vec![Vec::new(); num_times];
    for q in quads {
        by_t[q.t].push(*q);
    }
    by_t
}

/// Trains `model` on `ds.train` for `opts.epochs` passes.
///
/// Each timestamp is one batch (the paper's batching). Per timestamp the
/// query-independent encodings are computed once and the two propagation
/// phases (original queries, then inverse queries) are run on top of them —
/// the separation that prevents the entity-aware attention from perceiving
/// the answer entities (Section III-F).
pub fn train(model: &mut LogCl, ds: &TkgDataset, opts: &TrainOptions) -> TrainReport {
    let snapshots = ds.snapshots();
    let train_end = ds.train_end_time();
    let by_time = group_by_time(&ds.train, ds.num_times);
    let mut opt = Adam::new(&model.params, opts.lr);
    let mut report = TrainReport::default();
    let mut best_valid: Option<f64> = None;
    let mut best_ckpt: Option<logcl_tensor::serialize::Checkpoint> = None;

    for epoch in 0..opts.epochs {
        let mut history = HistoryIndex::new();
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        for t in 0..train_end {
            let quads = &by_time[t];
            if !quads.is_empty() {
                let shared = model.encode(&snapshots, t, true);

                // Phase 1: original query set.
                let out1 = model.forward_queries(&shared, &history, quads, true);
                let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
                let mut loss = out1.logits.cross_entropy(&targets1);
                if let Some(cl) = out1.contrast {
                    loss = loss.add(&cl);
                }

                // Phase 2: inverse query set.
                let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ds.num_rels)).collect();
                let out2 = model.forward_queries(&shared, &history, &inv, true);
                let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();
                let mut loss2 = out2.logits.cross_entropy(&targets2);
                if let Some(cl) = out2.contrast {
                    loss2 = loss2.add(&cl);
                }

                let total = loss.add(&loss2);
                epoch_loss += total.item() as f64;
                batches += 1;
                total.backward();
                opt.clip_and_step(opts.grad_clip);
            }
            history.advance(&snapshots[t]);
        }
        let mean = if batches > 0 {
            epoch_loss / batches as f64
        } else {
            0.0
        };
        report.epoch_losses.push(mean as f32);
        if opts.verbose {
            eprintln!("[{}] epoch {epoch}: loss {mean:.4}", model.name());
        }
        // Validation-MRR model selection (the paper's protocol): from the
        // midpoint of training, checkpoint whenever the valid score
        // improves, and restore the best checkpoint at the end.
        if opts.select_on_valid
            && !ds.valid.is_empty()
            && (epoch + 1) * 2 > opts.epochs
            && (epoch % 2 == 1 || epoch + 1 == opts.epochs)
        {
            let valid = ds.valid.clone();
            let m = crate::api::evaluate(model, ds, &valid);
            report.valid_trace.push((epoch, m.mrr));
            let improved = best_valid.is_none_or(|b| m.mrr > b);
            if improved {
                best_valid = Some(m.mrr);
                best_ckpt = Some(logcl_tensor::serialize::snapshot(&model.params));
                report.selected_epoch = Some(epoch);
            }
            if opts.verbose {
                eprintln!("[{}] epoch {epoch}: valid {m}", model.name());
            }
        }
    }
    if let Some(ckpt) = best_ckpt {
        logcl_tensor::serialize::restore(&model.params, &ckpt)
            .expect("self-produced checkpoint must restore");
    }
    // Keep an optimizer around for online updates at a reduced rate.
    model.opt = Some(Adam::new(&model.params, opts.lr * 0.5));
    model.opt_options = opts.clone();
    report
}

/// One online gradient step on the ground-truth facts of the timestamp just
/// evaluated (the Fig. 10 protocol): the model adapts to emerging facts
/// before moving to the next timestamp.
pub fn online_step(model: &mut LogCl, ctx: &EvalContext<'_>, quads: &[Quad]) {
    if quads.is_empty() {
        return;
    }
    if model.opt.is_none() {
        model.opt = Some(Adam::new(&model.params, model.opt_options.lr * 0.5));
    }
    let shared = model.encode(ctx.snapshots, ctx.t, true);
    let out1 = model.forward_queries(&shared, ctx.history, quads, true);
    let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
    let mut loss = out1.logits.cross_entropy(&targets1);
    if let Some(cl) = out1.contrast {
        loss = loss.add(&cl);
    }
    let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ctx.ds.num_rels)).collect();
    let out2 = model.forward_queries(&shared, ctx.history, &inv, true);
    let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();
    let mut loss2 = out2.logits.cross_entropy(&targets2);
    if let Some(cl) = out2.contrast {
        loss2 = loss2.add(&cl);
    }
    let total = loss.add(&loss2);
    total.backward();
    let clip = model.opt_options.grad_clip;
    model
        .opt
        .as_mut()
        .expect("online optimizer present")
        .clip_and_step(clip);
}

/// Evaluates under the online setting (Fig. 10): after scoring each test
/// timestamp, the model takes one adaptation step on its ground truth.
pub fn evaluate_online(model: &mut dyn TkgModel, ds: &TkgDataset, quads: &[Quad]) -> Metrics {
    evaluate_with_phase(model, ds, quads, Phase::Both, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::evaluate;
    use crate::config::LogClConfig;
    use logcl_tkg::SyntheticPreset;

    fn tiny() -> (TkgDataset, LogCl) {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let cfg = LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        };
        let model = LogCl::new(&ds, cfg);
        (ds, model)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (ds, mut model) = tiny();
        let report = train(&mut model, &ds, &TrainOptions::epochs(3));
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "losses {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn trained_model_beats_untrained() {
        let (ds, mut trained) = tiny();
        train(&mut trained, &ds, &TrainOptions::epochs(4));
        let (_, mut fresh) = tiny();
        let test = ds.test.clone();
        let m_trained = evaluate(&mut trained, &ds, &test);
        let m_fresh = evaluate(&mut fresh, &ds, &test);
        assert!(
            m_trained.mrr > m_fresh.mrr + 1.0,
            "trained {} vs fresh {}",
            m_trained.mrr,
            m_fresh.mrr
        );
    }

    #[test]
    fn online_evaluation_runs_and_is_finite() {
        let (ds, mut model) = tiny();
        train(&mut model, &ds, &TrainOptions::epochs(2));
        let test = ds.test.clone();
        let m = evaluate_online(&mut model, &ds, &test);
        assert!(m.mrr > 0.0 && m.mrr <= 100.0);
        assert_eq!(m.count, 2 * test.len());
    }

    #[test]
    fn valid_selection_keeps_best_checkpoint() {
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(6);
        opts.select_on_valid = true;
        let report = train(&mut model, &ds, &opts);
        // Selection only scans the second half of training.
        assert!(
            !report.valid_trace.is_empty(),
            "valid trace must be recorded"
        );
        let selected = report.selected_epoch.expect("an epoch must be selected");
        assert!((selected + 1) * 2 > opts.epochs);
        // The selected epoch is the argmax of the trace.
        let best =
            report
                .valid_trace
                .iter()
                .cloned()
                .fold((0usize, f64::NEG_INFINITY), |acc, (e, m)| {
                    if m > acc.1 {
                        (e, m)
                    } else {
                        acc
                    }
                });
        assert_eq!(selected, best.0);
    }

    #[test]
    fn selection_off_keeps_last_epoch() {
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(3);
        opts.select_on_valid = false;
        let report = train(&mut model, &ds, &opts);
        assert!(report.valid_trace.is_empty());
        assert!(report.selected_epoch.is_none());
    }

    #[test]
    fn group_by_time_is_dense() {
        let quads = vec![Quad::new(0, 0, 1, 2), Quad::new(1, 0, 0, 2)];
        let g = group_by_time(&quads, 4);
        assert_eq!(g.len(), 4);
        assert_eq!(g[2].len(), 2);
        assert!(g[0].is_empty() && g[3].is_empty());
    }
}
