//! Offline training with two-phase forward propagation (Algorithm 1) and
//! the online-update protocol of Fig. 10 — now crash-safe: the loop writes
//! durable checkpoints under a [`CheckpointPolicy`], resumes from them
//! bit-identically, and heals transient divergence by rolling back to the
//! last good epoch with a halved learning rate.

use logcl_tensor::optim::{clip_grad_norm, Adam};
use logcl_tensor::serialize::{self, Checkpoint};
use logcl_tkg::eval::Metrics;
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use crate::api::{evaluate_with_phase, EvalContext, Phase, TkgModel, TrainOptions};
use crate::checkpoint::{RollbackEvent, TrainCheckpoint, TrainError, ValidPoint};
use crate::model::LogCl;

/// Per-epoch training diagnostics.
#[derive(Debug, Clone, Default)]
pub struct TrainReport {
    /// Mean per-timestamp loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation MRR trace (epoch index, MRR) when selection ran.
    pub valid_trace: Vec<(usize, f64)>,
    /// The epoch whose parameters were kept.
    pub selected_epoch: Option<usize>,
    /// Divergence incidents the sentinel healed (rollback + LR halving).
    pub rollbacks: Vec<RollbackEvent>,
    /// Epoch the run continued from, when it was resumed.
    pub resumed_at_epoch: Option<usize>,
    /// Set when the `halt_after_epoch` test hook cut the run short.
    pub halted_at_epoch: Option<usize>,
}

impl TrainReport {
    /// Final epoch's loss (`NaN` when no training happened).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Groups quads by timestamp into a dense `Vec` of length `num_times`.
fn group_by_time(quads: &[Quad], num_times: usize) -> Vec<Vec<Quad>> {
    let mut by_t: Vec<Vec<Quad>> = vec![Vec::new(); num_times];
    for q in quads {
        by_t[q.t].push(*q);
    }
    by_t
}

/// In-memory snapshot of everything the sentinel needs to rewind a
/// diverged epoch: parameters, optimizer moments, RNG stream.
struct GoodState {
    params: Checkpoint,
    opt: logcl_tensor::optim::AdamState,
    rng: logcl_tensor::rng::RngState,
}

impl GoodState {
    fn capture(model: &LogCl, opt: &Adam) -> Self {
        Self {
            params: serialize::snapshot(&model.params),
            opt: opt.export_state(),
            rng: model.rng_state(),
        }
    }

    fn restore_into(&self, model: &mut LogCl, opt: &mut Adam) -> Result<(), TrainError> {
        serialize::restore(&model.params, &self.params)?;
        opt.import_state(&self.opt)?;
        model.restore_rng_state(self.rng);
        Ok(())
    }
}

/// What one pass over the training timeline produced.
enum EpochOutcome {
    /// Mean loss over non-empty batches.
    Completed(f32),
    /// The sentinel tripped: (timestamp, cause).
    Diverged(usize, String),
}

/// Trains `model` on `ds.train` for `opts.epochs` passes.
///
/// Each timestamp is one batch (the paper's batching). Per timestamp the
/// query-independent encodings are computed once and the two propagation
/// phases (original queries, then inverse queries) are run on top of them —
/// the separation that prevents the entity-aware attention from perceiving
/// the answer entities (Section III-F).
///
/// With `opts.checkpoint` set, the complete training state (parameters,
/// Adam moments, RNG, epoch cursor, selection state) is persisted
/// atomically so `opts.resume` can continue an interrupted run to
/// bit-identical final metrics. Non-finite losses and exploding gradients
/// trip a sentinel that rewinds to the last completed epoch, halves the
/// learning rate and retries, up to `opts.max_rollbacks` times.
pub fn train(
    model: &mut LogCl,
    ds: &TkgDataset,
    opts: &TrainOptions,
) -> Result<TrainReport, TrainError> {
    let snapshots = ds.snapshots();
    let train_end = ds.train_end_time();
    let by_time = group_by_time(&ds.train, ds.num_times);
    let mut opt = Adam::new(&model.params, opts.lr);
    let mut report = TrainReport::default();
    let mut best_valid: Option<f64> = None;
    let mut best_ckpt: Option<Checkpoint> = None;
    let mut start_epoch = 0usize;
    let mut rollbacks_used = 0usize;

    if let Some(path) = &opts.resume {
        let ck = TrainCheckpoint::load(path)?;
        ck.model
            .validate_meta(&model.cfg.variant_name(), &model.cfg.fingerprint())?;
        if ck.total_epochs != opts.epochs {
            return Err(TrainError::Resume(format!(
                "checkpoint belongs to a {}-epoch run but this run asks for {} \
                 (the validation-selection schedule depends on the total; \
                 pass the original epoch count)",
                ck.total_epochs, opts.epochs
            )));
        }
        if ck.next_epoch > opts.epochs {
            return Err(TrainError::Resume(format!(
                "checkpoint already completed {} of {} epochs",
                ck.next_epoch, opts.epochs
            )));
        }
        serialize::restore(&model.params, &ck.model)?;
        opt.import_state(&ck.optimizer)?;
        model.restore_rng_state(ck.rng);
        start_epoch = ck.next_epoch;
        report.epoch_losses = ck.epoch_losses;
        report.valid_trace = ck.valid_trace.iter().map(|p| (p.epoch, p.mrr)).collect();
        report.selected_epoch = ck.selected_epoch;
        report.rollbacks = ck.rollback_events;
        report.resumed_at_epoch = Some(start_epoch);
        best_valid = ck.best_valid;
        best_ckpt = ck.best_params;
        rollbacks_used = ck.rollbacks_used;
        if opts.verbose {
            eprintln!(
                "[{}] resumed from {} at epoch {start_epoch}/{}",
                model.name(),
                path.display(),
                opts.epochs
            );
        }
    }

    let mut good = GoodState::capture(model, &opt);
    let mut nan_injected = false;

    let mut epoch = start_epoch;
    while epoch < opts.epochs {
        let mut epoch_loss = 0.0f64;
        let mut batches = 0usize;
        let mut history = HistoryIndex::new();
        let mut outcome = None;
        for t in 0..train_end {
            let quads = &by_time[t];
            if !quads.is_empty() {
                let shared = model.encode(&snapshots, t, true);

                // Phase 1: original query set.
                let out1 = model.forward_queries(&shared, &history, quads, true);
                let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
                let mut loss = out1.logits.cross_entropy(&targets1);
                if let Some(cl) = out1.contrast {
                    loss = loss.add(&cl);
                }

                // Phase 2: inverse query set.
                let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ds.num_rels)).collect();
                let out2 = model.forward_queries(&shared, &history, &inv, true);
                let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();
                let mut loss2 = out2.logits.cross_entropy(&targets2);
                if let Some(cl) = out2.contrast {
                    loss2 = loss2.add(&cl);
                }

                let total = loss.add(&loss2);
                let mut loss_val = total.item();
                if opts.inject_nan_loss_at_epoch == Some(epoch) && !nan_injected {
                    nan_injected = true;
                    loss_val = f32::NAN;
                }
                if !loss_val.is_finite() {
                    model.params.zero_grad();
                    outcome = Some(EpochOutcome::Diverged(
                        t,
                        format!("non-finite loss {loss_val}"),
                    ));
                    break;
                }
                total.backward();
                let norm = clip_grad_norm(&model.params.vars(), opts.grad_clip);
                if !norm.is_finite() || norm > opts.divergence_grad_limit {
                    model.params.zero_grad();
                    outcome = Some(EpochOutcome::Diverged(
                        t,
                        format!(
                            "gradient norm {norm:.3e} breached limit {:.3e}",
                            opts.divergence_grad_limit
                        ),
                    ));
                    break;
                }
                opt.step();
                epoch_loss += loss_val as f64;
                batches += 1;
            }
            history.advance(&snapshots[t]);
        }
        let outcome = outcome.unwrap_or_else(|| {
            EpochOutcome::Completed(if batches > 0 {
                (epoch_loss / batches as f64) as f32
            } else {
                0.0
            })
        });

        match outcome {
            EpochOutcome::Diverged(t, reason) => {
                rollbacks_used += 1;
                if rollbacks_used > opts.max_rollbacks {
                    return Err(TrainError::Diverged {
                        epoch,
                        rollbacks: rollbacks_used - 1,
                        reason,
                    });
                }
                let lr_before = opt.lr();
                good.restore_into(model, &mut opt)?;
                let lr_after = lr_before * 0.5;
                opt.set_lr(lr_after);
                if opts.verbose {
                    eprintln!(
                        "[{}] epoch {epoch}: DIVERGED at t={t} ({reason}); \
                         rolled back, lr {lr_before:.2e} -> {lr_after:.2e} \
                         (retry {rollbacks_used}/{})",
                        model.name(),
                        opts.max_rollbacks
                    );
                }
                report.rollbacks.push(RollbackEvent {
                    epoch,
                    timestamp: t,
                    reason,
                    lr_before,
                    lr_after,
                });
                continue; // retry the same epoch from the rewound state
            }
            EpochOutcome::Completed(mean) => {
                report.epoch_losses.push(mean);
                if opts.verbose {
                    eprintln!("[{}] epoch {epoch}: loss {mean:.4}", model.name());
                }
            }
        }

        // Validation-MRR model selection (the paper's protocol): from the
        // midpoint of training, checkpoint whenever the valid score
        // improves, and restore the best checkpoint at the end.
        let mut improved = false;
        if opts.select_on_valid
            && !ds.valid.is_empty()
            && (epoch + 1) * 2 > opts.epochs
            && (epoch % 2 == 1 || epoch + 1 == opts.epochs)
        {
            let valid = ds.valid.clone();
            let m = crate::api::evaluate(model, ds, &valid);
            report.valid_trace.push((epoch, m.mrr));
            improved = best_valid.is_none_or(|b| m.mrr > b);
            if improved {
                best_valid = Some(m.mrr);
                best_ckpt = Some(serialize::snapshot(&model.params));
                report.selected_epoch = Some(epoch);
            }
            if opts.verbose {
                eprintln!("[{}] epoch {epoch}: valid {m}", model.name());
            }
        }

        good = GoodState::capture(model, &opt);

        if let Some(policy) = &opts.checkpoint {
            let cadence_due = policy.every_epochs > 0
                && (epoch + 1 - start_epoch).is_multiple_of(policy.every_epochs);
            let best_due = policy.on_best_valid && improved;
            let last_epoch = epoch + 1 == opts.epochs;
            if cadence_due || best_due || last_epoch {
                let ck = TrainCheckpoint {
                    model: serialize::snapshot_with_meta(
                        &model.params,
                        &model.cfg.variant_name(),
                        &model.cfg.fingerprint(),
                    ),
                    optimizer: opt.export_state(),
                    rng: model.rng_state(),
                    next_epoch: epoch + 1,
                    total_epochs: opts.epochs,
                    epoch_losses: report.epoch_losses.clone(),
                    valid_trace: report
                        .valid_trace
                        .iter()
                        .map(|&(epoch, mrr)| ValidPoint { epoch, mrr })
                        .collect(),
                    selected_epoch: report.selected_epoch,
                    best_valid,
                    best_params: best_ckpt.clone(),
                    rollbacks_used,
                    rollback_events: report.rollbacks.clone(),
                };
                ck.save(&policy.path)?;
                if opts.verbose {
                    eprintln!(
                        "[{}] epoch {epoch}: checkpoint -> {}",
                        model.name(),
                        policy.path.display()
                    );
                }
            }
        }

        if opts.halt_after_epoch == Some(epoch) {
            // SIGKILL stand-in for the crash/resume test: stop immediately,
            // skipping even the best-checkpoint restore a clean run does.
            report.halted_at_epoch = Some(epoch);
            return Ok(report);
        }

        epoch += 1;
    }

    if let Some(ckpt) = best_ckpt {
        serialize::restore(&model.params, &ckpt)?;
    }
    // Keep an optimizer around for online updates at a reduced rate.
    model.opt = Some(Adam::new(&model.params, opts.lr * 0.5));
    model.opt_options = opts.clone();
    Ok(report)
}

/// Bounds for one online fine-tuning loop over a closed snapshot's facts.
#[derive(Debug, Clone)]
pub struct OnlineAdaptOptions {
    /// Maximum gradient steps per closed snapshot.
    pub max_steps: usize,
    /// Loss guard: a step whose loss is non-finite or exceeds
    /// `loss_guard ×` the first finite loss rolls the whole loop back to
    /// its pre-adaptation state (parameters, optimizer moments, RNG) and
    /// stops — serving never keeps a diverged update.
    pub loss_guard: f32,
    /// Test hook: report a `NaN` loss at this step to exercise the
    /// rollback path deterministically.
    pub inject_nan_at_step: Option<usize>,
}

impl Default for OnlineAdaptOptions {
    fn default() -> Self {
        Self {
            max_steps: 1,
            loss_guard: 10.0,
            inject_nan_at_step: None,
        }
    }
}

/// What one online adaptation loop did.
#[derive(Debug, Clone, Default)]
pub struct OnlineAdaptReport {
    /// Gradient steps actually applied (a rolled-back step counts zero).
    pub steps: usize,
    /// Loss of the first step, when one ran.
    pub first_loss: Option<f32>,
    /// Loss of the last completed step.
    pub last_loss: Option<f32>,
    /// Whether the loss guard tripped and the model was restored to its
    /// pre-adaptation state.
    pub rolled_back: bool,
}

/// Bounded online fine-tuning on the ground-truth facts of one closed
/// snapshot (the Fig. 10 protocol grown into a serving-safe loop): at most
/// `opts.max_steps` two-phase gradient steps, guarded by the PR 2
/// rollback machinery — the complete pre-adaptation state is captured up
/// front and restored wholesale if any step's loss is non-finite or
/// explodes past the guard.
pub fn online_adapt(
    model: &mut LogCl,
    ctx: &EvalContext<'_>,
    quads: &[Quad],
    opts: &OnlineAdaptOptions,
) -> OnlineAdaptReport {
    let mut report = OnlineAdaptReport::default();
    if quads.is_empty() || opts.max_steps == 0 {
        return report;
    }
    let mut opt = model
        .opt
        .take()
        .unwrap_or_else(|| Adam::new(&model.params, model.opt_options.lr * 0.5));
    let good = GoodState::capture(model, &opt);
    let clip = model.opt_options.grad_clip;
    let inv: Vec<Quad> = quads.iter().map(|q| q.inverse(ctx.ds.num_rels)).collect();
    let targets1: Vec<usize> = quads.iter().map(|q| q.o).collect();
    let targets2: Vec<usize> = inv.iter().map(|q| q.o).collect();

    for step in 0..opts.max_steps {
        let shared = model.encode(ctx.snapshots, ctx.t, true);
        let out1 = model.forward_queries(&shared, ctx.history, quads, true);
        let mut loss = out1.logits.cross_entropy(&targets1);
        if let Some(cl) = out1.contrast {
            loss = loss.add(&cl);
        }
        let out2 = model.forward_queries(&shared, ctx.history, &inv, true);
        let mut loss2 = out2.logits.cross_entropy(&targets2);
        if let Some(cl) = out2.contrast {
            loss2 = loss2.add(&cl);
        }
        let total = loss.add(&loss2);
        let mut loss_val = total.item();
        if opts.inject_nan_at_step == Some(step) {
            loss_val = f32::NAN;
        }
        let guard_tripped = !loss_val.is_finite()
            || report
                .first_loss
                .is_some_and(|first| loss_val > opts.loss_guard * first.abs());
        if guard_tripped {
            model.params.zero_grad();
            // Restore cannot fail: the capture was taken from this very
            // model moments ago, so names and shapes match.
            let restored = good.restore_into(model, &mut opt);
            restored.expect("restoring a same-process capture"); // logcl-allow(L002): infallible by construction
            report.rolled_back = true;
            report.steps = 0;
            report.last_loss = None;
            break;
        }
        total.backward();
        opt.clip_and_step(clip);
        report.steps += 1;
        report.first_loss.get_or_insert(loss_val);
        report.last_loss = Some(loss_val);
    }

    model.opt = Some(opt);
    report
}

/// One online gradient step on the ground-truth facts of the timestamp just
/// evaluated (the Fig. 10 protocol): the model adapts to emerging facts
/// before moving to the next timestamp. Delegates to [`online_adapt`] with
/// a single unguarded step (non-finite losses still roll back).
pub fn online_step(model: &mut LogCl, ctx: &EvalContext<'_>, quads: &[Quad]) {
    online_adapt(
        model,
        ctx,
        quads,
        &OnlineAdaptOptions {
            max_steps: 1,
            loss_guard: f32::INFINITY,
            inject_nan_at_step: None,
        },
    );
}

/// Evaluates under the online setting (Fig. 10): after scoring each test
/// timestamp, the model takes one adaptation step on its ground truth.
pub fn evaluate_online(model: &mut dyn TkgModel, ds: &TkgDataset, quads: &[Quad]) -> Metrics {
    evaluate_with_phase(model, ds, quads, Phase::Both, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::evaluate;
    use crate::checkpoint::CheckpointPolicy;
    use crate::config::LogClConfig;
    use logcl_tkg::SyntheticPreset;

    fn tiny() -> (TkgDataset, LogCl) {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let cfg = LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        };
        let model = LogCl::new(&ds, cfg);
        (ds, model)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        let (ds, mut model) = tiny();
        let report = train(&mut model, &ds, &TrainOptions::epochs(3)).unwrap();
        assert_eq!(report.epoch_losses.len(), 3);
        assert!(
            report.epoch_losses[2] < report.epoch_losses[0],
            "losses {:?}",
            report.epoch_losses
        );
    }

    #[test]
    fn trained_model_beats_untrained() {
        let (ds, mut trained) = tiny();
        train(&mut trained, &ds, &TrainOptions::epochs(4)).unwrap();
        let (_, mut fresh) = tiny();
        let test = ds.test.clone();
        let m_trained = evaluate(&mut trained, &ds, &test);
        let m_fresh = evaluate(&mut fresh, &ds, &test);
        assert!(
            m_trained.mrr > m_fresh.mrr + 1.0,
            "trained {} vs fresh {}",
            m_trained.mrr,
            m_fresh.mrr
        );
    }

    #[test]
    fn online_evaluation_runs_and_is_finite() {
        let (ds, mut model) = tiny();
        train(&mut model, &ds, &TrainOptions::epochs(2)).unwrap();
        let test = ds.test.clone();
        let m = evaluate_online(&mut model, &ds, &test);
        assert!(m.mrr > 0.0 && m.mrr <= 100.0);
        assert_eq!(m.count, 2 * test.len());
    }

    #[test]
    fn valid_selection_keeps_best_checkpoint() {
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(6);
        opts.select_on_valid = true;
        let report = train(&mut model, &ds, &opts).unwrap();
        // Selection only scans the second half of training.
        assert!(
            !report.valid_trace.is_empty(),
            "valid trace must be recorded"
        );
        let selected = report.selected_epoch.expect("an epoch must be selected");
        assert!((selected + 1) * 2 > opts.epochs);
        // The selected epoch is the argmax of the trace.
        let best =
            report
                .valid_trace
                .iter()
                .cloned()
                .fold((0usize, f64::NEG_INFINITY), |acc, (e, m)| {
                    if m > acc.1 {
                        (e, m)
                    } else {
                        acc
                    }
                });
        assert_eq!(selected, best.0);
    }

    #[test]
    fn selection_off_keeps_last_epoch() {
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(3);
        opts.select_on_valid = false;
        let report = train(&mut model, &ds, &opts).unwrap();
        assert!(report.valid_trace.is_empty());
        assert!(report.selected_epoch.is_none());
    }

    /// An injected NaN loss must not abort training: the sentinel rewinds
    /// to the last good epoch, halves the LR, records the incident, and
    /// the run still finishes all its epochs.
    #[test]
    fn divergence_rolls_back_and_heals() {
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(3);
        opts.select_on_valid = false;
        opts.inject_nan_loss_at_epoch = Some(1);
        let report = train(&mut model, &ds, &opts).unwrap();
        assert_eq!(report.epoch_losses.len(), 3, "all epochs must complete");
        assert_eq!(report.rollbacks.len(), 1);
        let ev = &report.rollbacks[0];
        assert_eq!(ev.epoch, 1);
        assert!(ev.reason.contains("non-finite"), "{}", ev.reason);
        assert!((ev.lr_after - ev.lr_before * 0.5).abs() < 1e-12);
        assert!(report.final_loss().is_finite());
    }

    /// When every retry diverges, training must stop with a typed error —
    /// not loop forever, not abort the process.
    #[test]
    fn divergence_budget_is_bounded() {
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(2);
        opts.select_on_valid = false;
        opts.max_rollbacks = 2;
        // A zero grad-norm limit trips the sentinel on every batch.
        opts.divergence_grad_limit = 0.0;
        match train(&mut model, &ds, &opts) {
            Err(TrainError::Diverged { rollbacks, .. }) => assert_eq!(rollbacks, 2),
            other => panic!("expected Diverged, got {other:?}"),
        }
    }

    #[test]
    fn checkpoint_policy_writes_resumable_file() {
        let dir = std::env::temp_dir().join("logcl-trainer-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("policy.ckpt");
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(4);
        opts.select_on_valid = false;
        opts.checkpoint = Some(CheckpointPolicy::new(&path, 2));
        train(&mut model, &ds, &opts).unwrap();
        let ck = TrainCheckpoint::load(&path).unwrap();
        assert_eq!(ck.next_epoch, 4);
        assert_eq!(ck.total_epochs, 4);
        assert_eq!(ck.epoch_losses.len(), 4);
        ck.model
            .validate_meta(&model.cfg.variant_name(), &model.cfg.fingerprint())
            .unwrap();
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn resume_with_wrong_epoch_count_is_rejected() {
        let dir = std::env::temp_dir().join("logcl-trainer-resume-guard");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("guard.ckpt");
        let (ds, mut model) = tiny();
        let mut opts = TrainOptions::epochs(2);
        opts.select_on_valid = false;
        opts.checkpoint = Some(CheckpointPolicy::new(&path, 1));
        train(&mut model, &ds, &opts).unwrap();
        let (_, mut resumed) = tiny();
        let mut opts2 = TrainOptions::epochs(5);
        opts2.select_on_valid = false;
        opts2.resume = Some(path.clone());
        match train(&mut resumed, &ds, &opts2) {
            Err(TrainError::Resume(msg)) => assert!(msg.contains("epoch"), "{msg}"),
            other => panic!("expected Resume error, got {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    fn online_ctx(ds: &TkgDataset) -> (Vec<logcl_tkg::Snapshot>, HistoryIndex, usize) {
        let snapshots = ds.snapshots();
        let t = ds.num_times;
        let history = HistoryIndex::build(&snapshots);
        (snapshots, history, t)
    }

    #[test]
    fn online_adapt_is_bounded_and_reduces_loss() {
        let (ds, mut model) = tiny();
        train(&mut model, &ds, &TrainOptions::epochs(1)).unwrap();
        let (snapshots, history, t) = online_ctx(&ds);
        let ctx = EvalContext {
            ds: &ds,
            snapshots: &snapshots,
            history: &history,
            t,
        };
        let quads: Vec<Quad> = ds.test.iter().take(6).copied().collect();
        let opts = OnlineAdaptOptions {
            max_steps: 4,
            ..Default::default()
        };
        let report = online_adapt(&mut model, &ctx, &quads, &opts);
        assert_eq!(report.steps, 4);
        assert!(!report.rolled_back);
        let (first, last) = (report.first_loss.unwrap(), report.last_loss.unwrap());
        assert!(
            last < first,
            "repeated steps must reduce loss: {first} -> {last}"
        );
        // Empty facts and a zero budget are both no-ops.
        let none = online_adapt(&mut model, &ctx, &[], &opts);
        assert_eq!(none.steps, 0);
        let zero = online_adapt(
            &mut model,
            &ctx,
            &quads,
            &OnlineAdaptOptions {
                max_steps: 0,
                ..Default::default()
            },
        );
        assert_eq!(zero.steps, 0);
    }

    /// An injected NaN mid-loop must restore the exact pre-adaptation
    /// parameters — the serving stack relies on a rolled-back update being
    /// indistinguishable from no update.
    #[test]
    fn online_divergence_rolls_back_to_bitwise_pre_state() {
        let (ds, mut model) = tiny();
        train(&mut model, &ds, &TrainOptions::epochs(1)).unwrap();
        let (snapshots, history, t) = online_ctx(&ds);
        let ctx = EvalContext {
            ds: &ds,
            snapshots: &snapshots,
            history: &history,
            t,
        };
        let quads: Vec<Quad> = ds.test.iter().take(6).copied().collect();
        let before = serialize::snapshot(&model.params);
        let rng_before = model.rng_state();
        let report = online_adapt(
            &mut model,
            &ctx,
            &quads,
            &OnlineAdaptOptions {
                max_steps: 3,
                inject_nan_at_step: Some(1),
                ..Default::default()
            },
        );
        assert!(report.rolled_back);
        assert_eq!(report.steps, 0);
        let after = serialize::snapshot(&model.params);
        assert_eq!(
            serde_json::to_string(&before).unwrap(),
            serde_json::to_string(&after).unwrap(),
            "rollback must restore parameters bit-for-bit"
        );
        assert_eq!(model.rng_state(), rng_before);
    }

    #[test]
    fn group_by_time_is_dense() {
        let quads = vec![Quad::new(0, 0, 1, 2), Quad::new(1, 0, 0, 2)];
        let g = group_by_time(&quads, 4);
        assert_eq!(g.len(), 4);
        assert_eq!(g[2].len(), 2);
        assert!(g[0].is_empty() && g[3].is_empty());
    }
}
