//! Static KG information (Section IV-B2: "we follow works \[9\], \[11\], \[45\]
//! that add static KG information on ICEWS14, ICEWS18 and ICEWS05-15").
//!
//! RE-GCN-lineage models aggregate a time-less affiliation graph
//! (entity → bloc/country anchors) once at the start of encoding, so the
//! initial entity representations already carry shared static context.
//! This module implements that aggregation: one R-GCN pass over the static
//! facts with dedicated static-relation embeddings, mixed into the initial
//! embeddings with a residual (so the module is a refinement, not a
//! replacement — RE-GCN's angular-constraint schedule is simplified away;
//! see DESIGN.md).

use logcl_gnn::aggregator::{Aggregator, EdgeBatch};
use logcl_gnn::RgcnLayer;
use logcl_tensor::nn::{Embedding, ParamSet};
use logcl_tensor::{Rng, Var};
use logcl_tkg::TkgDataset;

/// The static-graph refinement module.
pub struct StaticGraph {
    gnn: RgcnLayer,
    rel_emb: Embedding,
    subjects: Vec<usize>,
    relations: Vec<usize>,
    objects: Vec<usize>,
    num_entities: usize,
}

impl StaticGraph {
    /// Builds the module from the dataset's static facts (returns `None`
    /// when the dataset carries none).
    pub fn new(ds: &TkgDataset, dim: usize, rng: &mut Rng) -> Option<Self> {
        if ds.static_facts.is_empty() {
            return None;
        }
        let mut subjects = Vec::with_capacity(ds.static_facts.len() * 2);
        let mut relations = Vec::with_capacity(ds.static_facts.len() * 2);
        let mut objects = Vec::with_capacity(ds.static_facts.len() * 2);
        // Static facts are symmetric context: add both directions (inverse
        // static relations occupy ids `r + num_static_rels`).
        for &(e, r, anchor) in &ds.static_facts {
            subjects.push(e);
            relations.push(r);
            objects.push(anchor);
            subjects.push(anchor);
            relations.push(r + ds.num_static_rels);
            objects.push(e);
        }
        Some(Self {
            gnn: RgcnLayer::new(dim, rng),
            rel_emb: Embedding::new(ds.num_static_rels * 2, dim, rng),
            subjects,
            relations,
            objects,
            num_entities: ds.num_entities,
        })
    }

    /// Number of (directed) static edges.
    pub fn num_edges(&self) -> usize {
        self.subjects.len()
    }

    /// Refines the initial entity embeddings with static context:
    /// `h₀ + RGCN_static(h₀)` scaled to keep magnitudes comparable.
    pub fn refine(&self, h0: &Var) -> Var {
        let edges = EdgeBatch {
            subjects: &self.subjects,
            relations: &self.relations,
            objects: &self.objects,
            num_entities: self.num_entities,
        };
        let agg = self.gnn.forward(h0, &self.rel_emb.weight, &edges);
        h0.add(&agg.scale(0.5))
    }

    /// Registers the module's parameters.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        self.gnn.register(params, &format!("{prefix}.gnn"));
        self.rel_emb.register(params, &format!("{prefix}.rel"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn builds_from_preset_and_refines() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.2);
        assert!(
            !ds.static_facts.is_empty(),
            "presets must carry static facts"
        );
        let mut rng = Rng::seed(7);
        let sg = StaticGraph::new(&ds, 8, &mut rng).expect("static graph");
        assert_eq!(sg.num_edges(), ds.static_facts.len() * 2);
        let h0 = Var::param(Tensor::randn(&[ds.num_entities, 8], 0.3, &mut rng));
        let refined = sg.refine(&h0);
        assert_eq!(refined.shape(), vec![ds.num_entities, 8]);
        assert_ne!(refined.value().data(), h0.value().data());
        refined.sum().backward();
        assert!(
            h0.grad().is_some(),
            "gradients must flow through refinement"
        );
    }

    #[test]
    fn absent_static_facts_yield_none() {
        let mut ds = SyntheticPreset::Icews14.generate_scaled(0.2);
        ds.static_facts.clear();
        let mut rng = Rng::seed(7);
        assert!(StaticGraph::new(&ds, 8, &mut rng).is_none());
    }

    #[test]
    fn entities_in_same_bloc_get_correlated_context() {
        // Two entities sharing a bloc anchor receive messages through the
        // same anchor; with identical initial embeddings their refinements
        // agree on the anchor-mediated component.
        let mut ds = SyntheticPreset::Icews14.generate_scaled(0.2);
        ds.static_facts = vec![(2, 0, 0), (3, 0, 0)];
        ds.num_static_rels = 1;
        let mut rng = Rng::seed(9);
        let sg = StaticGraph::new(&ds, 4, &mut rng).unwrap();
        let mut h = Tensor::zeros(&[ds.num_entities, 4]);
        // Same embedding for entities 2 and 3.
        for j in 0..4 {
            h.set2(2, j, 1.0);
            h.set2(3, j, 1.0);
        }
        let refined = sg.refine(&Var::constant(h));
        let r2 = refined.value().row(2).to_vec();
        let r3 = refined.value().row(3).to_vec();
        assert_eq!(r2, r3);
    }
}
