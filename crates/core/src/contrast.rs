//! The local–global query contrast module (Section III-E).
//!
//! Local and global query projections `z_t`, `z_g` (Eq. 15–16, unit-sphere
//! MLP heads) are contrasted with the supervised InfoNCE loss of Eq. 17:
//! for anchor view A and candidate view B, the positive of query `i` is the
//! same query's representation in B, every other query is a negative. The
//! four strategies `L_lg, L_gl, L_ll, L_gg` differ only in which views play
//! anchor and candidate; the full model averages all four.

use logcl_tensor::Var;

use crate::config::ContrastStrategy;

/// One InfoNCE term (Eq. 17): cross-entropy of the row-wise similarity
/// matrix `anchor · candidateᵀ / τ` against the identity alignment.
///
/// Degenerate batches (fewer than 2 queries) contribute zero loss — with a
/// single query there are no negatives to contrast against.
pub fn info_nce(anchor: &Var, candidate: &Var, tau: f32) -> Var {
    let b = anchor.shape()[0];
    assert_eq!(candidate.shape()[0], b, "contrast views must align");
    if b < 2 {
        return Var::scalar(0.0);
    }
    let sim = anchor.matmul(&candidate.transpose2()).scale(1.0 / tau);
    let targets: Vec<usize> = (0..b).collect();
    sim.cross_entropy(&targets)
}

/// The combined contrastive loss `L_cl` for a strategy.
pub fn contrastive_loss(
    z_local: &Var,
    z_global: &Var,
    tau: f32,
    strategy: ContrastStrategy,
) -> Var {
    match strategy {
        ContrastStrategy::Lg => info_nce(z_local, z_global, tau),
        ContrastStrategy::Gl => info_nce(z_global, z_local, tau),
        ContrastStrategy::Ll => info_nce(z_local, z_local, tau),
        ContrastStrategy::Gg => info_nce(z_global, z_global, tau),
        ContrastStrategy::All => {
            let lg = info_nce(z_local, z_global, tau);
            let gl = info_nce(z_global, z_local, tau);
            let ll = info_nce(z_local, z_local, tau);
            let gg = info_nce(z_global, z_global, tau);
            lg.add(&gl).add(&ll).add(&gg).scale(0.25)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::{Rng, Tensor};

    fn unit_rows(data: Vec<f32>, n: usize, d: usize) -> Var {
        Var::constant(Tensor::from_vec(data, &[n, d]))
            .l2_normalize_rows()
            .detach()
    }

    #[test]
    fn aligned_views_have_lower_loss_than_misaligned() {
        // Aligned: z_l == z_g rowwise. Misaligned: rows permuted.
        let zl = unit_rows(vec![1.0, 0.0, 0.0, 1.0, -1.0, 0.5], 3, 2);
        let zg_aligned = zl.clone();
        let zg_shuffled = unit_rows(vec![0.0, 1.0, -1.0, 0.5, 1.0, 0.0], 3, 2);
        let aligned = info_nce(&zl, &zg_aligned, 0.1).item();
        let shuffled = info_nce(&zl, &zg_shuffled, 0.1).item();
        assert!(aligned < shuffled, "{aligned} vs {shuffled}");
    }

    #[test]
    fn single_query_batch_is_zero() {
        let z = unit_rows(vec![1.0, 0.0], 1, 2);
        assert_eq!(info_nce(&z, &z, 0.1).item(), 0.0);
    }

    #[test]
    fn all_strategy_averages_four_terms() {
        let mut rng = Rng::seed(121);
        let zl = Var::constant(Tensor::randn(&[4, 6], 1.0, &mut rng)).l2_normalize_rows();
        let zg = Var::constant(Tensor::randn(&[4, 6], 1.0, &mut rng)).l2_normalize_rows();
        let all = contrastive_loss(&zl, &zg, 0.1, ContrastStrategy::All).item();
        let sum: f32 = ContrastStrategy::SINGLES
            .iter()
            .map(|&s| contrastive_loss(&zl, &zg, 0.1, s).item())
            .sum();
        assert!((all - sum / 4.0).abs() < 1e-5);
    }

    #[test]
    fn loss_trains_views_together() {
        // Gradient descent on the contrastive loss should pull matching
        // pairs together: after optimisation, L decreases.
        let mut rng = Rng::seed(122);
        let mut params = logcl_tensor::nn::ParamSet::new();
        let a = params.new_param("a", Tensor::randn(&[5, 4], 1.0, &mut rng));
        let b = params.new_param("b", Tensor::randn(&[5, 4], 1.0, &mut rng));
        let mut opt = logcl_tensor::optim::Adam::new(&params, 0.05);
        let loss_at =
            |a: &Var, b: &Var| info_nce(&a.l2_normalize_rows(), &b.l2_normalize_rows(), 0.2).item();
        let before = loss_at(&a, &b);
        for _ in 0..60 {
            let loss = info_nce(&a.l2_normalize_rows(), &b.l2_normalize_rows(), 0.2);
            loss.backward();
            opt.step();
        }
        let after = loss_at(&a, &b);
        assert!(after < before * 0.5, "{before} -> {after}");
    }

    #[test]
    fn temperature_sharpens_loss() {
        let mut rng = Rng::seed(123);
        let zl = Var::constant(Tensor::randn(&[6, 4], 1.0, &mut rng)).l2_normalize_rows();
        let lo = contrastive_loss(&zl, &zl, 0.02, ContrastStrategy::Lg).item();
        let hi = contrastive_loss(&zl, &zl, 1.0, ContrastStrategy::Lg).item();
        // With identical views, low temperature makes the positive dominate
        // (loss → 0); high temperature flattens the softmax (loss → ln B).
        assert!(lo < hi);
        assert!(lo.is_finite() && hi.is_finite());
    }
}
