//! Detailed evaluation diagnostics beyond the headline table numbers:
//! raw-vs-filtered metrics, per-relation breakdowns, and the repetition
//! split (historical vs novel answers) that explains *where* a model's
//! MRR comes from — the analysis lens used throughout the paper's
//! discussion sections.

use logcl_tkg::eval::{rank_raw, rank_time_aware, Metrics, RankAccumulator};
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use crate::api::{EvalContext, TkgModel};

/// A full diagnostic report for one model on one split.
#[derive(Debug, Clone)]
pub struct DetailedReport {
    /// Time-aware filtered metrics (the headline numbers).
    pub filtered: Metrics,
    /// Raw (unfiltered) metrics.
    pub raw: Metrics,
    /// Metrics restricted to queries whose answer had occurred before with
    /// the same `(s, r)` — the repetition slice copy models excel at.
    pub historical: Metrics,
    /// Metrics restricted to queries with a novel answer — the slice only
    /// evolution-aware models can do well on.
    pub novel: Metrics,
    /// Per-relation filtered metrics, sorted by descending query count
    /// (base + inverse relations are reported separately).
    pub per_relation: Vec<(String, Metrics)>,
}

impl std::fmt::Display for DetailedReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "filtered:   {}", self.filtered)?;
        writeln!(f, "raw:        {}", self.raw)?;
        writeln!(f, "historical: {}", self.historical)?;
        writeln!(f, "novel:      {}", self.novel)?;
        writeln!(f, "top relations by query count:")?;
        for (name, m) in self.per_relation.iter().take(8) {
            writeln!(f, "  {name:<40} {m}")?;
        }
        Ok(())
    }
}

/// Runs the full two-phase evaluation while collecting every diagnostic
/// slice in a single pass over the model's scores.
pub fn evaluate_detailed(
    model: &mut dyn TkgModel,
    ds: &TkgDataset,
    quads: &[Quad],
) -> DetailedReport {
    let snapshots = ds.snapshots();
    let times = TkgDataset::split_times(quads);
    let first_t = times.first().copied().unwrap_or(0);
    let mut history = HistoryIndex::new();
    for snap in &snapshots[..first_t] {
        history.advance(snap);
    }
    let mut filtered = RankAccumulator::new();
    let mut raw = RankAccumulator::new();
    let mut historical = RankAccumulator::new();
    let mut novel = RankAccumulator::new();
    let mut per_rel: std::collections::BTreeMap<usize, RankAccumulator> =
        std::collections::BTreeMap::new();

    for &t in &times {
        while history.horizon() < t {
            let h = history.horizon();
            history.advance(&snapshots[h]);
        }
        let truth = ds.facts_at(t);
        let at_t: Vec<Quad> = quads.iter().filter(|q| q.t == t).copied().collect();
        let mut phase_queries = at_t.clone();
        phase_queries.extend(at_t.iter().map(|q| q.inverse(ds.num_rels)));

        // Score each phase separately (the protocol), but collect jointly.
        let ctx = EvalContext {
            ds,
            snapshots: &snapshots,
            history: &history,
            t,
        };
        let scores1 = model.score(&ctx, &at_t);
        let inv: Vec<Quad> = at_t.iter().map(|q| q.inverse(ds.num_rels)).collect();
        let ctx = EvalContext {
            ds,
            snapshots: &snapshots,
            history: &history,
            t,
        };
        let scores2 = model.score(&ctx, &inv);

        for (q, s) in at_t.iter().chain(&inv).zip(scores1.iter().chain(&scores2)) {
            let fr = rank_time_aware(s, q, &truth);
            filtered.push(fr);
            raw.push(rank_raw(s, q.o));
            if history.count(q.s, q.r, q.o) > 0 {
                historical.push(fr);
            } else {
                novel.push(fr);
            }
            per_rel.entry(q.r).or_default().push(fr);
        }
    }

    let mut per_relation: Vec<(String, Metrics)> = per_rel
        .into_iter()
        .map(|(r, acc)| (ds.rel_name(r), acc.finish()))
        .collect();
    per_relation.sort_by(|a, b| b.1.count.cmp(&a.1.count).then(a.0.cmp(&b.0)));

    DetailedReport {
        filtered: filtered.finish(),
        raw: raw.finish(),
        historical: historical.finish(),
        novel: novel.finish(),
        per_relation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::evaluate;
    use crate::api::test_support::ConstModel;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn detailed_filtered_matches_plain_evaluate() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 1,
            calls: 0,
        };
        let test = ds.test.clone();
        let plain = evaluate(&mut model, &ds, &test);
        let detailed = evaluate_detailed(&mut model, &ds, &test);
        assert_eq!(plain, detailed.filtered);
    }

    #[test]
    fn slices_partition_the_queries() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 0,
            calls: 0,
        };
        let r = evaluate_detailed(&mut model, &ds, &ds.test.clone());
        assert_eq!(r.historical.count + r.novel.count, r.filtered.count);
        let rel_total: usize = r.per_relation.iter().map(|(_, m)| m.count).sum();
        assert_eq!(rel_total, r.filtered.count);
        assert_eq!(r.raw.count, r.filtered.count);
    }

    #[test]
    fn raw_never_beats_filtered() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 2,
            calls: 0,
        };
        let r = evaluate_detailed(&mut model, &ds, &ds.test.clone());
        assert!(r.filtered.mrr >= r.raw.mrr - 1e-9);
    }

    #[test]
    fn report_renders() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 0,
            calls: 0,
        };
        let r = evaluate_detailed(&mut model, &ds, &ds.test.clone());
        let text = format!("{r}");
        assert!(text.contains("filtered:") && text.contains("novel:"));
    }
}
