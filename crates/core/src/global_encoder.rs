//! The global entity-aware attention encoder (Section III-D).
//!
//! For each query `(s, r, ?, t_q)` a *historical query subgraph* is sampled
//! from all facts before `t_q`: the one-hop facts of `s` united with the
//! one-hop facts of every historical answer object of `(s, r)` — a static
//! (time-stripped) graph. A second relational GNN aggregates it over the
//! *initial* embeddings (Eq. 12), and the entity-aware gate of Eq. 13–14
//! modulates the result per query.
//!
//! For batching, the subgraphs of all queries at one timestamp are unioned
//! into a single edge set before aggregation; per-query representations are
//! then read out at the query subjects. This preserves the paper's per-query
//! subgraph semantics (each query only reads its own subject row, whose
//! receptive field is its own subgraph's neighbourhood) at a fraction of the
//! cost.

use logcl_gnn::aggregator::EdgeBatch;
use logcl_gnn::{GlobalEntityAttention, RelGnn};
use logcl_tensor::nn::ParamSet;
use logcl_tensor::{Rng, Var};
use logcl_tkg::HistoryIndex;
use std::collections::BTreeSet;

use crate::config::LogClConfig;

/// The outputs of one global encoding pass.
pub struct GlobalEncoding {
    /// Aggregated entity matrix `H_g^{Agg}` over the unioned query
    /// subgraphs (`[E, D]`; entities outside every subgraph carry only
    /// their self-loop transform).
    pub h_agg: Var,
}

/// The global encoder.
pub struct GlobalEncoder {
    gnn: RelGnn,
    att: GlobalEntityAttention,
    max_edges_per_query: usize,
}

impl GlobalEncoder {
    /// Builds the encoder from the model configuration.
    pub fn new(cfg: &LogClConfig, rng: &mut Rng) -> Self {
        Self {
            gnn: RelGnn::new(cfg.aggregator, cfg.dim, cfg.global_layers, rng),
            att: GlobalEntityAttention::new(cfg.dim, rng),
            max_edges_per_query: cfg.max_subgraph_edges,
        }
    }

    /// Samples and unions the historical query subgraphs of `queries`
    /// (unique `(s, r)` pairs), then aggregates them with the global GNN
    /// over the initial embeddings `h0` / `rel0` (Eq. 12).
    pub fn encode(
        &self,
        h0: &Var,
        rel0: &Var,
        history: &HistoryIndex,
        queries: &[(usize, usize)],
    ) -> GlobalEncoding {
        let num_entities = h0.shape()[0];
        let mut seen_pairs: BTreeSet<(usize, usize)> = BTreeSet::new();
        let mut edge_set: BTreeSet<(usize, usize, usize)> = BTreeSet::new();
        let mut s_idx = Vec::new();
        let mut r_idx = Vec::new();
        let mut o_idx = Vec::new();
        for &(s, r) in queries {
            if !seen_pairs.insert((s, r)) {
                continue;
            }
            let sub = history.query_subgraph(s, r, self.max_edges_per_query);
            for (es, er, eo) in sub.edges {
                if edge_set.insert((es, er, eo)) {
                    s_idx.push(es);
                    r_idx.push(er);
                    o_idx.push(eo);
                }
            }
        }
        let edges = EdgeBatch {
            subjects: &s_idx,
            relations: &r_idx,
            objects: &o_idx,
            num_entities,
        };
        let h_agg = self.gnn.forward(h0, rel0, &edges);
        GlobalEncoding { h_agg }
    }

    /// Per-query global representations: the gated subject rows (Eq. 13–14),
    /// or raw subject rows when entity-aware attention is ablated.
    pub fn query_representation(
        &self,
        enc: &GlobalEncoding,
        h0: &Var,
        subjects: &[usize],
        use_entity_attention: bool,
    ) -> Var {
        let h_g = enc.h_agg.gather_rows(subjects);
        if !use_entity_attention {
            return h_g;
        }
        let h_static = h0.gather_rows(subjects);
        self.att.forward(&h_g, &h_static)
    }

    /// Registers the GNN stack and the gate.
    pub fn register(&self, params: &mut ParamSet, prefix: &str) {
        self.gnn.register(params, &format!("{prefix}.gnn"));
        self.att.register(params, &format!("{prefix}.att"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tensor::Tensor;
    use logcl_tkg::Snapshot;

    fn history() -> HistoryIndex {
        HistoryIndex::build(&[
            Snapshot {
                t: 0,
                edges: vec![(0, 0, 1), (1, 1, 2), (3, 0, 4)],
            },
            Snapshot {
                t: 1,
                edges: vec![(0, 0, 1), (2, 1, 0)],
            },
        ])
    }

    fn setup() -> (GlobalEncoder, Var, Var) {
        let cfg = LogClConfig {
            dim: 8,
            ..Default::default()
        };
        let mut rng = Rng::seed(111);
        let enc = GlobalEncoder::new(&cfg, &mut rng);
        let h0 = Var::param(Tensor::randn(&[5, 8], 0.3, &mut rng));
        let rel0 = Var::param(Tensor::randn(&[4, 8], 0.3, &mut rng));
        (enc, h0, rel0)
    }

    #[test]
    fn encode_and_read_out() {
        let (enc, h0, rel0) = setup();
        let hist = history();
        let out = enc.encode(&h0, &rel0, &hist, &[(0, 0), (2, 1)]);
        assert_eq!(out.h_agg.shape(), vec![5, 8]);
        let rep = enc.query_representation(&out, &h0, &[0, 2], true);
        assert_eq!(rep.shape(), vec![2, 8]);
        assert!(rep.value().all_finite());
    }

    #[test]
    fn duplicate_queries_do_not_duplicate_edges() {
        let (enc, h0, rel0) = setup();
        let hist = history();
        let a = enc.encode(&h0, &rel0, &hist, &[(0, 0)]);
        let b = enc.encode(&h0, &rel0, &hist, &[(0, 0), (0, 0), (0, 0)]);
        assert_eq!(a.h_agg.value().data(), b.h_agg.value().data());
    }

    #[test]
    fn no_history_falls_back_to_self_loops() {
        let (enc, h0, rel0) = setup();
        let hist = HistoryIndex::new();
        let out = enc.encode(&h0, &rel0, &hist, &[(0, 0)]);
        assert!(out.h_agg.value().all_finite());
        // With zero edges the aggregation is a pure (deterministic)
        // self-loop stack, identical for all-query sets.
        let out2 = enc.encode(&h0, &rel0, &hist, &[(3, 1)]);
        assert_eq!(out.h_agg.value().data(), out2.h_agg.value().data());
    }

    #[test]
    fn gate_ablation_changes_representation() {
        let (enc, h0, rel0) = setup();
        let hist = history();
        let out = enc.encode(&h0, &rel0, &hist, &[(0, 0)]);
        let gated = enc.query_representation(&out, &h0, &[0], true);
        let raw = enc.query_representation(&out, &h0, &[0], false);
        assert_ne!(gated.value().data(), raw.value().data());
    }

    #[test]
    fn gradients_flow_to_initial_embeddings() {
        let (enc, h0, rel0) = setup();
        let hist = history();
        let out = enc.encode(&h0, &rel0, &hist, &[(0, 0), (3, 0)]);
        let rep = enc.query_representation(&out, &h0, &[0, 3], true);
        rep.sum().backward();
        assert!(h0.grad().is_some());
        assert!(rel0.grad().is_some());
    }
}
