//! Entity-partitioned sharding of the all-entities decoder scoring.
//!
//! LogCL's decoder (Eq. 18–19) scores every candidate entity independently:
//! the logit of entity `e` is the inner product of the decoded query
//! representation with row `e` of the candidate matrix. The score space
//! therefore partitions cleanly across workers — shard `i` of `N` scores
//! the contiguous entity range [`ShardSpec::range`] and nothing else, and
//! because each logit's reduction runs over the embedding dimension only
//! (never across entities), a shard-local score is **bit-identical** to
//! the same entity's score in a single-node run.
//!
//! The merge contract ([`merge_topk`]) is equally strict: concatenating
//! per-shard top-k lists and re-sorting with the *same* comparator as
//! [`crate::predict::topk_from_scores`] (score descending, entity id
//! ascending on ties) reproduces the single-node ranking bit-for-bit,
//! provided every live shard contributed `min(k, shard_width)` candidates.
//!
//! Softmax probabilities are the one quantity that is *not* bit-stable
//! under sharding: the single-node denominator is a left-to-right `f32`
//! sum over the full entity order, which cannot be reconstructed from
//! per-shard partial sums. [`SoftmaxStat`] carries each shard's
//! `(max, Σ exp(x - max))` so a merger can rebuild numerically equal (but
//! not bit-equal) probabilities; rankings never depend on them.

/// Which contiguous slice of the entity vocabulary one worker scores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: usize,
    /// Total number of shards.
    pub count: usize,
}

/// A malformed shard specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// `count` was zero.
    ZeroCount,
    /// `index >= count`.
    IndexOutOfRange {
        /// Offending shard index.
        index: usize,
        /// Total shard count.
        count: usize,
    },
    /// A spec string that is not `i/N`.
    Malformed(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::ZeroCount => write!(f, "shard count must be at least 1"),
            Self::IndexOutOfRange { index, count } => {
                write!(f, "shard index {index} out of range (< {count})")
            }
            Self::Malformed(s) => write!(f, "malformed shard spec {s:?} (want i/N, e.g. 0/3)"),
        }
    }
}

impl std::error::Error for ShardError {}

impl ShardSpec {
    /// Validated constructor.
    pub fn new(index: usize, count: usize) -> Result<Self, ShardError> {
        if count == 0 {
            return Err(ShardError::ZeroCount);
        }
        if index >= count {
            return Err(ShardError::IndexOutOfRange { index, count });
        }
        Ok(Self { index, count })
    }

    /// Parses the CLI form `i/N` (e.g. `"0/3"`).
    pub fn parse(spec: &str) -> Result<Self, ShardError> {
        let (i, n) = spec
            .split_once('/')
            .ok_or_else(|| ShardError::Malformed(spec.into()))?;
        let index: usize = i
            .trim()
            .parse()
            .map_err(|_| ShardError::Malformed(spec.into()))?;
        let count: usize = n
            .trim()
            .parse()
            .map_err(|_| ShardError::Malformed(spec.into()))?;
        Self::new(index, count)
    }

    /// The contiguous entity range `[lo, hi)` this shard scores: entities
    /// are split as evenly as possible, the first `E mod N` shards taking
    /// one extra. Ranges tile `0..num_entities` exactly, so the union over
    /// all shards is the full vocabulary and no entity is scored twice.
    /// Shards with `index >= num_entities` get an empty range.
    pub fn range(&self, num_entities: usize) -> (usize, usize) {
        let base = num_entities / self.count;
        let rem = num_entities % self.count;
        let lo = self.index * base + self.index.min(rem);
        let width = base + usize::from(self.index < rem);
        (lo, lo + width)
    }
}

impl std::fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

/// One shard-local candidate: a global entity id with its raw logit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEntity {
    /// Global entity id.
    pub entity: usize,
    /// Raw decoder logit (pre-softmax), bit-identical to single-node.
    pub score: f32,
}

/// A shard's softmax partial statistics: the shard-range maximum and the
/// left-to-right sum of `exp(x - max)` over the shard's entity order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftmaxStat {
    /// Maximum raw score in the shard range (`-inf` for an empty shard).
    pub max: f32,
    /// `Σ exp(score - max)` over the shard range (`0` for an empty shard).
    pub sum_exp: f32,
}

impl SoftmaxStat {
    /// Computes the stats for one shard's score slice, with the same
    /// max-fold and left-to-right summation as
    /// [`crate::predict::topk_from_scores`].
    pub fn from_scores(scores: &[f32]) -> Self {
        let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let sum_exp: f32 = scores.iter().map(|&x| (x - max).exp()).sum();
        Self { max, sum_exp }
    }

    /// Combines per-shard stats into a global `(max, Σ exp(x - max))`.
    ///
    /// `f32::max` is exactly combinable, so the global max is bit-identical
    /// to single-node. The recombined sum is only *numerically* equal to
    /// the single-node left-to-right sum (f32 addition is not associative);
    /// probabilities derived from it agree to float tolerance, which is why
    /// the merge contract covers rankings and raw scores, never
    /// probabilities. Empty shards (`sum_exp == 0`) contribute nothing.
    pub fn combine(stats: &[SoftmaxStat]) -> Self {
        let max = stats
            .iter()
            .map(|s| s.max)
            .fold(f32::NEG_INFINITY, f32::max);
        let sum_exp = stats
            .iter()
            .filter(|s| s.sum_exp > 0.0)
            .map(|s| s.sum_exp * (s.max - max).exp())
            .sum();
        Self { max, sum_exp }
    }

    /// Softmax probability of a raw score under these stats.
    pub fn probability(&self, score: f32) -> f32 {
        if self.sum_exp <= 0.0 {
            return 0.0;
        }
        (score - self.max).exp() / self.sum_exp
    }
}

/// The deterministic ranking order shared by every top-k path in the repo:
/// score descending, entity id ascending on exact ties. Incomparable
/// scores (NaN, which the model never produces) compare as tied so the
/// sort stays total and deterministic.
pub fn rank_order(a: &ScoredEntity, b: &ScoredEntity) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.entity.cmp(&b.entity))
}

/// Top-k of one shard's score slice. `scores[i]` is the logit of global
/// entity `lo + i`; the result is ranked by [`rank_order`] and truncated
/// to `k`.
pub fn shard_topk(scores: &[f32], lo: usize, k: usize) -> Vec<ScoredEntity> {
    let mut ranked: Vec<ScoredEntity> = scores
        .iter()
        .enumerate()
        .map(|(i, &score)| ScoredEntity {
            entity: lo + i,
            score,
        })
        .collect();
    ranked.sort_by(rank_order);
    ranked.truncate(k);
    ranked
}

/// Merges per-shard top-k lists into the global top-k.
///
/// Bit-identical to a single-node ranking over the concatenation of the
/// shard ranges whenever each input list holds its shard's true top
/// `min(k, shard_width)` in [`rank_order`] — the standard scatter-gather
/// argument: any entity in the global top-k is in its own shard's top-k.
pub fn merge_topk(per_shard: &[Vec<ScoredEntity>], k: usize) -> Vec<ScoredEntity> {
    let mut all: Vec<ScoredEntity> = per_shard.iter().flatten().copied().collect();
    all.sort_by(rank_order);
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_validation_and_parse() {
        assert_eq!(
            ShardSpec::parse("1/3"),
            Ok(ShardSpec { index: 1, count: 3 })
        );
        assert_eq!(ShardSpec::parse("0/1"), ShardSpec::new(0, 1));
        assert_eq!(ShardSpec::parse("3/3"), ShardSpec::new(3, 3));
        assert!(matches!(
            ShardSpec::new(3, 3),
            Err(ShardError::IndexOutOfRange { index: 3, count: 3 })
        ));
        assert_eq!(ShardSpec::new(0, 0), Err(ShardError::ZeroCount));
        assert!(matches!(
            ShardSpec::parse("x/3"),
            Err(ShardError::Malformed(_))
        ));
        assert!(matches!(
            ShardSpec::parse("03"),
            Err(ShardError::Malformed(_))
        ));
        assert_eq!(ShardSpec::parse(" 2 / 5 ").unwrap().to_string(), "2/5");
    }

    #[test]
    fn ranges_tile_the_vocabulary_exactly() {
        for num_entities in [0usize, 1, 2, 7, 10, 100, 101] {
            for count in 1usize..=6 {
                let mut next = 0;
                for index in 0..count {
                    let (lo, hi) = ShardSpec { index, count }.range(num_entities);
                    assert_eq!(lo, next, "E={num_entities} N={count} i={index}");
                    assert!(hi >= lo);
                    next = hi;
                }
                assert_eq!(next, num_entities, "ranges must cover E={num_entities}");
            }
        }
        // Uneven split: the first E mod N shards take the extra entity.
        assert_eq!(ShardSpec { index: 0, count: 3 }.range(10), (0, 4));
        assert_eq!(ShardSpec { index: 1, count: 3 }.range(10), (4, 7));
        assert_eq!(ShardSpec { index: 2, count: 3 }.range(10), (7, 10));
        // More shards than entities: trailing shards are empty.
        assert_eq!(ShardSpec { index: 3, count: 4 }.range(2), (2, 2));
    }

    #[test]
    fn shard_topk_ranks_desc_with_entity_tiebreak() {
        let ranked = shard_topk(&[1.0, 3.0, 3.0, 2.0], 10, 3);
        let pairs: Vec<(usize, f32)> = ranked.iter().map(|s| (s.entity, s.score)).collect();
        assert_eq!(pairs, vec![(11, 3.0), (12, 3.0), (13, 2.0)]);
    }

    #[test]
    fn merge_equals_single_shard_ranking() {
        let scores = [0.5f32, -1.0, 0.5, 2.0, 2.0, -3.0, 0.0];
        let k = 4;
        let single = shard_topk(&scores, 0, k);
        let split = [
            shard_topk(&scores[..3], 0, k),
            shard_topk(&scores[3..5], 3, k),
            shard_topk(&scores[5..], 5, k),
        ];
        let merged = merge_topk(&split, k);
        assert_eq!(merged.len(), single.len());
        for (m, s) in merged.iter().zip(&single) {
            assert_eq!(m.entity, s.entity);
            assert_eq!(m.score.to_bits(), s.score.to_bits());
        }
    }

    #[test]
    fn softmax_stats_recombine_numerically() {
        let scores = [0.1f32, 2.0, -1.5, 0.7, 0.7, 3.0];
        let full = SoftmaxStat::from_scores(&scores);
        let parts = [
            SoftmaxStat::from_scores(&scores[..2]),
            SoftmaxStat::from_scores(&scores[2..4]),
            SoftmaxStat::from_scores(&scores[4..]),
        ];
        let combined = SoftmaxStat::combine(&parts);
        // The max is exactly combinable; the sum to float tolerance.
        assert_eq!(combined.max.to_bits(), full.max.to_bits());
        assert!((combined.sum_exp - full.sum_exp).abs() / full.sum_exp < 1e-6);
        let p_full = full.probability(2.0);
        let p_comb = combined.probability(2.0);
        assert!((p_full - p_comb).abs() < 1e-6);
    }

    #[test]
    fn empty_shards_are_inert() {
        let empty = SoftmaxStat::from_scores(&[]);
        assert_eq!(empty.sum_exp, 0.0);
        assert_eq!(empty.probability(1.0), 0.0);
        let combined = SoftmaxStat::combine(&[empty, SoftmaxStat::from_scores(&[1.0, 2.0])]);
        let direct = SoftmaxStat::from_scores(&[1.0, 2.0]);
        assert_eq!(combined.max.to_bits(), direct.max.to_bits());
        assert!((combined.sum_exp - direct.sum_exp).abs() < 1e-6);
        assert!(shard_topk(&[], 5, 3).is_empty());
        assert!(merge_topk(&[vec![], vec![]], 3).is_empty());
    }
}
