//! LogCL hyper-parameters and ablation switches.

use logcl_gnn::AggregatorKind;
use logcl_tkg::NoiseSpec;

/// Which of the four query-contrast losses of Section III-E are active
/// (Fig. 7 compares them; the full model averages all four).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContrastStrategy {
    /// `(L_lg + L_gl + L_ll + L_gg) / 4` — the full model.
    All,
    /// Local anchors against global candidates only.
    Lg,
    /// Global anchors against local candidates only.
    Gl,
    /// Local–local uniformity only.
    Ll,
    /// Global–global uniformity only.
    Gg,
}

impl ContrastStrategy {
    /// The four single-loss variants in Fig. 7's order.
    pub const SINGLES: [ContrastStrategy; 4] = [Self::Lg, Self::Gl, Self::Ll, Self::Gg];

    /// Display name matching the paper's labels.
    pub fn name(&self) -> &'static str {
        match self {
            Self::All => "LogCL",
            Self::Lg => "LogCL-lg",
            Self::Gl => "LogCL-gl",
            Self::Ll => "LogCL-ll",
            Self::Gg => "LogCL-gg",
        }
    }
}

/// Full model configuration. `Default` reproduces the paper's settings
/// (Section IV-B2) scaled to the synthetic benchmarks (DESIGN.md).
#[derive(Debug, Clone)]
pub struct LogClConfig {
    /// Embedding dimensionality `d` (paper: 200; default here: 64).
    pub dim: usize,
    /// Width of the periodic time-encoding frequency bank (Eq. 2).
    pub time_bank: usize,
    /// Local history length `m` (paper: 7/9; default here: 4).
    pub m: usize,
    /// R-GCN depth in the local encoder.
    pub local_layers: usize,
    /// R-GCN depth in the global encoder (Fig. 6 sweeps this).
    pub global_layers: usize,
    /// Which relational GNN fills both encoders (Table V).
    pub aggregator: AggregatorKind,
    /// ConvTransE kernel count (paper: 50).
    pub channels: usize,
    /// Dropout rate (paper: 0.2).
    pub dropout: f32,
    /// Mixing weight λ of Eq. 19 — the **local** share, following Fig. 8's
    /// description ("a larger value of λ indicates a higher proportion of
    /// the local encoder"; Eq. 19's rendering has the opposite orientation —
    /// the paper is internally inconsistent, see DESIGN.md). The paper's
    /// prediction weight is 0.9.
    pub lambda: f32,
    /// Contrastive temperature τ (paper: 0.03 / 0.07).
    pub tau: f32,
    /// Which contrast losses are active.
    pub contrast: ContrastStrategy,
    /// Cap on historical query-subgraph edges sampled per query.
    pub max_subgraph_edges: usize,
    /// Ablation: use the local entity-aware attention recurrent encoder
    /// (`false` = LogCL-G).
    pub use_local: bool,
    /// Ablation: use the global entity-aware attention encoder
    /// (`false` = LogCL-L).
    pub use_global: bool,
    /// Ablation: entity-aware attention in both encoders
    /// (`false` = LogCL-w/o-eatt).
    pub use_entity_attention: bool,
    /// Ablation: the local-global query contrast module
    /// (`false` = LogCL-w/o-cl).
    pub use_contrast: bool,
    /// Use the dataset's static KG information (affiliation graph) to
    /// refine initial entity embeddings, as the paper does on the ICEWS
    /// datasets. Off by default (the recorded experiment runs predate it);
    /// a no-op when the dataset carries no static facts.
    pub use_static: bool,
    /// Gaussian perturbation of the initial entity representations
    /// (Figs. 2 & 5); applied at every forward pass when non-clean.
    pub noise: NoiseSpec,
    /// Parameter-initialisation / dropout seed.
    pub seed: u64,
    /// Compute threads for the kernel backend (`0` = auto-detect, `1` =
    /// serial). Excluded from the fingerprint: both backends are
    /// bit-identical, so checkpoints are portable across thread counts.
    pub threads: usize,
}

impl Default for LogClConfig {
    fn default() -> Self {
        Self {
            dim: 64,
            time_bank: 16,
            m: 4,
            local_layers: 2,
            global_layers: 2,
            aggregator: AggregatorKind::Rgcn,
            channels: 50,
            dropout: 0.2,
            lambda: 0.9,
            tau: 0.03,
            contrast: ContrastStrategy::All,
            max_subgraph_edges: 60,
            use_local: true,
            use_global: true,
            use_entity_attention: true,
            use_contrast: true,
            use_static: false,
            noise: NoiseSpec::CLEAN,
            seed: 42,
            threads: 0,
        }
    }
}

impl LogClConfig {
    /// The LogCL-G variant (global encoder only).
    pub fn without_local(mut self) -> Self {
        self.use_local = false;
        self
    }

    /// The LogCL-L variant (local encoder only).
    pub fn without_global(mut self) -> Self {
        self.use_global = false;
        self
    }

    /// The LogCL-w/o-eatt variant.
    pub fn without_entity_attention(mut self) -> Self {
        self.use_entity_attention = false;
        self
    }

    /// The LogCL-w/o-cl variant.
    pub fn without_contrast(mut self) -> Self {
        self.use_contrast = false;
        self
    }

    /// Human-readable variant name used in the experiment tables.
    pub fn variant_name(&self) -> String {
        let mut name = String::from("LogCL");
        if !self.use_local {
            name.push_str("-G");
        }
        if !self.use_global {
            name.push_str("-L");
        }
        if !self.use_entity_attention {
            name.push_str("-w/o-eatt");
        }
        if !self.use_contrast {
            name.push_str("-w/o-cl");
        }
        name
    }

    /// A stable, human-readable fingerprint of every field that shapes the
    /// parameter set or the forward pass — everything except the RNG seed,
    /// the (test-time) input noise and the compute-thread count (the kernel
    /// backends are bit-identical, so `threads` cannot change results).
    /// Stamped into checkpoint metadata so loaders can reject parameters
    /// trained under a different configuration with a clear message instead
    /// of a shape panic.
    pub fn fingerprint(&self) -> String {
        format!(
            "d{}.tb{}.m{}.ll{}.gl{}.{:?}.ch{}.do{}.la{}.tau{}.{:?}.sub{}.loc{}.glob{}.eatt{}.cl{}.stat{}",
            self.dim,
            self.time_bank,
            self.m,
            self.local_layers,
            self.global_layers,
            self.aggregator,
            self.channels,
            self.dropout,
            self.lambda,
            self.tau,
            self.contrast,
            self.max_subgraph_edges,
            u8::from(self.use_local),
            u8::from(self.use_global),
            u8::from(self.use_entity_attention),
            u8::from(self.use_contrast),
            u8::from(self.use_static),
        )
    }

    /// Validates configuration invariants; panics on nonsense combinations.
    pub fn validate(&self) {
        assert!(self.dim >= 4, "dim too small");
        assert!(self.m >= 1, "local history length must be >= 1");
        assert!(
            self.use_local || self.use_global,
            "at least one encoder required"
        );
        assert!(
            (0.0..=1.0).contains(&self.lambda),
            "lambda must be in [0, 1]"
        );
        assert!(self.tau > 0.0, "temperature must be positive");
        assert!(
            (0.0..1.0).contains(&self.dropout),
            "dropout must be in [0, 1)"
        );
        assert!(self.local_layers >= 1 && self.global_layers >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_full_model() {
        let cfg = LogClConfig::default();
        cfg.validate();
        assert_eq!(cfg.variant_name(), "LogCL");
        assert!(cfg.use_local && cfg.use_global && cfg.use_contrast);
    }

    #[test]
    fn ablation_builders_name_themselves() {
        assert_eq!(
            LogClConfig::default().without_local().variant_name(),
            "LogCL-G"
        );
        assert_eq!(
            LogClConfig::default().without_global().variant_name(),
            "LogCL-L"
        );
        assert_eq!(
            LogClConfig::default()
                .without_entity_attention()
                .variant_name(),
            "LogCL-w/o-eatt"
        );
        assert_eq!(
            LogClConfig::default().without_contrast().variant_name(),
            "LogCL-w/o-cl"
        );
        assert_eq!(
            LogClConfig::default()
                .without_global()
                .without_entity_attention()
                .variant_name(),
            "LogCL-L-w/o-eatt"
        );
    }

    #[test]
    #[should_panic(expected = "at least one encoder")]
    fn both_encoders_off_is_rejected() {
        LogClConfig::default()
            .without_local()
            .without_global()
            .validate();
    }

    #[test]
    fn fingerprint_tracks_structural_fields_but_not_seed() {
        let base = LogClConfig::default();
        let same = LogClConfig {
            seed: 7,
            ..LogClConfig::default()
        };
        assert_eq!(base.fingerprint(), same.fingerprint());
        // Thread count never shapes results (bit-identical backends), so
        // checkpoints must stay portable across it.
        let threaded = LogClConfig {
            threads: 8,
            ..LogClConfig::default()
        };
        assert_eq!(base.fingerprint(), threaded.fingerprint());
        let wider = LogClConfig {
            dim: 128,
            ..LogClConfig::default()
        };
        assert_ne!(base.fingerprint(), wider.fingerprint());
        assert_ne!(
            base.fingerprint(),
            LogClConfig::default().without_contrast().fingerprint()
        );
    }

    #[test]
    fn strategy_names() {
        assert_eq!(ContrastStrategy::All.name(), "LogCL");
        assert_eq!(ContrastStrategy::SINGLES.len(), 4);
    }
}
