//! The model interface and the shared evaluation driver.
//!
//! Every model in the reproduction — LogCL, its ablations and all baselines —
//! implements [`TkgModel`], so one driver produces every table's metrics
//! under identical two-phase, time-aware-filtered conditions.

use std::path::PathBuf;

use logcl_tkg::eval::{rank_time_aware, Metrics, RankAccumulator};
use logcl_tkg::quad::{Quad, Time};
use logcl_tkg::{HistoryIndex, Snapshot, TkgDataset};

use crate::checkpoint::{CheckpointPolicy, TrainError};
use crate::trainer::TrainReport;

/// Everything a model may condition on when scoring queries at time `t`:
/// the full snapshot sequence (the model must only read `snapshots[..t]`),
/// and a history index advanced exactly to `t`.
pub struct EvalContext<'a> {
    /// The dataset (vocabulary sizes, names).
    pub ds: &'a TkgDataset,
    /// All snapshots (inverse-closed); **only `[..t]` may be read**.
    pub snapshots: &'a [Snapshot],
    /// Global history of facts with time `< t`.
    pub history: &'a HistoryIndex,
    /// The query timestamp.
    pub t: Time,
}

/// Training options shared across models.
#[derive(Debug, Clone)]
pub struct TrainOptions {
    /// Number of passes over the training timeline.
    pub epochs: usize,
    /// Learning rate (paper: 1e-3 with Adam).
    pub lr: f32,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
    /// Print per-epoch losses.
    pub verbose: bool,
    /// Keep the checkpoint with the best validation MRR (evaluated over the
    /// second half of training) instead of the last epoch's parameters.
    pub select_on_valid: bool,
    /// Durable checkpointing policy (`None`: train purely in memory).
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume from a checkpoint file written by an earlier (interrupted)
    /// run of the same configuration.
    pub resume: Option<PathBuf>,
    /// Divergence-sentinel budget: how many rollback-and-halve-LR retries
    /// are allowed before training gives up with [`TrainError::Diverged`].
    pub max_rollbacks: usize,
    /// Pre-clip gradient norms above this trip the divergence sentinel
    /// (non-finite losses and gradients always trip it).
    pub divergence_grad_limit: f32,
    /// Test hook: report a `NaN` loss once, on the first batch of this
    /// epoch, to exercise the rollback path deterministically.
    pub inject_nan_loss_at_epoch: Option<usize>,
    /// Test hook: stop training (as a crash would) right after this
    /// epoch's checkpoint is written; `epochs` still governs the
    /// validation-selection cadence so a resumed run matches an
    /// uninterrupted one bit-for-bit.
    pub halt_after_epoch: Option<usize>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 12,
            lr: 1e-3,
            grad_clip: 5.0,
            verbose: false,
            select_on_valid: true,
            checkpoint: None,
            resume: None,
            max_rollbacks: 3,
            divergence_grad_limit: 1e4,
            inject_nan_loss_at_epoch: None,
            halt_after_epoch: None,
        }
    }
}

impl TrainOptions {
    /// Quiet options with a given number of epochs.
    pub fn epochs(n: usize) -> Self {
        Self {
            epochs: n,
            ..Self::default()
        }
    }
}

/// A temporal-KG extrapolation model.
pub trait TkgModel {
    /// Display name for tables.
    fn name(&self) -> String;

    /// Trains on the dataset's training split. Errors are reserved for
    /// unrecoverable conditions (checkpoint I/O failure, divergence after
    /// the rollback budget); models without durable state can simply
    /// return `Ok(TrainReport::default())`.
    fn fit(&mut self, ds: &TkgDataset, opts: &TrainOptions) -> Result<TrainReport, TrainError>;

    /// Scores every candidate object for each query (one `|E|`-long score
    /// vector per query). Queries may be inverse-direction; the model sees
    /// relation ids in `0..2|R|`.
    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>>;

    /// Online adaptation on the ground-truth facts of the just-evaluated
    /// timestamp (Fig. 10). Default: no-op (offline models).
    fn online_update(&mut self, _ctx: &EvalContext<'_>, _quads: &[Quad]) {}
}

/// Which propagation phases the evaluation runs (Table VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Original queries then inverse queries (the full protocol).
    Both,
    /// Original queries only (LogCL-FP).
    FirstOnly,
    /// Inverse queries only (LogCL-SP).
    SecondOnly,
}

/// Evaluates `model` on `quads` (a test or validation split of `ds`) with
/// the full two-phase protocol and time-aware filtering.
pub fn evaluate(model: &mut dyn TkgModel, ds: &TkgDataset, quads: &[Quad]) -> Metrics {
    evaluate_with_phase(model, ds, quads, Phase::Both, false)
}

/// Evaluation with explicit phase selection and optional online updates.
pub fn evaluate_with_phase(
    model: &mut dyn TkgModel,
    ds: &TkgDataset,
    quads: &[Quad],
    phase: Phase,
    online: bool,
) -> Metrics {
    let snapshots = ds.snapshots();
    let times = TkgDataset::split_times(quads);
    let first_t = times.first().copied().unwrap_or(0);
    // History up to (but excluding) the first evaluated timestamp.
    let mut history = HistoryIndex::new();
    for snap in &snapshots[..first_t] {
        history.advance(snap);
    }
    let mut acc = RankAccumulator::new();
    for &t in &times {
        // Catch up history for any gap between evaluated timestamps.
        while history.horizon() < t {
            let h = history.horizon();
            history.advance(&snapshots[h]);
        }
        let truth = ds.facts_at(t);
        let at_t: Vec<Quad> = quads.iter().filter(|q| q.t == t).copied().collect();
        let ctx = EvalContext {
            ds,
            snapshots: &snapshots,
            history: &history,
            t,
        };

        if matches!(phase, Phase::Both | Phase::FirstOnly) {
            let scores = model.score(&ctx, &at_t);
            assert_eq!(scores.len(), at_t.len(), "model returned wrong score count");
            for (q, s) in at_t.iter().zip(&scores) {
                assert_eq!(
                    s.len(),
                    ds.num_entities,
                    "score vector must cover all entities"
                );
                acc.push(rank_time_aware(s, q, &truth));
            }
        }
        if matches!(phase, Phase::Both | Phase::SecondOnly) {
            let inv: Vec<Quad> = at_t.iter().map(|q| q.inverse(ds.num_rels)).collect();
            let scores = model.score(&ctx, &inv);
            for (q, s) in inv.iter().zip(&scores) {
                acc.push(rank_time_aware(s, q, &truth));
            }
        }
        if online {
            let ctx = EvalContext {
                ds,
                snapshots: &snapshots,
                history: &history,
                t,
            };
            model.online_update(&ctx, &at_t);
        }
    }
    acc.finish()
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use logcl_tkg::quad::Quad;

    /// A trivially scorable model: always prefers entity `favourite`.
    pub struct ConstModel {
        pub favourite: usize,
        pub calls: usize,
    }

    impl TkgModel for ConstModel {
        fn name(&self) -> String {
            "Const".into()
        }
        fn fit(
            &mut self,
            _ds: &TkgDataset,
            _opts: &TrainOptions,
        ) -> Result<TrainReport, TrainError> {
            Ok(TrainReport::default())
        }
        fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
            self.calls += 1;
            queries
                .iter()
                .map(|_| {
                    let mut v = vec![0.0f32; ctx.ds.num_entities];
                    v[self.favourite] = 1.0;
                    v
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::ConstModel;
    use super::*;

    fn toy_ds() -> TkgDataset {
        // Entity 1 is always the object; subject cycles.
        let quads: Vec<Quad> = (0..20).map(|t| Quad::new(t % 3, 0, 1, t)).collect();
        TkgDataset::from_quads("toy", 4, 1, quads)
    }

    #[test]
    fn perfect_model_scores_perfectly() {
        let ds = toy_ds();
        let mut model = ConstModel {
            favourite: 1,
            calls: 0,
        };
        // Phase 1 only: all queries have object 1.
        let m = evaluate_with_phase(&mut model, &ds, &ds.test.clone(), Phase::FirstOnly, false);
        assert_eq!(m.mrr, 100.0);
        assert_eq!(m.hits1, 100.0);
    }

    #[test]
    fn inverse_phase_asks_reverse_queries() {
        let ds = toy_ds();
        // For inverse queries the answer is the original subject (0/1/2),
        // so always guessing 1 is only sometimes right.
        let mut model = ConstModel {
            favourite: 1,
            calls: 0,
        };
        let m = evaluate_with_phase(&mut model, &ds, &ds.test.clone(), Phase::SecondOnly, false);
        assert!(m.hits1 < 100.0);
        assert!(m.count > 0);
    }

    #[test]
    fn both_phases_double_query_count() {
        let ds = toy_ds();
        let mut model = ConstModel {
            favourite: 0,
            calls: 0,
        };
        let test = ds.test.clone();
        let both = evaluate(&mut model, &ds, &test);
        let single = evaluate_with_phase(&mut model, &ds, &test, Phase::FirstOnly, false);
        assert_eq!(both.count, 2 * single.count);
    }

    #[test]
    fn default_train_options_match_paper() {
        let o = TrainOptions::default();
        assert!((o.lr - 1e-3).abs() < 1e-9);
        assert!(o.epochs > 0);
    }
}
