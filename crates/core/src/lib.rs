//! # logcl-core
//!
//! The LogCL model (ICDE 2024) and its training/evaluation harness:
//!
//! * [`config::LogClConfig`] — hyper-parameters plus the ablation switches
//!   that realise every Table IV/V variant.
//! * [`model::LogCl`] — the full encoder–decoder: local entity-aware
//!   attention recurrent encoder, global entity-aware attention encoder,
//!   local–global query contrast module and ConvTransE decoder.
//! * [`api::TkgModel`] — the trait every model (LogCL and the baselines in
//!   `logcl-baselines`) implements, plus the shared two-phase evaluation
//!   driver with time-aware filtered metrics.
//! * [`trainer`] — offline training (two-phase forward propagation, Adam)
//!   and the online-update protocol of Fig. 10.
//! * [`predict`] — top-k readable predictions for the Table VI case study.

pub mod api;
pub mod checkpoint;
pub mod config;
pub mod contrast;
pub mod diagnostics;
pub mod global_encoder;
pub mod local_encoder;
pub mod model;
pub mod predict;
pub mod serving_snapshot;
pub mod shard;
pub mod static_graph;
pub mod trainer;

pub use api::{evaluate, evaluate_with_phase, EvalContext, Phase, TkgModel, TrainOptions};
pub use checkpoint::{CheckpointPolicy, RollbackEvent, TrainCheckpoint, TrainError};
pub use config::{ContrastStrategy, LogClConfig};
pub use diagnostics::{evaluate_detailed, DetailedReport};
pub use local_encoder::{EncoderState, EncoderStateRecord};
pub use model::LogCl;
pub use predict::{
    predict_topk, predict_topk_stream, topk_from_scores, validate_query, PredictError, Prediction,
};
pub use serving_snapshot::{DedupEntry, ModelParamSnapshot, ServingSnapshot};
pub use shard::{
    merge_topk, rank_order, shard_topk, ScoredEntity, ShardError, ShardSpec, SoftmaxStat,
};
pub use trainer::{
    evaluate_online, online_adapt, OnlineAdaptOptions, OnlineAdaptReport, TrainReport,
};
