//! Compaction snapshots for the serving stack's durable-ingest path.
//!
//! A [`ServingSnapshot`] is the single-file checkpoint a server writes when
//! it compacts its write-ahead log: the accumulated [`DatasetExtension`]
//! (ingested facts + advanced horizon), the parameters of every registered
//! model (online fine-tuning mutates them, so they are part of the durable
//! state), and the idempotency dedup window (so a retried ingest id is
//! still recognised after the WAL frames that carried it are truncated).
//!
//! The file reuses the PR 2 durable-container discipline end to end: a
//! CRC32-checksummed `LGCL` container written atomically (sibling tmp file,
//! fsync, rename, directory fsync) via
//! [`logcl_tensor::serialize::save_json_durable`]. A crash at any point
//! leaves either the previous snapshot or the complete new one — never a
//! torn file — which is what makes "write snapshot, then truncate WAL" a
//! safe two-step compaction.

use std::path::Path;

use serde::{Deserialize, Serialize};

use logcl_tensor::serialize::{load_json_durable, save_json_durable, Checkpoint, CheckpointError};
use logcl_tkg::extension::DatasetExtension;

/// Container-internal format version of [`ServingSnapshot`].
pub const SERVING_SNAPSHOT_VERSION: u32 = 1;

/// One model's parameters inside a snapshot, keyed by its registry name.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelParamSnapshot {
    /// Registry key of the model.
    pub name: String,
    /// Full parameter checkpoint (with metadata for validation on restore).
    pub checkpoint: Checkpoint,
    /// The streaming encoder state at compaction time. `None` in snapshots
    /// written before the incremental pipeline existed (the loader then
    /// rebuilds the state deterministically) — optional-with-default keeps
    /// the container at version 1.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub state: Option<crate::local_encoder::EncoderStateRecord>,
    /// The model's RNG stream at compaction time, so online fine-tuning
    /// after a restart continues the exact random stream the uninterrupted
    /// server would have used.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rng: Option<logcl_tensor::rng::RngState>,
}

/// One remembered ingest id and the outcome originally acknowledged for it,
/// preserved across compaction so a duplicate retry replays the answer
/// instead of the work.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DedupEntry {
    /// The client-supplied `X-LogCL-Ingest-Id`.
    pub id: String,
    /// Facts appended by the original request.
    pub appended: usize,
    /// Cached encodings invalidated by the original request.
    pub invalidated: usize,
    /// Whether the original request ran an online adaptation step.
    pub updated: bool,
    /// The dataset horizon after the original request.
    pub horizon: usize,
}

/// Everything a restarted server needs to reconstruct its post-ingest
/// state without replaying the (now truncated) WAL prefix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServingSnapshot {
    /// Format version ([`SERVING_SNAPSHOT_VERSION`]).
    pub version: u32,
    /// The ingestion delta over the base dataset.
    pub extension: DatasetExtension,
    /// Parameters of every registered model at compaction time.
    pub models: Vec<ModelParamSnapshot>,
    /// The idempotency window at compaction time, oldest first.
    pub dedup: Vec<DedupEntry>,
    /// Total ingests applied up to this snapshot (monotone across
    /// compactions; metrics/debugging only).
    pub applied_ingests: u64,
}

impl ServingSnapshot {
    /// Writes the snapshot durably and atomically to `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CheckpointError> {
        save_json_durable(self, path)
    }

    /// Reads and validates a snapshot from `path`. Corruption (bad CRC,
    /// truncation, unparseable payload) and unknown future versions are
    /// typed errors — never a fail-open empty snapshot.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let snap: ServingSnapshot = load_json_durable(&path)?;
        if snap.version != SERVING_SNAPSHOT_VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "serving snapshot version {} is not supported (expected {})",
                snap.version, SERVING_SNAPSHOT_VERSION
            )));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LogClConfig;
    use crate::model::LogCl;
    use logcl_tensor::serialize::snapshot_with_meta;
    use logcl_tkg::quad::Quad;
    use logcl_tkg::SyntheticPreset;

    fn sample() -> ServingSnapshot {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.1);
        let cfg = LogClConfig {
            dim: 8,
            time_bank: 4,
            channels: 4,
            m: 2,
            ..Default::default()
        };
        let model = LogCl::new(&ds, cfg.clone());
        ServingSnapshot {
            version: SERVING_SNAPSHOT_VERSION,
            extension: DatasetExtension {
                base_test_len: ds.test.len(),
                num_times: ds.num_times + 1,
                quads: vec![Quad::new(0, 0, 1, ds.num_times)],
            },
            models: vec![ModelParamSnapshot {
                name: "default".into(),
                checkpoint: snapshot_with_meta(&model.params, "LogCL", &cfg.fingerprint()),
                state: None,
                rng: Some(model.rng_state()),
            }],
            dedup: vec![DedupEntry {
                id: "req-1".into(),
                appended: 1,
                invalidated: 0,
                updated: false,
                horizon: ds.num_times + 1,
            }],
            applied_ingests: 1,
        }
    }

    #[test]
    fn snapshot_round_trips_durably() {
        let dir = std::env::temp_dir().join(format!("logcl-snap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.ckpt");
        let snap = sample();
        snap.save(&path).unwrap();
        let back = ServingSnapshot::load(&path).unwrap();
        assert_eq!(back.version, SERVING_SNAPSHOT_VERSION);
        assert_eq!(back.extension, snap.extension);
        assert_eq!(back.dedup, snap.dedup);
        assert_eq!(back.models.len(), 1);
        assert_eq!(back.models[0].name, "default");
        // `state: None` serialises exactly like a pre-incremental snapshot
        // (the field is skipped), so this round trip also proves legacy
        // snapshots still load at version 1.
        assert!(back.models[0].state.is_none());
        assert_eq!(back.models[0].rng, snap.models[0].rng);
        assert_eq!(back.applied_ingests, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_and_future_version_snapshots_are_typed_errors() {
        let dir = std::env::temp_dir().join(format!("logcl-snap-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.ckpt");
        let mut snap = sample();
        snap.save(&path).unwrap();

        // Bit-flip inside the container: CRC must catch it.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(ServingSnapshot::load(&path).is_err());

        // A future version must be refused, not silently misread.
        snap.version = SERVING_SNAPSHOT_VERSION + 1;
        snap.save(&path).unwrap();
        let err = ServingSnapshot::load(&path).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
