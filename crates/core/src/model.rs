//! The assembled LogCL model (Fig. 3).

use logcl_gnn::ConvTransE;
use logcl_tensor::nn::{Embedding, Mlp, ParamSet};
use logcl_tensor::optim::Adam;
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, Snapshot, TkgDataset};

use crate::api::{EvalContext, TkgModel, TrainOptions};
use crate::config::LogClConfig;
use crate::contrast::contrastive_loss;
use crate::global_encoder::{GlobalEncoder, GlobalEncoding};
use crate::local_encoder::{EncoderState, LocalEncoder, LocalEncoding};
use crate::static_graph::StaticGraph;
use crate::trainer;

/// Query-independent encodings shared by the two propagation phases at one
/// timestamp (the local recurrent encoding never sees the queries, so
/// re-computing it per phase would only waste work).
pub struct SharedEncoding {
    /// The (possibly noise-perturbed) initial entity embeddings used by
    /// this forward pass.
    pub h0: Var,
    /// The local recurrent encoding, when the local encoder is enabled.
    pub local: Option<LocalEncoding>,
    /// The timestamp encoded for.
    pub t_q: usize,
}

/// One phase's forward outputs.
pub struct ForwardOutput {
    /// `[B, |E|]` entity logits.
    pub logits: Var,
    /// The contrastive loss `L_cl`, when the contrast module ran.
    pub contrast: Option<Var>,
}

/// The LogCL model.
pub struct LogCl {
    /// Configuration (ablation switches included).
    pub cfg: LogClConfig,
    /// Every trainable parameter, for optimizers and checkpointing.
    pub params: ParamSet,
    ent: Embedding,
    rel: Embedding,
    local: LocalEncoder,
    global: GlobalEncoder,
    mlp_local: Mlp,
    mlp_global: Mlp,
    decoder: ConvTransE,
    static_graph: Option<StaticGraph>,
    rng: Rng,
    pub(crate) opt: Option<Adam>,
    pub(crate) opt_options: TrainOptions,
}

impl LogCl {
    /// Builds a model sized for `ds` (entity/relation vocabulary) under
    /// `cfg`.
    pub fn new(ds: &TkgDataset, cfg: LogClConfig) -> Self {
        cfg.validate();
        // Select the process-wide kernel backend. Backends are bit-identical,
        // so this affects wall-clock only, never results (see logcl-tensor's
        // kernels module) — which is why `threads` stays out of the config
        // fingerprint and checkpoints remain portable across thread counts.
        logcl_tensor::kernels::set_threads(cfg.threads);
        let mut rng = Rng::seed(cfg.seed);
        let dim = cfg.dim;
        let ent = Embedding::new(ds.num_entities, dim, &mut rng);
        let rel = Embedding::new(ds.num_rels_with_inverse(), dim, &mut rng);
        let local = LocalEncoder::new(&cfg, &mut rng);
        let global = GlobalEncoder::new(&cfg, &mut rng);
        let mlp_local = Mlp::new(2 * dim, dim, dim, true, &mut rng);
        let mlp_global = Mlp::new(2 * dim, dim, dim, true, &mut rng);
        let decoder = ConvTransE::new(dim, cfg.channels, cfg.dropout, &mut rng);
        let static_graph = if cfg.use_static {
            StaticGraph::new(ds, dim, &mut rng)
        } else {
            None
        };

        let mut params = ParamSet::new();
        ent.register(&mut params, "ent");
        rel.register(&mut params, "rel");
        if cfg.use_local {
            local.register(&mut params, "local");
        }
        if cfg.use_global {
            global.register(&mut params, "global");
        }
        if cfg.use_contrast && cfg.use_local && cfg.use_global {
            mlp_local.register(&mut params, "mlp_local");
            mlp_global.register(&mut params, "mlp_global");
        }
        decoder.register(&mut params, "decoder");
        if let Some(sg) = &static_graph {
            sg.register(&mut params, "static");
        }

        Self {
            cfg,
            params,
            ent,
            rel,
            local,
            global,
            mlp_local,
            mlp_global,
            decoder,
            static_graph,
            rng,
            opt: None,
            opt_options: TrainOptions::default(),
        }
    }

    /// Number of scalar trainable weights.
    pub fn num_weights(&self) -> usize {
        self.params.num_weights()
    }

    /// Snapshots the model's RNG (dropout masks, noise draws) so a resumed
    /// run continues the exact random stream an uninterrupted one would.
    pub fn rng_state(&self) -> logcl_tensor::rng::RngState {
        self.rng.state()
    }

    /// Restores a previously captured RNG state.
    pub fn restore_rng_state(&mut self, state: logcl_tensor::rng::RngState) {
        self.rng.restore(state);
    }

    /// The initial entity embeddings for one forward pass: the trainable
    /// table, plus fresh Gaussian noise when the config asks for perturbed
    /// inputs (Figs. 2 & 5).
    fn initial_entities(&mut self) -> Var {
        let base = if self.cfg.noise.is_clean() {
            // Plain handle: gradients flow straight into the table.
            self.ent.weight.clone()
        } else {
            let shape = self.ent.weight.shape();
            let noise = Tensor::randn(&shape, self.cfg.noise.std, &mut self.rng);
            self.ent.weight.add(&Var::constant(noise))
        };
        match &self.static_graph {
            Some(sg) => sg.refine(&base),
            None => base,
        }
    }

    /// Runs the query-independent encoders for queries at `t_q`.
    pub fn encode(&mut self, snapshots: &[Snapshot], t_q: usize, training: bool) -> SharedEncoding {
        let h0 = self.initial_entities();
        let local = if self.cfg.use_local {
            Some(self.local.encode(
                &h0,
                &self.rel.weight,
                snapshots,
                t_q,
                self.cfg.m,
                training,
                &mut self.rng,
            ))
        } else {
            None
        };
        SharedEncoding { h0, local, t_q }
    }

    /// Builds a fresh streaming state and advances it over every snapshot —
    /// the deterministic rebuild used at boot (no persisted state) and
    /// after a weight update (the GRU is not invertible, so new weights
    /// mean a new stream). Routes through the same
    /// [`LogCl::advance_encoder_state`] ops as live serving so a rebuilt
    /// state is bit-identical to an incrementally grown one.
    pub fn init_encoder_state(&mut self, snapshots: &[Snapshot]) -> EncoderState {
        let h0 = self.initial_entities().to_tensor();
        let rel0 = self.rel.weight.to_tensor();
        let mut state = self
            .local
            .init_state(&h0, &rel0, self.cfg.m, self.cfg.use_local);
        for snap in snapshots {
            self.advance_encoder_state(&mut state, snap);
        }
        state
    }

    /// Consumes one closed snapshot into the streaming state — O(Δ), no
    /// RNG, no gradient graph retained.
    pub fn advance_encoder_state(&self, state: &mut EncoderState, snap: &Snapshot) {
        self.local
            .advance_state(state, &self.rel.weight.to_tensor(), snap);
    }

    /// Reads a streaming state out as the [`SharedEncoding`] for one-step
    /// forecast queries at `t = state.horizon`, without touching the
    /// snapshot history.
    pub fn shared_from_state(&self, state: &EncoderState) -> SharedEncoding {
        SharedEncoding {
            h0: Var::constant(state.h0.clone()),
            local: state.local.then(|| self.local.encoding_from_state(state)),
            t_q: state.horizon,
        }
    }

    /// One propagation phase: scores `queries` (all at `shared.t_q`)
    /// against every entity and, in training, computes the contrastive
    /// loss.
    pub fn forward_queries(
        &mut self,
        shared: &SharedEncoding,
        history: &HistoryIndex,
        queries: &[Quad],
        training: bool,
    ) -> ForwardOutput {
        self.forward_queries_impl(shared, history, queries, training, false, None)
    }

    /// [`LogCl::forward_queries`] restricted to the candidate entities in
    /// `[lo, hi)`: the candidate matrix is row-sliced *before* the Eq. 18
    /// scoring matmul, so a worker owning one entity shard computes only
    /// its share of the decoder's work. Each logit's reduction runs over
    /// the embedding dimension alone, so column `j` of the result is
    /// bit-identical to column `lo + j` of the unsharded logits. The range
    /// must be non-empty and within `|E|`.
    pub fn forward_queries_sharded(
        &mut self,
        shared: &SharedEncoding,
        history: &HistoryIndex,
        queries: &[Quad],
        entity_range: (usize, usize),
    ) -> ForwardOutput {
        self.forward_queries_impl(shared, history, queries, false, false, Some(entity_range))
    }

    /// The brownout (local-only) form of [`LogCl::forward_queries_sharded`].
    pub fn forward_queries_local_only_sharded(
        &mut self,
        shared: &SharedEncoding,
        history: &HistoryIndex,
        queries: &[Quad],
        entity_range: (usize, usize),
    ) -> ForwardOutput {
        self.forward_queries_impl(shared, history, queries, false, true, Some(entity_range))
    }

    /// [`LogCl::forward_queries`] with the global two-hop encoder skipped:
    /// the decoder input falls back to the pure local representation (the
    /// λ-mixture of Eq. 19 collapses to its local term) and the candidate
    /// matrix stays the local evolved entity matrix of Eq. 18. Used by the
    /// serving stack's brownout tier, where the query-dependent global
    /// subgraph encoding is the serve-time cost it cannot afford. The skip
    /// is a no-op when the configuration has no local encoder (there would
    /// be nothing to fall back to) or no global encoder (nothing to skip).
    pub fn forward_queries_local_only(
        &mut self,
        shared: &SharedEncoding,
        history: &HistoryIndex,
        queries: &[Quad],
    ) -> ForwardOutput {
        self.forward_queries_impl(shared, history, queries, false, true, None)
    }

    fn forward_queries_impl(
        &mut self,
        shared: &SharedEncoding,
        history: &HistoryIndex,
        queries: &[Quad],
        training: bool,
        skip_global: bool,
        entity_range: Option<(usize, usize)>,
    ) -> ForwardOutput {
        assert!(!queries.is_empty(), "forward_queries on empty batch");
        // Only honour the skip when a local encoding exists to fall back
        // to; otherwise degrading would leave no representation at all.
        let skip_global = skip_global && shared.local.is_some();
        let subjects: Vec<usize> = queries.iter().map(|q| q.s).collect();
        let rels: Vec<usize> = queries.iter().map(|q| q.r).collect();
        let cfg = &self.cfg;

        // ---------------------------------------------------------- local
        // The query representation travels with the encoding it was read
        // from, so later stages never have to re-prove "rep implies
        // encoding" with an expect.
        let (local_ctx, r_dec) = match &shared.local {
            Some(enc) => {
                let rep = self.local.query_representation(
                    enc,
                    &subjects,
                    &rels,
                    cfg.use_entity_attention,
                );
                (Some((enc, rep)), enc.rel_final.gather_rows(&rels))
            }
            None => (None, self.rel.weight.gather_rows(&rels)),
        };

        // --------------------------------------------------------- global
        let global_ctx: Option<(GlobalEncoding, _)> = if cfg.use_global && !skip_global {
            let pairs: Vec<(usize, usize)> =
                subjects.iter().copied().zip(rels.iter().copied()).collect();
            let enc = self
                .global
                .encode(&shared.h0, &self.rel.weight, history, &pairs);
            let rep = self.global.query_representation(
                &enc,
                &shared.h0,
                &subjects,
                cfg.use_entity_attention,
            );
            Some((enc, rep))
        } else {
            None
        };

        // ------------------------------------------------ fusion (Eq. 19)
        // λ is the *local* share (Fig. 8: "a larger value of λ indicates a
        // higher proportion of the local encoder"). Per Eq. 18 the candidate
        // matrix is the local evolved entity matrix `H_{t_q}`; only the
        // decoder input ĥ is the λ-mixture.
        let lambda = cfg.lambda;
        let (h_q, candidates) = match (&local_ctx, &global_ctx) {
            (Some((enc_l, l)), Some((_, g))) => {
                let h_q = l.scale(lambda).add(&g.scale(1.0 - lambda));
                (h_q, enc_l.h_final.clone())
            }
            (Some((enc_l, l)), None) => (l.clone(), enc_l.h_final.clone()),
            (None, Some((enc_g, g))) => (g.clone(), enc_g.h_agg.clone()),
            // logcl-allow(L002): LogClConfig validation rejects configs with no encoder; both-None is unrepresentable here
            (None, None) => unreachable!("config validation requires an encoder"),
        };

        // -------------------------------------------- decoding (Eq. 18)
        // Entity sharding slices candidate rows *before* the scoring
        // matmul: per-entity logits are dot products over the embedding
        // dimension, so shard-local columns match the unsharded ones
        // bit-for-bit while the compute shrinks to the shard's share.
        let candidates = match entity_range {
            Some((lo, hi)) => {
                let ids: Vec<usize> = (lo..hi).collect();
                candidates.gather_rows(&ids)
            }
            None => candidates,
        };
        let decoded = self.decoder.decode(&h_q, &r_dec, training, &mut self.rng);
        let logits = self.decoder.score_all(&decoded, &candidates);

        // ------------------------------------- contrast (Eq. 15–17)
        let contrast = match (&local_ctx, &global_ctx) {
            (Some((enc_l, _)), Some((enc_g, _))) if training && cfg.use_contrast => {
                // Eq. 15: z_t from the aggregated local view and evolved
                // relations; Eq. 16: z_g from the aggregated global view and
                // static relations.
                let local_view = match enc_l.aggs.last() {
                    Some(agg) => agg.gather_rows(&subjects),
                    None => enc_l.h_final.gather_rows(&subjects),
                };
                let z_l = self.mlp_local.forward(&local_view.concat_cols(&r_dec));
                let g_view = enc_g.h_agg.gather_rows(&subjects);
                let r_static = self.rel.weight.gather_rows(&rels);
                let z_g = self.mlp_global.forward(&g_view.concat_cols(&r_static));
                Some(contrastive_loss(&z_l, &z_g, cfg.tau, cfg.contrast))
            }
            _ => None,
        };

        ForwardOutput { logits, contrast }
    }

    /// Scores one batch of queries at `t` under evaluation semantics
    /// (no dropout; noise still applied when configured, since the
    /// robustness studies perturb test-time inputs too).
    pub fn score_queries(
        &mut self,
        snapshots: &[Snapshot],
        history: &HistoryIndex,
        queries: &[Quad],
        t: usize,
    ) -> Vec<Vec<f32>> {
        if queries.is_empty() {
            return Vec::new();
        }
        let shared = self.encode(snapshots, t, false);
        let out = self.forward_queries(&shared, history, queries, false);
        let logits = out.logits.to_tensor();
        (0..queries.len()).map(|i| logits.row(i).to_vec()).collect()
    }
}

impl TkgModel for LogCl {
    fn name(&self) -> String {
        self.cfg.variant_name()
    }

    fn fit(
        &mut self,
        ds: &TkgDataset,
        opts: &TrainOptions,
    ) -> Result<trainer::TrainReport, crate::checkpoint::TrainError> {
        trainer::train(self, ds, opts)
    }

    fn score(&mut self, ctx: &EvalContext<'_>, queries: &[Quad]) -> Vec<Vec<f32>> {
        self.score_queries(ctx.snapshots, ctx.history, queries, ctx.t)
    }

    fn online_update(&mut self, ctx: &EvalContext<'_>, quads: &[Quad]) {
        trainer::online_step(self, ctx, quads);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logcl_tkg::SyntheticPreset;

    fn tiny_ds() -> TkgDataset {
        SyntheticPreset::Icews14.generate_scaled(0.15)
    }

    fn tiny_cfg() -> LogClConfig {
        LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        }
    }

    #[test]
    fn builds_and_counts_weights() {
        let ds = tiny_ds();
        let model = LogCl::new(&ds, tiny_cfg());
        assert!(model.num_weights() > 1000);
        assert_eq!(model.name(), "LogCL");
    }

    #[test]
    fn forward_shapes_and_contrast_presence() {
        let ds = tiny_ds();
        let mut model = LogCl::new(&ds, tiny_cfg());
        let snaps = ds.snapshots();
        let t = 10;
        let mut history = HistoryIndex::new();
        for s in &snaps[..t] {
            history.advance(s);
        }
        let queries: Vec<Quad> = ds
            .train
            .iter()
            .filter(|q| q.t == t)
            .take(5)
            .copied()
            .collect();
        assert!(!queries.is_empty());
        let shared = model.encode(&snaps, t, true);
        let out = model.forward_queries(&shared, &history, &queries, true);
        assert_eq!(out.logits.shape(), vec![queries.len(), ds.num_entities]);
        assert!(
            out.contrast.is_some(),
            "full model must produce L_cl in training"
        );
        // Eval mode: no contrast.
        let out_eval = model.forward_queries(&shared, &history, &queries, false);
        assert!(out_eval.contrast.is_none());
    }

    #[test]
    fn ablations_change_parameter_sets() {
        let ds = tiny_ds();
        let full = LogCl::new(&ds, tiny_cfg());
        let no_global = LogCl::new(&ds, tiny_cfg().without_global());
        let no_cl = LogCl::new(&ds, tiny_cfg().without_contrast());
        assert!(no_global.num_weights() < full.num_weights());
        assert!(no_cl.num_weights() < full.num_weights());
    }

    #[test]
    fn variant_forward_paths_run() {
        let ds = tiny_ds();
        let snaps = ds.snapshots();
        let t = 8;
        let mut history = HistoryIndex::new();
        for s in &snaps[..t] {
            history.advance(s);
        }
        let queries: Vec<Quad> = ds
            .train
            .iter()
            .filter(|q| q.t == t)
            .take(3)
            .copied()
            .collect();
        for cfg in [
            tiny_cfg().without_local(),
            tiny_cfg().without_global(),
            tiny_cfg().without_entity_attention(),
            tiny_cfg().without_contrast(),
        ] {
            let mut model = LogCl::new(&ds, cfg);
            let scores = model.score_queries(&snaps, &history, &queries, t);
            assert_eq!(scores.len(), queries.len());
            assert!(scores[0].iter().all(|v| v.is_finite()), "{}", model.name());
        }
    }

    #[test]
    fn noise_perturbs_scores() {
        let ds = tiny_ds();
        let snaps = ds.snapshots();
        let t = 8;
        let mut history = HistoryIndex::new();
        for s in &snaps[..t] {
            history.advance(s);
        }
        let queries: Vec<Quad> = ds
            .train
            .iter()
            .filter(|q| q.t == t)
            .take(2)
            .copied()
            .collect();
        let mut clean = LogCl::new(&ds, tiny_cfg());
        let mut noisy = LogCl::new(
            &ds,
            LogClConfig {
                noise: logcl_tkg::NoiseSpec::with_std(1.0),
                ..tiny_cfg()
            },
        );
        let a = clean.score_queries(&snaps, &history, &queries, t);
        let b = noisy.score_queries(&snaps, &history, &queries, t);
        assert_ne!(a[0], b[0], "noise must perturb the forward pass");
    }

    #[test]
    fn static_graph_option_changes_model() {
        let ds = tiny_ds();
        let plain = LogCl::new(&ds, tiny_cfg());
        let with_static = LogCl::new(
            &ds,
            LogClConfig {
                use_static: true,
                ..tiny_cfg()
            },
        );
        assert!(
            with_static.num_weights() > plain.num_weights(),
            "static module must add parameters"
        );
        // And it must actually run + train.
        let mut model = with_static;
        let snaps = ds.snapshots();
        let t = 8;
        let mut history = HistoryIndex::new();
        for s in &snaps[..t] {
            history.advance(s);
        }
        let queries: Vec<Quad> = ds
            .train
            .iter()
            .filter(|q| q.t == t)
            .take(3)
            .copied()
            .collect();
        let shared = model.encode(&snaps, t, true);
        let out = model.forward_queries(&shared, &history, &queries, true);
        out.logits.sum().backward();
        let sg_param = model
            .params
            .get("static.gnn.w1")
            .expect("static params registered");
        assert!(
            sg_param.grad().is_some(),
            "static module must receive gradients"
        );
    }

    #[test]
    fn training_step_reduces_loss_on_repeated_batch() {
        let ds = tiny_ds();
        let mut model = LogCl::new(&ds, tiny_cfg());
        let snaps = ds.snapshots();
        let t = 12;
        let mut history = HistoryIndex::new();
        for s in &snaps[..t] {
            history.advance(s);
        }
        let queries: Vec<Quad> = ds
            .train
            .iter()
            .filter(|q| q.t == t)
            .take(8)
            .copied()
            .collect();
        let targets: Vec<usize> = queries.iter().map(|q| q.o).collect();
        let mut opt = Adam::new(&model.params, 2e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..8 {
            let shared = model.encode(&snaps, t, true);
            let out = model.forward_queries(&shared, &history, &queries, true);
            let mut loss = out.logits.cross_entropy(&targets);
            if let Some(cl) = out.contrast {
                loss = loss.add(&cl);
            }
            last = loss.item();
            first.get_or_insert(last);
            loss.backward();
            opt.step();
        }
        assert!(
            last < first.unwrap(),
            "loss must decrease: {} -> {last}",
            first.unwrap()
        );
    }
}
