//! Readable top-k predictions — the Table VI case-study machinery.

use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use crate::api::{EvalContext, TkgModel};

/// One ranked prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Candidate entity id.
    pub entity: usize,
    /// Candidate entity name.
    pub name: String,
    /// Softmax probability over all candidates.
    pub probability: f32,
}

/// Asks `model` the query `(s, r, ?, t)` and returns the top-`k` candidate
/// objects with softmax probabilities, like the paper's case-study tables.
pub fn predict_topk(
    model: &mut dyn TkgModel,
    ds: &TkgDataset,
    s: usize,
    r: usize,
    t: usize,
    k: usize,
) -> Vec<Prediction> {
    assert!(s < ds.num_entities, "subject out of range");
    assert!(r < ds.num_rels_with_inverse(), "relation out of range");
    let snapshots = ds.snapshots();
    assert!(t <= snapshots.len(), "time beyond dataset horizon");
    let mut history = HistoryIndex::new();
    for snap in &snapshots[..t] {
        history.advance(snap);
    }
    let ctx = EvalContext {
        ds,
        snapshots: &snapshots,
        history: &history,
        t,
    };
    let query = Quad::new(s, r, 0, t); // object unused for scoring
    let scores = model.score(&ctx, &[query]).remove(0);

    // Softmax for readable probabilities.
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&x| (x - max).exp()).collect();
    let z: f32 = exps.iter().sum();

    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx.into_iter()
        .map(|e| Prediction {
            entity: e,
            name: ds.entity_name(e),
            probability: exps[e] / z,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::test_support::ConstModel;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn topk_is_sorted_and_probabilistic() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 3,
            calls: 0,
        };
        let t = ds.test[0].t;
        let preds = predict_topk(&mut model, &ds, 0, 0, t, 5);
        assert_eq!(preds.len(), 5);
        assert_eq!(preds[0].entity, 3, "favourite entity must rank first");
        assert!(preds
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
        let total: f32 = preds.iter().map(|p| p.probability).sum();
        assert!(total <= 1.0 + 1e-5);
        assert!(!preds[0].name.is_empty());
    }

    #[test]
    #[should_panic(expected = "subject out of range")]
    fn rejects_bad_subject() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 0,
            calls: 0,
        };
        predict_topk(&mut model, &ds, ds.num_entities + 5, 0, 10, 3);
    }
}
