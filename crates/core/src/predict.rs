//! Readable top-k predictions — the Table VI case-study machinery.

use logcl_tkg::quad::Quad;
use logcl_tkg::{HistoryIndex, TkgDataset};

use crate::api::{EvalContext, TkgModel};
use crate::model::LogCl;

/// One ranked prediction.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Candidate entity id.
    pub entity: usize,
    /// Candidate entity name.
    pub name: String,
    /// Softmax probability over all candidates.
    pub probability: f32,
    /// Raw decoder logit (pre-softmax). Unlike the probability, the raw
    /// score is bit-identical across entity-sharded and single-node
    /// scoring, so it is what scatter-gather merges rank by.
    pub score: f32,
}

/// A malformed query that cannot be scored against `ds`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictError {
    /// Subject id ≥ `|E|`.
    SubjectOutOfRange {
        /// Offending subject id.
        s: usize,
        /// Entity vocabulary size.
        num_entities: usize,
    },
    /// Relation id ≥ `2 |R|` (inverse-closed vocabulary).
    RelationOutOfRange {
        /// Offending relation id.
        r: usize,
        /// Relation vocabulary size including inverses.
        num_rels_with_inverse: usize,
    },
    /// Query time past the dataset horizon (`t > |T|`; `t = |T|` is the
    /// one-step-ahead forecast over the full history).
    TimeBeyondHorizon {
        /// Offending timestamp.
        t: usize,
        /// Number of snapshots in the dataset.
        horizon: usize,
    },
}

impl std::fmt::Display for PredictError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::SubjectOutOfRange { s, num_entities } => {
                write!(f, "subject out of range: id {s} >= |E| = {num_entities}")
            }
            Self::RelationOutOfRange {
                r,
                num_rels_with_inverse,
            } => write!(
                f,
                "relation out of range: id {r} >= 2|R| = {num_rels_with_inverse}"
            ),
            Self::TimeBeyondHorizon { t, horizon } => {
                write!(f, "time beyond dataset horizon: t = {t} > |T| = {horizon}")
            }
        }
    }
}

impl std::error::Error for PredictError {}

/// Checks that `(s, r, ?, t)` is answerable against `ds`'s vocabulary and
/// horizon. The serving layer calls this before queueing work so a
/// malformed request can never reach (and panic) the model.
pub fn validate_query(ds: &TkgDataset, s: usize, r: usize, t: usize) -> Result<(), PredictError> {
    if s >= ds.num_entities {
        return Err(PredictError::SubjectOutOfRange {
            s,
            num_entities: ds.num_entities,
        });
    }
    if r >= ds.num_rels_with_inverse() {
        return Err(PredictError::RelationOutOfRange {
            r,
            num_rels_with_inverse: ds.num_rels_with_inverse(),
        });
    }
    if t > ds.num_times {
        return Err(PredictError::TimeBeyondHorizon {
            t,
            horizon: ds.num_times,
        });
    }
    Ok(())
}

/// Turns one `|E|`-long score vector into named top-`k` predictions with
/// softmax probabilities. Shared by [`predict_topk`] and the serving layer
/// so batched responses are bit-identical to single-query ones.
pub fn topk_from_scores(ds: &TkgDataset, scores: &[f32], k: usize) -> Vec<Prediction> {
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = scores.iter().map(|&x| (x - max).exp()).collect();
    let z: f32 = exps.iter().sum();

    // Ranking order: score descending, entity id ascending on ties — the
    // explicit form of what the stable sort already guaranteed, and the
    // contract the sharded scatter-gather merge replicates bit-for-bit
    // (see `crate::shard::rank_order`).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.cmp(&b))
    });
    idx.truncate(k);
    idx.into_iter()
        .map(|e| Prediction {
            entity: e,
            name: ds.entity_name(e),
            probability: exps[e] / z,
            score: scores[e],
        })
        .collect()
}

/// Asks `model` the query `(s, r, ?, t)` and returns the top-`k` candidate
/// objects with softmax probabilities, like the paper's case-study tables.
/// Malformed queries come back as [`PredictError`] — this module has no
/// panicking path.
pub fn predict_topk(
    model: &mut dyn TkgModel,
    ds: &TkgDataset,
    s: usize,
    r: usize,
    t: usize,
    k: usize,
) -> Result<Vec<Prediction>, PredictError> {
    validate_query(ds, s, r, t)?;
    let snapshots = ds.snapshots();
    let mut history = HistoryIndex::new();
    for snap in &snapshots[..t] {
        history.advance(snap);
    }
    let ctx = EvalContext {
        ds,
        snapshots: &snapshots,
        history: &history,
        t,
    };
    let query = Quad::new(s, r, 0, t); // object unused for scoring
    let scores = model.score(&ctx, &[query]).remove(0);
    Ok(topk_from_scores(ds, &scores, k))
}

/// The streaming counterpart of [`predict_topk`] for the one-step forecast
/// `(s, r, ?, |T|)`: builds a fresh [`crate::local_encoder::EncoderState`]
/// over the full history and answers from it, exactly as the serving head
/// path does from its incrementally maintained state. Because a rebuilt
/// state is bit-identical to an incrementally advanced one, this function
/// is the from-scratch reference the serving integration tests pin
/// `/predict`-at-the-horizon against.
pub fn predict_topk_stream(
    model: &mut LogCl,
    ds: &TkgDataset,
    s: usize,
    r: usize,
    k: usize,
) -> Result<Vec<Prediction>, PredictError> {
    validate_query(ds, s, r, ds.num_times)?;
    let snapshots = ds.snapshots();
    let state = model.init_encoder_state(&snapshots);
    let history = HistoryIndex::build(&snapshots);
    let shared = model.shared_from_state(&state);
    let query = Quad::new(s, r, 0, ds.num_times); // object unused for scoring
    let out = model.forward_queries(&shared, &history, &[query], false);
    let scores = out.logits.to_tensor().row(0).to_vec();
    Ok(topk_from_scores(ds, &scores, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::test_support::ConstModel;
    use logcl_tkg::SyntheticPreset;

    #[test]
    fn topk_is_sorted_and_probabilistic() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 3,
            calls: 0,
        };
        let t = ds.test[0].t;
        let preds = predict_topk(&mut model, &ds, 0, 0, t, 5).unwrap();
        assert_eq!(preds.len(), 5);
        assert_eq!(preds[0].entity, 3, "favourite entity must rank first");
        assert!(preds
            .windows(2)
            .all(|w| w[0].probability >= w[1].probability));
        let total: f32 = preds.iter().map(|p| p.probability).sum();
        assert!(total <= 1.0 + 1e-5);
        assert!(!preds[0].name.is_empty());
    }

    #[test]
    fn reports_errors_instead_of_panicking() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let mut model = ConstModel {
            favourite: 0,
            calls: 0,
        };
        let err = predict_topk(&mut model, &ds, ds.num_entities, 0, 5, 3).unwrap_err();
        assert!(matches!(err, PredictError::SubjectOutOfRange { .. }));
        let err = predict_topk(&mut model, &ds, 0, ds.num_rels_with_inverse(), 5, 3).unwrap_err();
        assert!(matches!(err, PredictError::RelationOutOfRange { .. }));
        let err = predict_topk(&mut model, &ds, 0, 0, ds.num_times + 1, 3).unwrap_err();
        assert!(matches!(err, PredictError::TimeBeyondHorizon { .. }));
        assert_eq!(model.calls, 0, "invalid queries must never reach the model");
        // The boundary forecast t == |T| is legal.
        let preds = predict_topk(&mut model, &ds, 0, 0, ds.num_times, 3).unwrap();
        assert_eq!(preds.len(), 3);
    }

    #[test]
    fn streaming_forecast_is_deterministic_and_validated() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let cfg = crate::config::LogClConfig {
            dim: 16,
            time_bank: 4,
            channels: 6,
            m: 3,
            ..Default::default()
        };
        let mut model = LogCl::new(&ds, cfg);
        let a = predict_topk_stream(&mut model, &ds, 0, 0, 5).unwrap();
        let b = predict_topk_stream(&mut model, &ds, 0, 0, 5).unwrap();
        assert_eq!(a, b, "state rebuild must be a pure function");
        assert_eq!(a.len(), 5);
        assert!(a.windows(2).all(|w| w[0].probability >= w[1].probability));
        let err = predict_topk_stream(&mut model, &ds, ds.num_entities, 0, 5).unwrap_err();
        assert!(matches!(err, PredictError::SubjectOutOfRange { .. }));
    }

    #[test]
    fn validate_query_messages_are_operator_readable() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        assert!(validate_query(&ds, 0, 0, 0).is_ok());
        let msg = validate_query(&ds, ds.num_entities + 1, 0, 0)
            .unwrap_err()
            .to_string();
        assert!(msg.contains("subject out of range"), "{msg}");
    }
}
