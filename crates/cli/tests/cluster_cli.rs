//! Process-level cluster test: real `logcl serve --shard` worker processes
//! fronted by a real `logcl router` process-peer (in-test router would not
//! prove the CLI wiring), with a genuine kill -9 mid-load. Asserts the
//! degradation contract (partial 200s with Retry-After, never 5xx storms)
//! and recovery to full coverage once the worker is restarted on its port.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde_json::Value;

const SHARDS: usize = 3;

/// Kills every child on drop so a failing assertion never leaks processes.
struct Procs(Vec<Child>);

impl Drop for Procs {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logcl-cluster-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn logcl() -> Command {
    Command::new(env!("CARGO_BIN_EXE_logcl"))
}

/// Common model-shape flags — train and serve must agree or the checkpoint
/// fingerprint check rejects the load.
const SHAPE: &[&str] = &["--dim", "16", "--m", "3", "--seed", "7"];

/// Spawns a `logcl` subcommand with piped stdout and waits for its
/// "listening on http://..." line; a sidecar thread keeps draining stdout
/// afterwards so the child can never block on a full pipe.
fn spawn_listening(args: &[String]) -> (Child, SocketAddr) {
    let mut child = logcl()
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn logcl");
    let stdout = child.stdout.take().expect("piped stdout");
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut addr_sent = false;
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if !addr_sent {
                if let Some(rest) = line.strip_prefix("listening on http://") {
                    let _ = tx.send(rest.trim().to_string());
                    addr_sent = true;
                }
            }
        }
    });
    let addr: SocketAddr = rx
        .recv_timeout(Duration::from_secs(300))
        .expect("child never printed its listening address")
        .parse()
        .expect("parseable listen address");
    (child, addr)
}

type Response = (u16, Vec<(String, String)>, String);

fn request_full(addr: SocketAddr, method: &str, path: &str, body: &str) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let text = String::from_utf8(raw).ok()?;
    let status: u16 = text
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())?;
    let (head, body) = text
        .split_once("\r\n\r\n")
        .map(|(h, b)| (h.to_string(), b.to_string()))
        .unwrap_or_default();
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            Some((name.trim().to_ascii_lowercase(), value.trim().to_string()))
        })
        .collect();
    Some((status, headers, body))
}

fn header_of<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    let want = name.to_ascii_lowercase();
    headers
        .iter()
        .find(|(n, _)| *n == want)
        .map(|(_, v)| v.as_str())
}

fn json(body: &str) -> Value {
    serde_json::from_str(body).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn worker_args(data: &str, model: &str, wal: &Path, shard: usize, addr: &str) -> Vec<String> {
    let mut args: Vec<String> = ["serve", "--data", data, "--load", model, "--addr", addr]
        .iter()
        .map(|s| s.to_string())
        .collect();
    args.extend(SHAPE.iter().map(|s| s.to_string()));
    args.extend([
        "--shard".to_string(),
        format!("{shard}/{SHARDS}"),
        "--wal-dir".to_string(),
        wal.to_string_lossy().to_string(),
        "--linger-ms".to_string(),
        "0".to_string(),
    ]);
    args
}

#[test]
fn router_and_workers_survive_kill_dash_nine() {
    let dir = scratch("e2e");
    let data = dir.join("data").to_string_lossy().to_string();
    let model = dir.join("model.json").to_string_lossy().to_string();

    // Dataset + tiny checkpoint, via the real CLI.
    let out = logcl()
        .args([
            "generate", "--preset", "icews14", "--scale", "0.1", "--out", &data,
        ])
        .output()
        .expect("generate runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = logcl()
        .args(["train", "--data", &data, "--epochs", "1", "--save", &model])
        .args(SHAPE)
        .output()
        .expect("train runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Three worker processes (ephemeral ports) + the router process-peer.
    let mut procs = Procs(Vec::new());
    let mut worker_addrs = Vec::new();
    let wals: Vec<PathBuf> = (0..SHARDS).map(|i| dir.join(format!("wal-{i}"))).collect();
    for (i, wal) in wals.iter().enumerate() {
        let (child, addr) = spawn_listening(&worker_args(&data, &model, wal, i, "127.0.0.1:0"));
        procs.0.push(child);
        worker_addrs.push(addr);
    }
    let shards_spec = worker_addrs
        .iter()
        .map(SocketAddr::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let router_args: Vec<String> = [
        "router",
        "--shards",
        &shards_spec,
        "--addr",
        "127.0.0.1:0",
        "--retries",
        "1",
        "--retry-base-ms",
        "5",
        "--probe-interval-ms",
        "50",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (router_child, router) = spawn_listening(&router_args);
    procs.0.push(router_child);

    // Healthy cluster: full-coverage answers and an exactly-once ingest.
    let (status, _, body) = request_full(
        router,
        "POST",
        "/predict",
        r#"{"subject": 0, "relation": 0, "k": 5}"#,
    )
    .expect("router reachable");
    assert_eq!(status, 200, "{body}");
    let reply = json(&body);
    assert_eq!(reply.get("coverage").and_then(Value::as_f64), Some(1.0));
    assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(false));

    let horizon = {
        let (status, _, body) =
            request_full(worker_addrs[0], "GET", "/healthz", "").expect("worker healthz");
        assert_eq!(status, 200);
        json(&body).get("horizon").and_then(Value::as_u64).unwrap()
    };
    let (status, _, body) = request_full(
        router,
        "POST",
        "/ingest",
        &format!(r#"{{"time": {horizon}, "facts": [[1, 0, 2]]}}"#),
    )
    .expect("router reachable");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        json(&body).get("acked").and_then(Value::as_u64),
        Some(SHARDS as u64)
    );

    // kill -9 worker 2 mid-load: background clients keep hammering the
    // router while the process dies. Every answer must stay a 200 — the
    // storm the router must not produce is 5xx.
    let stop = Arc::new(AtomicBool::new(false));
    let load: Vec<_> = (0..3)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut statuses = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    if let Some((status, _, _)) = request_full(
                        router,
                        "POST",
                        "/predict",
                        r#"{"subject": 1, "relation": 0, "k": 5}"#,
                    ) {
                        statuses.push(status);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                statuses
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    procs.0[2].kill().expect("SIGKILL worker 2");
    let _ = procs.0[2].wait();

    // The router settles into partial-coverage answers with Retry-After.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, headers, body) = request_full(
            router,
            "POST",
            "/predict",
            r#"{"subject": 0, "relation": 0, "k": 5}"#,
        )
        .expect("router must stay reachable");
        assert_eq!(status, 200, "never 5xx after a worker death: {body}");
        let reply = json(&body);
        let coverage = reply.get("coverage").and_then(Value::as_f64).unwrap();
        if coverage < 1.0 {
            assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(true));
            assert!(coverage > 0.5, "coverage ~2/3, got {coverage}");
            assert_eq!(header_of(&headers, "x-logcl-degradation"), Some("partial"));
            assert!(
                header_of(&headers, "retry-after").is_some(),
                "partial answers must advertise Retry-After"
            );
            break;
        }
        assert!(Instant::now() < deadline, "router never noticed the death");
        std::thread::sleep(Duration::from_millis(20));
    }

    stop.store(true, Ordering::Relaxed);
    for h in load {
        let statuses = h.join().expect("load thread");
        assert!(
            statuses.iter().all(|&s| s == 200),
            "mid-kill load must see only 200s, got {statuses:?}"
        );
    }

    // Restart the worker on its old port; coverage must return to 1.0.
    let (reborn, _) = spawn_listening(&worker_args(
        &data,
        &model,
        &wals[2],
        2,
        &worker_addrs[2].to_string(),
    ));
    procs.0.push(reborn);
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (status, _, body) = request_full(
            router,
            "POST",
            "/predict",
            r#"{"subject": 0, "relation": 0, "k": 5}"#,
        )
        .expect("router reachable");
        assert_eq!(status, 200, "{body}");
        let reply = json(&body);
        if reply.get("coverage").and_then(Value::as_f64) == Some(1.0) {
            assert_eq!(reply.get("degraded").and_then(Value::as_bool), Some(false));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "coverage never recovered after worker restart: {reply}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    drop(procs);
    std::fs::remove_dir_all(&dir).ok();
}
