//! End-to-end exit-code contract of `logcl loadgen`'s perf ratchet: a
//! fault-injected slowdown must drive the process to a non-zero exit.
//!
//! Gated on the `fault-inject` feature (which forwards to the server's
//! deterministic-latency knob); run with
//! `cargo test -p logcl-cli --features fault-inject --test loadgen_cli`.
#![cfg(feature = "fault-inject")]

use std::process::Command;

const COMMON_FLAGS: &[&str] = &[
    "loadgen",
    "--rps",
    "25",
    "--duration-ms",
    "1000",
    "--workers",
    "8",
    "--predict-pct",
    "100",
    "--req-deadline-ms",
    "0",
    "--seed",
    "11",
];

fn logcl(extra: &[&str], delay_us: Option<&str>) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_logcl"));
    cmd.args(COMMON_FLAGS).args(extra);
    // The knob only exists in fault-inject builds; unset means healthy.
    cmd.env_remove("LOGCL_FAULT_COMPUTE_DELAY_US");
    if let Some(us) = delay_us {
        cmd.env("LOGCL_FAULT_COMPUTE_DELAY_US", us);
    }
    cmd.output().expect("logcl binary must run")
}

#[test]
fn ratchet_regression_exits_non_zero() {
    let dir = std::env::temp_dir().join("logcl-loadgen-cli-ratchet");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("base.json").to_string_lossy().to_string();
    let slow = dir.join("slow.json").to_string_lossy().to_string();

    // 1. Healthy run writes the baseline.
    let out = logcl(&["--bench-out", &base], None);
    assert!(
        out.status.success(),
        "baseline run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 2. Same trace against a server slowed ~60ms/batch: the ratchet must
    //    fail the process (exit code 2 = CLI error path).
    let out = logcl(&["--bench-out", &slow, "--baseline", &base], Some("60000"));
    assert!(
        !out.status.success(),
        "slowed run must fail the ratchet: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ratchet"), "stderr: {stderr}");
    assert!(stderr.contains("latency"), "stderr: {stderr}");

    // 3. --ratchet-report downgrades the same regression to a warning.
    let out = logcl(
        &[
            "--bench-out",
            &slow,
            "--baseline",
            &base,
            "--ratchet-report",
        ],
        Some("60000"),
    );
    assert!(
        out.status.success(),
        "report-only mode must not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("report-only"), "stdout: {stdout}");

    // 4. A healthy re-run passes the ratchet it wrote.
    let out = logcl(&["--bench-out", &slow, "--baseline", &base], None);
    assert!(
        out.status.success(),
        "healthy run must pass its own baseline: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(dir).ok();
}
