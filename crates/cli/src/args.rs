//! Flag parsing for the `logcl` CLI (kept dependency-free).

use logcl_tkg::SyntheticPreset;

/// Usage text shown by `logcl help` and on errors.
pub const USAGE: &str = "\
usage: logcl <command> [flags]

commands:
  generate   write a synthetic benchmark as TSV        (--preset, --scale, --out)
  info       print dataset statistics                  (--data | --preset)
  train      train a model and optionally save it      (--data | --preset, --model,
                                                        --epochs, --dim, --m, --lr,
                                                        --seed, --threads, --save,
                                                        --checkpoint, --checkpoint-every,
                                                        --resume, --max-rollbacks)
  eval       evaluate a trained or fresh model         (same as train, plus --load,
                                                        --online, --phase fp|sp|both)
  predict    top-k forecast for one query              (--load, --subject, --relation,
                                                        --time, --topk, --inverse)
  serve      HTTP inference server                     (--data | --preset, --load,
                                                        --addr, --threads, --http-threads,
                                                        --linger-ms, --max-batch, --fused,
                                                        --deadline-ms, --max-deadline-ms,
                                                        --write-timeout-ms, --brownout-ms,
                                                        --shed-ms, --brownout-k,
                                                        --max-inflight, --wal-dir,
                                                        --wal-compact-every,
                                                        --no-durability,
                                                        --online-steps, --shard)
  router     scatter-gather router over sharded serve  (--shards, --addr, --topk,
             workers                                    --deadline-ms,
                                                        --max-deadline-ms,
                                                        --retries, --retry-base-ms,
                                                        --hedge-after-ms,
                                                        --probe-interval-ms)
  loadgen    open-loop load harness for serve          (--rps, --duration-ms,
                                                        --arrival, --predict-pct,
                                                        --req-deadline-ms, --workers,
                                                        --target, --bench-out,
                                                        --baseline, --noise-pct,
                                                        --capacity, --slo-p99-ms,
                                                        --freshness, --validate)
  help       this text

flags:
  --data DIR        dataset directory (train/valid/test.txt TSV)
  --preset NAME     synthetic preset: icews14 | icews18 | icews0515 | gdelt
  --scale S         preset scale in (0, 1]           [default 1.0]
  --out DIR         output directory for generate
  --model NAME      logcl | regcn | cygnet | tirgn | cen | cenet | distmult |
                    convtranse | ttranse                [default logcl]
  --epochs N        training epochs                     [default 20]
  --dim D           embedding width                     [default 64]
  --m N             local history window                [default 4]
  --lr F            learning rate                       [default 1e-3]
  --seed K          RNG seed                            [default 42]
  --save FILE       write the trained parameters (JSON) (logcl only)
  --load FILE       read parameters before eval/predict (logcl only)
  --checkpoint FILE durable training checkpoint path    (logcl only)
  --checkpoint-every N
                    also checkpoint every N epochs      [default 1; 0 = only on
                                                         best-valid and at the end]
  --resume FILE     resume training from a checkpoint written by --checkpoint
                    (flags must match the interrupted run; the run then finishes
                    with bit-identical results)
  --max-rollbacks K divergence rollbacks before abort   [default 3]
  --online          Fig. 10 online adaptation during eval
  --phase P         fp | sp | both                      [default both]
  --subject NAME|ID --relation NAME|ID --time T --topk K --inverse
  --addr HOST:PORT  serve bind address                  [default 127.0.0.1:7878]
  --threads N       compute threads for the kernel backend (1 = serial;
                    results are bit-identical at any count)
                                                        [default: all cores]
  --http-threads N  serve connection handler threads    [default 4]
  --linger-ms MS    micro-batch linger window           [default 2]
  --max-batch N     micro-batch size cap                [default 32]
  --fused           fuse each batch into one forward pass (approximate)
  --deadline-ms MS  default per-request deadline when the client sends no
                    X-LogCL-Deadline-Ms header          [default 30000]
  --max-deadline-ms MS
                    ceiling clamped onto client deadlines [default 120000]
  --write-timeout-ms MS
                    per-connection socket write timeout [default 10000]
  --brownout-ms MS  queue sojourn entering the Brownout tier (capped top-k,
                    local-only decode)                  [default 50]
  --shed-ms MS      queue sojourn entering the Shed tier (503 + Retry-After
                    on /predict; /healthz and /metrics never shed)
                                                        [default 250]
  --brownout-k N    effective top-k cap in Brownout     [default 3]
  --max-inflight N  concurrent in-flight /predict cap   [default 256]
  --wal-dir DIR     durable-ingest WAL + snapshot directory; every acked
                    /ingest is fsynced and replayed on restart
                                                        [default logcl-wal]
  --wal-compact-every N
                    snapshot-compact the WAL after N logged ingests
                    (0 = never compact)                 [default 64]
  --no-durability   disable the ingest WAL (accepted facts are lost on crash)
  --online-steps N  max online fine-tuning steps per update:true ingest
                    (0 disables online adaptation)      [default 1]
  --shard I/N       serve as entity shard I of an N-way cluster: only
                    entities in this worker's range are scored, and /predict
                    answers carry the shard merge metadata a router needs
  --shards SPEC     router worker topology: comma-separated shards, each
                    host:port with optional +replica addresses, e.g.
                    127.0.0.1:7001+127.0.0.1:7004,127.0.0.1:7002
  --retries N       router retries per shard after the first attempt fails
                    (each against the next-preferred replica) [default 2]
  --retry-base-ms MS
                    router backoff base; retry n waits ~MS*2^n, jittered
                                                        [default 20]
  --hedge-after-ms MS
                    launch a hedged second predict attempt when a shard has
                    been silent this long (0 disables)  [default 0]
  --probe-interval-ms MS
                    router health-probe interval for non-Up workers
                                                        [default 250]
  --rps F           loadgen offered rate, requests/s    [default 50]
  --duration-ms MS  loadgen trace length                [default 3000]
  --arrival A       constant | poisson | burst[:PERIOD_MS:DUTY_PCT:PEAK_MULT]
                                                        [default poisson]
  --predict-pct P   predict share of the mix, 0-100     [default 90]
  --req-deadline-ms MS
                    X-LogCL-Deadline-Ms budget per request; 0 sends none
                                                        [default 250]
  --deadline-jitter-pct P
                    uniform deadline jitter, +/- percent [default 50]
  --workers N       loadgen client threads              [default 16]
  --target ADDR     drive an already-running server instead of booting one
  --bench-out FILE  benchmark report path               [default BENCH_serve.json]
  --baseline FILE   committed report to ratchet against (regressions beyond
                    the noise band exit non-zero)
  --ratchet-report  report ratchet violations without failing (for noisy
                    shared runners)
  --noise-pct P     ratchet latency noise band, percent [default 25]
  --capacity        binary-search capacity at the p99 SLO after the main run
  --slo-p99-ms MS   p99 objective for --capacity        [default 50]
  --slo-max-rps F   capacity search ceiling             [default 1000]
  --freshness       run the ingest-to-visible freshness scenario instead of
                    the latency trace (requires a durable target booted by
                    loadgen itself)
  --freshness-rounds N
                    ingest->predict rounds per freshness run [default 8]
  --freshness-slo-ms MS
                    ingest-to-visible latency objective  [default 1000]
  --validate FILE   validate a bench report against the schema and exit";

/// Parsed CLI options (superset across commands).
#[derive(Debug, Clone)]
pub struct CliOptions {
    pub data: Option<String>,
    pub preset: Option<SyntheticPreset>,
    pub scale: f64,
    pub out: Option<String>,
    pub model: String,
    pub epochs: usize,
    pub dim: usize,
    pub m: usize,
    pub lr: f32,
    pub seed: u64,
    pub save: Option<String>,
    pub load: Option<String>,
    pub checkpoint: Option<String>,
    pub checkpoint_every: usize,
    pub resume: Option<String>,
    pub max_rollbacks: usize,
    pub online: bool,
    pub detailed: bool,
    pub phase: String,
    pub subject: Option<String>,
    pub relation: Option<String>,
    pub time: Option<usize>,
    pub topk: usize,
    pub inverse: bool,
    pub addr: String,
    /// Kernel-backend compute threads (`0` = auto, `1` = serial).
    pub threads: usize,
    /// HTTP connection handler threads for `serve`.
    pub http_threads: usize,
    pub linger_ms: u64,
    pub max_batch: usize,
    pub fused: bool,
    /// Default per-request deadline (ms) without a client header.
    pub deadline_ms: u64,
    /// Ceiling (ms) clamped onto client-supplied deadlines.
    pub max_deadline_ms: u64,
    /// Socket write timeout (ms).
    pub write_timeout_ms: u64,
    /// Queue sojourn (ms) entering the Brownout tier.
    pub brownout_ms: u64,
    /// Queue sojourn (ms) entering the Shed tier.
    pub shed_ms: u64,
    /// Effective top-k cap while in Brownout.
    pub brownout_k: usize,
    /// Concurrent in-flight `/predict` cap.
    pub max_inflight: usize,
    /// Durable-ingest WAL + snapshot directory for `serve`.
    pub wal_dir: String,
    /// Snapshot-compact the WAL after this many logged ingests (0 = never).
    pub wal_compact_every: u64,
    /// Disable the ingest WAL entirely.
    pub no_durability: bool,
    /// Max online fine-tuning steps per `update:true` ingest (serve).
    pub online_steps: usize,
    /// Entity shard assignment `I/N` for `serve` (cluster worker mode).
    pub shard: Option<String>,
    /// Router worker topology spec (see `--shards` in the usage text).
    pub shards: Option<String>,
    /// Router retries per shard after the first attempt fails.
    pub retries: u32,
    /// Router backoff base (ms) between retries.
    pub retry_base_ms: u64,
    /// Router predict-hedging delay (ms); 0 disables hedging.
    pub hedge_after_ms: u64,
    /// Router health-probe interval (ms).
    pub probe_interval_ms: u64,
    /// Loadgen offered rate, requests/second.
    pub rps: f64,
    /// Loadgen trace length (ms).
    pub duration_ms: u64,
    /// Loadgen arrival process spec.
    pub arrival: String,
    /// Loadgen predict share of the mix (0-100).
    pub predict_pct: u8,
    /// Loadgen per-request deadline budget (ms); 0 sends no header.
    pub req_deadline_ms: u64,
    /// Loadgen deadline jitter, ± percent of the base budget.
    pub deadline_jitter_pct: u8,
    /// Loadgen client worker threads.
    pub workers: usize,
    /// Loadgen external target (`host:port`); boots a server when absent.
    pub target: Option<String>,
    /// Loadgen benchmark report output path.
    pub bench_out: String,
    /// Loadgen baseline report to ratchet against.
    pub baseline: Option<String>,
    /// Report ratchet violations without failing.
    pub ratchet_report: bool,
    /// Ratchet latency noise band, percent.
    pub noise_pct: u8,
    /// Run the capacity-at-SLO search after the main trace.
    pub capacity: bool,
    /// p99 objective for the capacity search (ms).
    pub slo_p99_ms: f64,
    /// Capacity search rate ceiling (requests/second).
    pub slo_max_rps: f64,
    /// Run the loadgen freshness scenario instead of the latency trace.
    pub freshness: bool,
    /// Ingest→predict rounds per freshness run.
    pub freshness_rounds: usize,
    /// Ingest-to-visible latency objective (ms) for the freshness scenario.
    pub freshness_slo_ms: u64,
    /// Validate a bench report file and exit.
    pub validate: Option<String>,
}

impl Default for CliOptions {
    fn default() -> Self {
        Self {
            data: None,
            preset: None,
            scale: 1.0,
            out: None,
            model: "logcl".into(),
            epochs: 20,
            dim: 64,
            m: 4,
            lr: 1e-3,
            seed: 42,
            save: None,
            load: None,
            checkpoint: None,
            checkpoint_every: 1,
            resume: None,
            max_rollbacks: 3,
            online: false,
            detailed: false,
            phase: "both".into(),
            subject: None,
            relation: None,
            time: None,
            topk: 5,
            inverse: false,
            addr: "127.0.0.1:7878".into(),
            threads: 0,
            http_threads: 4,
            linger_ms: 2,
            max_batch: 32,
            fused: false,
            deadline_ms: 30_000,
            max_deadline_ms: 120_000,
            write_timeout_ms: 10_000,
            brownout_ms: 50,
            shed_ms: 250,
            brownout_k: 3,
            max_inflight: 256,
            wal_dir: "logcl-wal".into(),
            wal_compact_every: 64,
            no_durability: false,
            online_steps: 1,
            shard: None,
            shards: None,
            retries: 2,
            retry_base_ms: 20,
            hedge_after_ms: 0,
            probe_interval_ms: 250,
            rps: 50.0,
            duration_ms: 3_000,
            arrival: "poisson".into(),
            predict_pct: 90,
            req_deadline_ms: 250,
            deadline_jitter_pct: 50,
            workers: 16,
            target: None,
            bench_out: "BENCH_serve.json".into(),
            baseline: None,
            ratchet_report: false,
            noise_pct: 25,
            capacity: false,
            slo_p99_ms: 50.0,
            slo_max_rps: 1_000.0,
            freshness: false,
            freshness_rounds: 8,
            freshness_slo_ms: 1_000,
            validate: None,
        }
    }
}

impl CliOptions {
    /// Parses `--flag value` pairs (and boolean flags).
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        let mut o = Self::default();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| -> Result<String, String> {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match flag.as_str() {
                "--data" => o.data = Some(value("--data")?),
                "--preset" => o.preset = Some(parse_preset(&value("--preset")?)?),
                "--scale" => o.scale = num(&value("--scale")?)?,
                "--out" => o.out = Some(value("--out")?),
                "--model" => o.model = value("--model")?.to_lowercase(),
                "--epochs" => o.epochs = num(&value("--epochs")?)?,
                "--dim" => o.dim = num(&value("--dim")?)?,
                "--m" => o.m = num(&value("--m")?)?,
                "--lr" => o.lr = num(&value("--lr")?)?,
                "--seed" => o.seed = num(&value("--seed")?)?,
                "--save" => o.save = Some(value("--save")?),
                "--load" => o.load = Some(value("--load")?),
                "--checkpoint" => o.checkpoint = Some(value("--checkpoint")?),
                "--checkpoint-every" => o.checkpoint_every = num(&value("--checkpoint-every")?)?,
                "--resume" => o.resume = Some(value("--resume")?),
                "--max-rollbacks" => o.max_rollbacks = num(&value("--max-rollbacks")?)?,
                "--online" => o.online = true,
                "--detailed" => o.detailed = true,
                "--phase" => o.phase = value("--phase")?.to_lowercase(),
                "--subject" => o.subject = Some(value("--subject")?),
                "--relation" => o.relation = Some(value("--relation")?),
                "--time" => o.time = Some(num(&value("--time")?)?),
                "--topk" => o.topk = num(&value("--topk")?)?,
                "--inverse" => o.inverse = true,
                "--addr" => o.addr = value("--addr")?,
                "--threads" => o.threads = num(&value("--threads")?)?,
                "--http-threads" => o.http_threads = num(&value("--http-threads")?)?,
                "--linger-ms" => o.linger_ms = num(&value("--linger-ms")?)?,
                "--max-batch" => o.max_batch = num(&value("--max-batch")?)?,
                "--fused" => o.fused = true,
                "--deadline-ms" => o.deadline_ms = num(&value("--deadline-ms")?)?,
                "--max-deadline-ms" => o.max_deadline_ms = num(&value("--max-deadline-ms")?)?,
                "--write-timeout-ms" => o.write_timeout_ms = num(&value("--write-timeout-ms")?)?,
                "--brownout-ms" => o.brownout_ms = num(&value("--brownout-ms")?)?,
                "--shed-ms" => o.shed_ms = num(&value("--shed-ms")?)?,
                "--brownout-k" => o.brownout_k = num(&value("--brownout-k")?)?,
                "--max-inflight" => o.max_inflight = num(&value("--max-inflight")?)?,
                "--wal-dir" => o.wal_dir = value("--wal-dir")?,
                "--wal-compact-every" => o.wal_compact_every = num(&value("--wal-compact-every")?)?,
                "--no-durability" => o.no_durability = true,
                "--online-steps" => o.online_steps = num(&value("--online-steps")?)?,
                "--shard" => o.shard = Some(value("--shard")?),
                "--shards" => o.shards = Some(value("--shards")?),
                "--retries" => o.retries = num(&value("--retries")?)?,
                "--retry-base-ms" => o.retry_base_ms = num(&value("--retry-base-ms")?)?,
                "--hedge-after-ms" => o.hedge_after_ms = num(&value("--hedge-after-ms")?)?,
                "--probe-interval-ms" => o.probe_interval_ms = num(&value("--probe-interval-ms")?)?,
                "--rps" => o.rps = num(&value("--rps")?)?,
                "--duration-ms" => o.duration_ms = num(&value("--duration-ms")?)?,
                "--arrival" => o.arrival = value("--arrival")?.to_lowercase(),
                "--predict-pct" => o.predict_pct = num(&value("--predict-pct")?)?,
                "--req-deadline-ms" => o.req_deadline_ms = num(&value("--req-deadline-ms")?)?,
                "--deadline-jitter-pct" => {
                    o.deadline_jitter_pct = num(&value("--deadline-jitter-pct")?)?
                }
                "--workers" => o.workers = num(&value("--workers")?)?,
                "--target" => o.target = Some(value("--target")?),
                "--bench-out" => o.bench_out = value("--bench-out")?,
                "--baseline" => o.baseline = Some(value("--baseline")?),
                "--ratchet-report" => o.ratchet_report = true,
                "--noise-pct" => o.noise_pct = num(&value("--noise-pct")?)?,
                "--capacity" => o.capacity = true,
                "--slo-p99-ms" => o.slo_p99_ms = num(&value("--slo-p99-ms")?)?,
                "--slo-max-rps" => o.slo_max_rps = num(&value("--slo-max-rps")?)?,
                "--freshness" => o.freshness = true,
                "--freshness-rounds" => o.freshness_rounds = num(&value("--freshness-rounds")?)?,
                "--freshness-slo-ms" => o.freshness_slo_ms = num(&value("--freshness-slo-ms")?)?,
                "--validate" => o.validate = Some(value("--validate")?),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        if !(0.0..=1.0).contains(&o.scale) || o.scale == 0.0 {
            return Err("--scale must be in (0, 1]".into());
        }
        Ok(o)
    }
}

fn parse_preset(name: &str) -> Result<SyntheticPreset, String> {
    match name.to_lowercase().as_str() {
        "icews14" => Ok(SyntheticPreset::Icews14),
        "icews18" => Ok(SyntheticPreset::Icews18),
        "icews0515" | "icews05-15" => Ok(SyntheticPreset::Icews0515),
        "gdelt" => Ok(SyntheticPreset::Gdelt),
        other => Err(format!("unknown preset {other}")),
    }
}

fn num<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad number {s}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_mixed_flags() {
        let o = CliOptions::parse(&strs(&[
            "--preset",
            "icews14",
            "--epochs",
            "7",
            "--online",
            "--subject",
            "China",
        ]))
        .unwrap();
        assert_eq!(o.preset, Some(SyntheticPreset::Icews14));
        assert_eq!(o.epochs, 7);
        assert!(o.online);
        assert_eq!(o.subject.as_deref(), Some("China"));
    }

    #[test]
    fn rejects_unknown_flag_and_bad_scale() {
        assert!(CliOptions::parse(&strs(&["--bogus"])).is_err());
        assert!(CliOptions::parse(&strs(&["--scale", "0"])).is_err());
        assert!(CliOptions::parse(&strs(&["--scale", "2"])).is_err());
        assert!(CliOptions::parse(&strs(&["--epochs"])).is_err());
    }

    #[test]
    fn parses_serve_flags() {
        let o = CliOptions::parse(&strs(&[
            "--addr",
            "0.0.0.0:9000",
            "--threads",
            "8",
            "--http-threads",
            "6",
            "--linger-ms",
            "5",
            "--max-batch",
            "64",
            "--fused",
        ]))
        .unwrap();
        assert_eq!(o.addr, "0.0.0.0:9000");
        assert_eq!(o.threads, 8);
        assert_eq!(o.http_threads, 6);
        assert_eq!(o.linger_ms, 5);
        assert_eq!(o.max_batch, 64);
        assert!(o.fused);
    }

    #[test]
    fn parses_overload_flags() {
        let o = CliOptions::parse(&strs(&[
            "--deadline-ms",
            "5000",
            "--max-deadline-ms",
            "60000",
            "--write-timeout-ms",
            "2000",
            "--brownout-ms",
            "40",
            "--shed-ms",
            "200",
            "--brownout-k",
            "2",
            "--max-inflight",
            "128",
        ]))
        .unwrap();
        assert_eq!(o.deadline_ms, 5000);
        assert_eq!(o.max_deadline_ms, 60000);
        assert_eq!(o.write_timeout_ms, 2000);
        assert_eq!(o.brownout_ms, 40);
        assert_eq!(o.shed_ms, 200);
        assert_eq!(o.brownout_k, 2);
        assert_eq!(o.max_inflight, 128);
    }

    #[test]
    fn parses_durability_flags() {
        let o = CliOptions::parse(&strs(&[
            "--wal-dir",
            "/tmp/wal",
            "--wal-compact-every",
            "16",
        ]))
        .unwrap();
        assert_eq!(o.wal_dir, "/tmp/wal");
        assert_eq!(o.wal_compact_every, 16);
        assert!(!o.no_durability);
        let o = CliOptions::parse(&strs(&["--no-durability"])).unwrap();
        assert!(o.no_durability);
        assert_eq!(o.wal_dir, "logcl-wal");
    }

    #[test]
    fn parses_fault_tolerance_flags() {
        let o = CliOptions::parse(&strs(&[
            "--checkpoint",
            "/tmp/ck.json",
            "--checkpoint-every",
            "3",
            "--resume",
            "/tmp/ck.json",
            "--max-rollbacks",
            "5",
        ]))
        .unwrap();
        assert_eq!(o.checkpoint.as_deref(), Some("/tmp/ck.json"));
        assert_eq!(o.checkpoint_every, 3);
        assert_eq!(o.resume.as_deref(), Some("/tmp/ck.json"));
        assert_eq!(o.max_rollbacks, 5);
    }

    #[test]
    fn parses_loadgen_flags() {
        let o = CliOptions::parse(&strs(&[
            "--rps",
            "120.5",
            "--duration-ms",
            "2000",
            "--arrival",
            "burst:500:30:8",
            "--predict-pct",
            "70",
            "--req-deadline-ms",
            "100",
            "--deadline-jitter-pct",
            "20",
            "--workers",
            "4",
            "--target",
            "127.0.0.1:7878",
            "--bench-out",
            "/tmp/bench.json",
            "--baseline",
            "BENCH_serve.json",
            "--ratchet-report",
            "--noise-pct",
            "40",
            "--capacity",
            "--slo-p99-ms",
            "25",
            "--slo-max-rps",
            "800",
        ]))
        .unwrap();
        assert_eq!(o.rps, 120.5);
        assert_eq!(o.duration_ms, 2000);
        assert_eq!(o.arrival, "burst:500:30:8");
        assert_eq!(o.predict_pct, 70);
        assert_eq!(o.req_deadline_ms, 100);
        assert_eq!(o.deadline_jitter_pct, 20);
        assert_eq!(o.workers, 4);
        assert_eq!(o.target.as_deref(), Some("127.0.0.1:7878"));
        assert_eq!(o.bench_out, "/tmp/bench.json");
        assert_eq!(o.baseline.as_deref(), Some("BENCH_serve.json"));
        assert!(o.ratchet_report);
        assert_eq!(o.noise_pct, 40);
        assert!(o.capacity);
        assert_eq!(o.slo_p99_ms, 25.0);
        assert_eq!(o.slo_max_rps, 800.0);
    }

    #[test]
    fn parses_streaming_flags() {
        let o = CliOptions::parse(&strs(&[
            "--online-steps",
            "4",
            "--freshness",
            "--freshness-rounds",
            "12",
            "--freshness-slo-ms",
            "500",
        ]))
        .unwrap();
        assert_eq!(o.online_steps, 4);
        assert!(o.freshness);
        assert_eq!(o.freshness_rounds, 12);
        assert_eq!(o.freshness_slo_ms, 500);
        let d = CliOptions::parse(&strs(&[])).unwrap();
        assert_eq!(d.online_steps, 1);
        assert!(!d.freshness);
        assert_eq!(d.freshness_rounds, 8);
        assert_eq!(d.freshness_slo_ms, 1000);
    }

    #[test]
    fn parses_cluster_flags() {
        let o = CliOptions::parse(&strs(&[
            "--shard",
            "1/3",
            "--shards",
            "127.0.0.1:7001+127.0.0.1:7004,127.0.0.1:7002",
            "--retries",
            "4",
            "--retry-base-ms",
            "10",
            "--hedge-after-ms",
            "15",
            "--probe-interval-ms",
            "100",
        ]))
        .unwrap();
        assert_eq!(o.shard.as_deref(), Some("1/3"));
        assert_eq!(
            o.shards.as_deref(),
            Some("127.0.0.1:7001+127.0.0.1:7004,127.0.0.1:7002")
        );
        assert_eq!(o.retries, 4);
        assert_eq!(o.retry_base_ms, 10);
        assert_eq!(o.hedge_after_ms, 15);
        assert_eq!(o.probe_interval_ms, 100);
        let d = CliOptions::parse(&strs(&[])).unwrap();
        assert!(d.shard.is_none() && d.shards.is_none());
        assert_eq!(d.retries, 2);
        assert_eq!(d.hedge_after_ms, 0);
    }

    #[test]
    fn loadgen_defaults_are_sane() {
        let o = CliOptions::parse(&strs(&[])).unwrap();
        assert_eq!(o.rps, 50.0);
        assert_eq!(o.bench_out, "BENCH_serve.json");
        assert_eq!(o.arrival, "poisson");
        assert!(o.validate.is_none());
        assert!(!o.ratchet_report);
    }

    #[test]
    fn preset_aliases() {
        assert!(parse_preset("ICEWS05-15").is_ok());
        assert!(parse_preset("gdelt").is_ok());
        assert!(parse_preset("wikidata").is_err());
    }
}
