//! Command implementations for the `logcl` CLI.

use logcl_baselines::BaselineKind;
use logcl_core::{
    evaluate_detailed, evaluate_online, evaluate_with_phase, predict_topk, CheckpointPolicy, LogCl,
    LogClConfig, Phase, TkgModel, TrainError, TrainOptions,
};
use logcl_serve::{ModelSpec, ServeConfig, Server};
use logcl_tkg::TkgDataset;

use crate::args::CliOptions;

/// Loads the dataset named by `--data` or `--preset`.
fn dataset(opts: &CliOptions) -> Result<TkgDataset, String> {
    match (&opts.data, opts.preset) {
        (Some(dir), _) => TkgDataset::load_tsv_dir(dir, dir).map_err(|e| e.to_string()),
        (None, Some(preset)) => Ok(preset.generate_scaled(opts.scale)),
        (None, None) => Err("provide --data DIR or --preset NAME".into()),
    }
}

fn logcl_config(opts: &CliOptions) -> LogClConfig {
    LogClConfig {
        dim: opts.dim,
        time_bank: (opts.dim / 4).max(4),
        m: opts.m,
        seed: opts.seed,
        threads: opts.threads,
        ..Default::default()
    }
}

fn build_model(opts: &CliOptions, ds: &TkgDataset) -> Result<Box<dyn TkgModel>, String> {
    // Baselines bypass `LogCl::new` (which applies `LogClConfig::threads`),
    // so select the kernel backend here for every model kind.
    logcl_tensor::kernels::set_threads(opts.threads);
    let kind = match opts.model.as_str() {
        "logcl" => return Ok(Box::new(LogCl::new(ds, logcl_config(opts)))),
        "regcn" | "re-gcn" => BaselineKind::ReGcn,
        "renet" | "re-net" => BaselineKind::ReNet,
        "cygnet" => BaselineKind::CyGNet,
        "tirgn" => BaselineKind::Tirgn,
        "hismatch" => BaselineKind::HisMatchLite,
        "cen" => BaselineKind::Cen,
        "cenet" => BaselineKind::Cenet,
        "distmult" => BaselineKind::DistMult,
        "convtranse" | "conv-transe" => BaselineKind::ConvTransE,
        "ttranse" => BaselineKind::TTransE,
        other => return Err(format!("unknown model {other}")),
    };
    Ok(kind.build(ds, opts.dim, opts.m, 50, opts.seed))
}

fn train_options(opts: &CliOptions) -> TrainOptions {
    // --resume without --checkpoint keeps writing to the resumed-from path,
    // so a run interrupted twice can still be resumed twice.
    let ckpt_path = opts.checkpoint.as_ref().or(opts.resume.as_ref());
    TrainOptions {
        epochs: opts.epochs,
        lr: opts.lr,
        verbose: true,
        checkpoint: ckpt_path.map(|p| CheckpointPolicy {
            path: p.into(),
            every_epochs: opts.checkpoint_every,
            on_best_valid: true,
        }),
        resume: opts.resume.as_ref().map(|p| p.into()),
        max_rollbacks: opts.max_rollbacks,
        ..Default::default()
    }
}

/// Checkpoint/resume flags drive `logcl_core::trainer`, which only the LogCL
/// model uses; reject them early for baselines instead of silently ignoring.
fn reject_fault_tolerance_flags_for_baselines(opts: &CliOptions) -> Result<(), String> {
    if opts.checkpoint.is_some() || opts.resume.is_some() {
        return Err(format!(
            "--checkpoint/--resume currently support the logcl model, not {:?}",
            opts.model
        ));
    }
    Ok(())
}

/// Turns a training failure into an actionable operator message.
fn explain_train_error(e: TrainError) -> String {
    match &e {
        TrainError::Diverged { .. } => format!(
            "training aborted: {e}\n  the last durable checkpoint (if --checkpoint was given) \
             is intact; retry with a lower --lr or a higher --max-rollbacks"
        ),
        TrainError::Resume(_) => {
            format!("{e}\n  pass the same --epochs/--dim/--m/--seed flags as the interrupted run")
        }
        TrainError::Checkpoint(_) => format!(
            "{e}\n  the training state on disk is unreadable or stale; delete it to start fresh"
        ),
    }
}

fn phase(opts: &CliOptions) -> Result<Phase, String> {
    match opts.phase.as_str() {
        "both" => Ok(Phase::Both),
        "fp" => Ok(Phase::FirstOnly),
        "sp" => Ok(Phase::SecondOnly),
        other => Err(format!("unknown phase {other} (use fp|sp|both)")),
    }
}

/// `logcl generate`: write a synthetic benchmark as TSV.
pub fn generate(opts: &CliOptions) -> Result<(), String> {
    let preset = opts.preset.ok_or("generate needs --preset")?;
    let out = opts.out.as_deref().ok_or("generate needs --out DIR")?;
    let ds = preset.generate_scaled(opts.scale);
    ds.save_tsv_dir(out).map_err(|e| e.to_string())?;
    println!("wrote {ds} to {out}");
    Ok(())
}

/// `logcl info`: dataset statistics, Table II style.
pub fn info(opts: &CliOptions) -> Result<(), String> {
    let ds = dataset(opts)?;
    println!("{ds}");
    println!("  relations incl. inverses: {}", ds.num_rels_with_inverse());
    let snaps = ds.snapshots();
    let nonempty = snaps.iter().filter(|s| !s.is_empty()).count();
    let mean_facts =
        snaps.iter().map(|s| s.len()).sum::<usize>() as f64 / snaps.len().max(1) as f64;
    println!(
        "  snapshots: {} ({} non-empty, mean {:.1} facts incl. inverses)",
        snaps.len(),
        nonempty,
        mean_facts
    );
    // Repetition rate: share of test facts whose triple occurred before.
    let seen: std::collections::HashSet<_> = ds
        .train
        .iter()
        .chain(&ds.valid)
        .map(|q| q.triple())
        .collect();
    if !ds.test.is_empty() {
        let rep = ds
            .test
            .iter()
            .filter(|q| seen.contains(&q.triple()))
            .count();
        println!(
            "  test repetition rate: {:.1}%",
            100.0 * rep as f64 / ds.test.len() as f64
        );
    }
    Ok(())
}

/// `logcl train`: fit a model, report test metrics, optionally save.
pub fn train(opts: &CliOptions) -> Result<(), String> {
    let ds = dataset(opts)?;
    println!("dataset: {ds}");
    if opts.save.is_some() && opts.model != "logcl" {
        return Err("--save currently supports the logcl model".into());
    }
    let t0 = std::time::Instant::now();
    if opts.model == "logcl" {
        let mut model = LogCl::new(&ds, logcl_config(opts));
        let report = model
            .fit(&ds, &train_options(opts))
            .map_err(explain_train_error)?;
        if let Some(epoch) = report.resumed_at_epoch {
            println!("resumed from epoch {epoch}");
        }
        for rb in &report.rollbacks {
            println!(
                "rolled back epoch {} ({}); lr {} -> {}",
                rb.epoch, rb.reason, rb.lr_before, rb.lr_after
            );
        }
        println!(
            "trained {} in {:.1}s",
            model.name(),
            t0.elapsed().as_secs_f64()
        );
        let metrics = evaluate_with_phase(&mut model, &ds, &ds.test.clone(), Phase::Both, false);
        println!("test: {metrics}");
        if let Some(path) = &opts.save {
            let cfg = logcl_config(opts);
            logcl_tensor::serialize::save_with_meta(
                &model.params,
                &cfg.variant_name(),
                &cfg.fingerprint(),
                path,
            )
            .map_err(|e| e.to_string())?;
            println!("saved parameters to {path}");
        }
    } else {
        reject_fault_tolerance_flags_for_baselines(opts)?;
        let mut model = build_model(opts, &ds)?;
        model
            .fit(&ds, &train_options(opts))
            .map_err(explain_train_error)?;
        println!(
            "trained {} in {:.1}s",
            model.name(),
            t0.elapsed().as_secs_f64()
        );
        let metrics =
            evaluate_with_phase(model.as_mut(), &ds, &ds.test.clone(), Phase::Both, false);
        println!("test: {metrics}");
    }
    Ok(())
}

/// `logcl eval`: evaluate a (possibly loaded) model.
pub fn eval(opts: &CliOptions) -> Result<(), String> {
    let ds = dataset(opts)?;
    println!("dataset: {ds}");
    if opts.model == "logcl" {
        let mut model = LogCl::new(&ds, logcl_config(opts));
        match &opts.load {
            Some(path) => {
                logcl_tensor::serialize::load(&model.params, path).map_err(|e| e.to_string())?;
                println!("loaded parameters from {path}");
            }
            None => {
                model
                    .fit(&ds, &train_options(opts))
                    .map_err(explain_train_error)?;
            }
        }
        if opts.detailed {
            let report = evaluate_detailed(&mut model, &ds, &ds.test.clone());
            println!("{report}");
            return Ok(());
        }
        let metrics = if opts.online {
            evaluate_online(&mut model, &ds, &ds.test.clone())
        } else {
            evaluate_with_phase(&mut model, &ds, &ds.test.clone(), phase(opts)?, false)
        };
        println!("test: {metrics}");
    } else {
        reject_fault_tolerance_flags_for_baselines(opts)?;
        let mut model = build_model(opts, &ds)?;
        model
            .fit(&ds, &train_options(opts))
            .map_err(explain_train_error)?;
        if opts.detailed {
            let report = evaluate_detailed(model.as_mut(), &ds, &ds.test.clone());
            println!("{report}");
            return Ok(());
        }
        let metrics = if opts.online {
            evaluate_online(model.as_mut(), &ds, &ds.test.clone())
        } else {
            evaluate_with_phase(model.as_mut(), &ds, &ds.test.clone(), phase(opts)?, false)
        };
        println!("test: {metrics}");
    }
    Ok(())
}

/// Resolves an entity or relation given by name or numeric id.
fn resolve(
    input: &str,
    by_name: impl Fn(&str) -> Option<usize>,
    limit: usize,
) -> Result<usize, String> {
    if let Some(id) = by_name(input) {
        return Ok(id);
    }
    let id: usize = input
        .parse()
        .map_err(|_| format!("unknown name or id: {input}"))?;
    if id >= limit {
        return Err(format!("id {id} out of range (< {limit})"));
    }
    Ok(id)
}

/// `logcl predict`: top-k forecast for one query.
pub fn predict(opts: &CliOptions) -> Result<(), String> {
    let ds = dataset(opts)?;
    let subject = resolve(
        opts.subject.as_deref().ok_or("predict needs --subject")?,
        |n| ds.entity_by_name(n),
        ds.num_entities,
    )?;
    let mut relation = resolve(
        opts.relation.as_deref().ok_or("predict needs --relation")?,
        |n| ds.rel_by_name(n),
        ds.num_rels_with_inverse(),
    )?;
    if opts.inverse {
        relation += ds.num_rels;
    }
    let t = opts.time.unwrap_or(ds.num_times);

    let mut model = LogCl::new(&ds, logcl_config(opts));
    match &opts.load {
        Some(path) => {
            logcl_tensor::serialize::load(&model.params, path).map_err(|e| e.to_string())?
        }
        None => {
            model
                .fit(&ds, &train_options(opts))
                .map_err(explain_train_error)?;
        }
    }
    println!(
        "query: ({}, {}, ?, t={t})",
        ds.entity_name(subject),
        ds.rel_name(relation)
    );
    let preds = predict_topk(&mut model, &ds, subject, relation, t, opts.topk)
        .map_err(|e| e.to_string())?;
    for p in preds {
        println!("  {:<30} {:.3}", p.name, p.probability);
    }
    Ok(())
}

/// `logcl serve`: run the HTTP inference server.
///
/// Loads (or trains) one LogCL model, then serves `/predict` and `/ingest`
/// with snapshot-encoding caching and micro-batching until `POST /shutdown`
/// (or process exit). With `--load` the checkpoint's metadata is validated
/// against the configuration implied by `--dim`/`--m`/`--seed`.
pub fn serve(opts: &CliOptions) -> Result<(), String> {
    if opts.model != "logcl" {
        return Err("serve currently supports the logcl model".into());
    }
    let ds = dataset(opts)?;
    println!("dataset: {ds}");
    let cfg = logcl_config(opts);
    let spec = match &opts.load {
        Some(path) => {
            let ckpt = logcl_tensor::serialize::read(path).map_err(|e| e.to_string())?;
            println!("loading checkpoint {path}");
            ModelSpec {
                name: "default".into(),
                cfg,
                checkpoint: Some(ckpt),
                train: None,
            }
        }
        None => {
            println!("no --load given; training from scratch before serving");
            ModelSpec {
                name: "default".into(),
                cfg,
                checkpoint: None,
                train: Some(train_options(opts)),
            }
        }
    };
    let shard = opts
        .shard
        .as_deref()
        .map(|s| logcl_core::ShardSpec::parse(s).map_err(|e| format!("invalid --shard {s:?}: {e}")))
        .transpose()?;
    let serve_cfg = ServeConfig {
        addr: opts.addr.clone(),
        threads: opts.http_threads,
        compute_threads: opts.threads,
        linger: std::time::Duration::from_millis(opts.linger_ms),
        max_batch: opts.max_batch,
        default_k: opts.topk,
        fused: opts.fused,
        default_deadline: std::time::Duration::from_millis(opts.deadline_ms),
        max_deadline: std::time::Duration::from_millis(opts.max_deadline_ms),
        write_timeout: std::time::Duration::from_millis(opts.write_timeout_ms),
        brownout_sojourn: std::time::Duration::from_millis(opts.brownout_ms),
        shed_sojourn: std::time::Duration::from_millis(opts.shed_ms),
        brownout_k_cap: opts.brownout_k,
        max_inflight_predict: opts.max_inflight,
        wal_dir: if opts.no_durability {
            None
        } else {
            Some(std::path::PathBuf::from(&opts.wal_dir))
        },
        wal_compact_every: opts.wal_compact_every,
        online_steps: opts.online_steps,
        shard,
        ..ServeConfig::default()
    };
    let num_entities = ds.num_entities;
    let server = Server::start(serve_cfg, ds, vec![spec]).map_err(|e| e.to_string())?;
    if let Some(spec) = shard {
        let (lo, hi) = spec.range(num_entities);
        println!("worker shard {spec}: scoring entities [{lo}, {hi}) of {num_entities}");
    }
    if opts.no_durability {
        println!("durability disabled (--no-durability): ingests are lost on crash");
    } else {
        println!(
            "durable ingest: WAL + snapshots in {} (compact every {})",
            opts.wal_dir, opts.wal_compact_every
        );
    }
    println!("listening on http://{}", server.addr());
    println!("  GET  /healthz   liveness + current horizon");
    println!("  GET  /metrics   Prometheus text format");
    println!("  POST /predict   {{\"subject\": .., \"relation\": .., \"time\": .., \"k\": ..}}");
    println!("  POST /ingest    {{\"time\": .., \"facts\": [[s, r, o], ..]}}");
    println!("  POST /shutdown  graceful stop");
    server.run();
    println!("server stopped");
    Ok(())
}

/// `logcl router`: scatter-gather router over entity-sharded workers.
///
/// Fronts N `logcl serve --shard i/N` worker processes (given via
/// `--shards`) with failover, bounded retries, optional predict hedging,
/// and partial-result degradation when a shard stays down. The router
/// speaks the same HTTP protocol as a single worker, so clients (and
/// `logcl loadgen --target`) need no changes.
pub fn router(opts: &CliOptions) -> Result<(), String> {
    let spec = opts
        .shards
        .as_deref()
        .ok_or("router needs --shards host:port[+replica][,shard2...]")?;
    let shards = logcl_cluster::parse_shards(spec).map_err(|e| e.to_string())?;
    let workers: usize = shards.iter().map(Vec::len).sum();
    let cfg = logcl_cluster::RouterConfig {
        addr: opts.addr.clone(),
        shards,
        default_k: opts.topk,
        default_deadline: std::time::Duration::from_millis(opts.deadline_ms),
        max_deadline: std::time::Duration::from_millis(opts.max_deadline_ms),
        retries: opts.retries,
        retry_base: std::time::Duration::from_millis(opts.retry_base_ms),
        hedge_after: match opts.hedge_after_ms {
            0 => None,
            ms => Some(std::time::Duration::from_millis(ms)),
        },
        probe_interval: std::time::Duration::from_millis(opts.probe_interval_ms.max(1)),
        ..logcl_cluster::RouterConfig::default()
    };
    let shard_count = cfg.shards.len();
    let router = logcl_cluster::Router::start(cfg).map_err(|e| e.to_string())?;
    println!("router over {shard_count} shard(s), {workers} worker(s)");
    println!("listening on http://{}", router.addr());
    println!("  GET  /healthz   router + per-worker health states");
    println!("  GET  /metrics   Prometheus text format (retries, hedges, coverage)");
    println!("  POST /predict   scatter-gather over all shards, global top-k");
    println!("  POST /ingest    exactly-once fan-out to every worker");
    println!("  POST /shutdown  graceful stop");
    router.run();
    println!("router stopped");
    Ok(())
}

/// `logcl loadgen`: open-loop load harness, bench report, perf ratchet.
///
/// Default mode boots an in-process server on an ephemeral port with an
/// *untrained* model (the harness measures the serving stack, not model
/// quality); `--target` drives an already-running server instead. Writes
/// `--bench-out` (default `BENCH_serve.json`) and, with `--baseline`,
/// ratchets against the committed report — regressions beyond the noise
/// band exit non-zero unless `--ratchet-report` downgrades them.
pub fn loadgen(opts: &CliOptions) -> Result<(), String> {
    use logcl_loadgen::{capacity, ratchet, report, runner, schedule};

    // Validate-only mode: schema-check a report and exit.
    if let Some(path) = &opts.validate {
        let r = report::BenchReport::read(path).map_err(|e| e.to_string())?;
        println!(
            "{path}: valid BENCH_serve.json (schema v{}, {} scheduled, fingerprint {})",
            r.schema_version, r.scheduled, r.schedule_fingerprint
        );
        return Ok(());
    }

    // Dataset: explicit --data/--preset, else a default synthetic slice.
    let ds = match (&opts.data, opts.preset) {
        (None, None) => logcl_tkg::SyntheticPreset::Icews14.generate_scaled(opts.scale.min(0.15)),
        _ => dataset(opts)?,
    };

    // Freshness mode: measure ingest-to-visible latency against a durable
    // server booted here (the scenario appends at the head and reads the
    // WAL-acked stream back, so it owns its server and WAL directory).
    if opts.freshness {
        return run_freshness(opts, ds);
    }

    let trace = schedule::TraceConfig {
        seed: opts.seed,
        rps: opts.rps,
        duration_ms: opts.duration_ms,
        arrival: schedule::Arrival::parse(&opts.arrival).map_err(|e| e.to_string())?,
        predict_percent: opts.predict_pct,
        deadline_ms: opts.req_deadline_ms,
        deadline_jitter_pct: opts.deadline_jitter_pct,
        num_entities: ds.num_entities,
        num_rels: ds.num_rels,
        k: opts.topk,
        ingest_facts: 4,
    };
    let ingest_time = ds.num_times;

    let (addr, server) = match &opts.target {
        Some(target) => (target.clone(), None),
        None => {
            let serve_cfg = ServeConfig {
                addr: "127.0.0.1:0".into(),
                threads: opts.http_threads,
                compute_threads: opts.threads,
                linger: std::time::Duration::from_millis(opts.linger_ms),
                max_batch: opts.max_batch,
                default_k: opts.topk,
                fused: opts.fused,
                brownout_sojourn: std::time::Duration::from_millis(opts.brownout_ms),
                shed_sojourn: std::time::Duration::from_millis(opts.shed_ms),
                brownout_k_cap: opts.brownout_k,
                max_inflight_predict: opts.max_inflight,
                ..ServeConfig::default()
            };
            let spec = ModelSpec {
                name: "default".into(),
                cfg: logcl_config(opts),
                checkpoint: None,
                train: None,
            };
            let server = Server::start(serve_cfg, ds, vec![spec]).map_err(|e| e.to_string())?;
            let addr = server.addr().to_string();
            println!("booted in-process server on {addr} (untrained model)");
            (addr, Some(server))
        }
    };

    let run_cfg = runner::RunConfig {
        addr: addr.clone(),
        workers: opts.workers,
        io_timeout: std::time::Duration::from_secs(60),
        ingest_time,
        ingest_update: false,
    };
    let planned = schedule::build_schedule(&trace).map_err(|e| e.to_string())?;
    let fp = schedule::fingerprint(&planned);
    println!(
        "replaying {} requests over {}ms ({} arrivals at {} rps, fingerprint {fp:016x})",
        planned.len(),
        trace.duration_ms,
        trace.arrival.name(),
        trace.rps
    );
    let stats = runner::run(&planned, &run_cfg).map_err(|e| e.to_string())?;
    let mut bench = report::BenchReport::from_run(&trace, fp, &stats);

    if let Ok((200, metrics_text)) =
        runner::http_get(&addr, "/metrics", std::time::Duration::from_secs(10))
    {
        bench.build = report::parse_build_info(&metrics_text);
    }

    if opts.capacity {
        let policy = capacity::SloPolicy {
            p99_ms: opts.slo_p99_ms,
            min_rps: (opts.rps / 10.0).max(1.0),
            max_rps: opts.slo_max_rps,
            iterations: 4,
        };
        // Each probe replays a shorter trace at the candidate rate.
        let mut probe = |rps: f64| -> Result<f64, logcl_loadgen::LoadgenError> {
            let probe_trace = schedule::TraceConfig {
                rps,
                duration_ms: trace.duration_ms.min(1_000),
                ..trace.clone()
            };
            let s = schedule::build_schedule(&probe_trace)?;
            let stats = runner::run(&s, &run_cfg)?;
            Ok(stats.latency.quantile(0.99) as f64 / 1_000.0)
        };
        let cap = capacity::search(&policy, &mut probe).map_err(|e| e.to_string())?;
        println!(
            "capacity at p99<={}ms: {:.1} rps ({} probes)",
            cap.slo_p99_ms,
            cap.capacity_rps,
            cap.probes.len()
        );
        bench.capacity = Some(cap);
    }

    bench.validate().map_err(|e| e.to_string())?;
    bench.write(&opts.bench_out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: goodput {:.1}% ({} ok, {} degraded, {} shed, {} deadline), \
         p50 {:.2}ms p99 {:.2}ms p999 {:.2}ms, conn reuse {:.1}%",
        opts.bench_out,
        bench.goodput_rate * 100.0,
        bench.outcomes.ok,
        bench.outcomes.degraded,
        bench.outcomes.shed_503,
        bench.outcomes.deadline_504,
        bench.latency_ms.p50,
        bench.latency_ms.p99,
        bench.latency_ms.p999,
        bench.connection_reuse_rate * 100.0
    );

    if let Some(server) = server {
        server.shutdown();
    }

    if let Some(baseline_path) = &opts.baseline {
        let baseline = report::BenchReport::read(baseline_path).map_err(|e| e.to_string())?;
        let policy = ratchet::RatchetPolicy::with_noise_pct(opts.noise_pct);
        match ratchet::check(&bench, &baseline, &policy) {
            Ok(()) => println!(
                "ratchet ok against {baseline_path} (noise band {}%)",
                opts.noise_pct
            ),
            Err(e) if opts.ratchet_report => {
                println!("ratchet (report-only): {e}");
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(())
}

/// `logcl loadgen --freshness`: measure how long after an acked head append
/// the new timestamp answers `/predict`, against a durable in-process server
/// with online adaptation enabled. Exits non-zero when any round exceeds
/// `--freshness-slo-ms`.
fn run_freshness(opts: &CliOptions, ds: TkgDataset) -> Result<(), String> {
    use logcl_loadgen::freshness;

    if opts.target.is_some() {
        return Err("--freshness boots its own durable server; drop --target".into());
    }
    let num_entities = ds.num_entities;
    let num_rels = ds.num_rels;
    let wal_dir = std::env::temp_dir().join(format!("logcl-freshness-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&wal_dir);
    std::fs::create_dir_all(&wal_dir).map_err(|e| e.to_string())?;
    let serve_cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        threads: opts.http_threads,
        compute_threads: opts.threads,
        linger: std::time::Duration::from_millis(opts.linger_ms),
        max_batch: opts.max_batch,
        default_k: opts.topk,
        fused: opts.fused,
        // Degradation tiers stay out of reach: a browned-out server skips
        // online adaptation, which would make rounds incomparable.
        brownout_sojourn: std::time::Duration::from_secs(10),
        shed_sojourn: std::time::Duration::from_secs(60),
        wal_dir: Some(wal_dir.clone()),
        online_steps: opts.online_steps,
        ..ServeConfig::default()
    };
    let spec = ModelSpec {
        name: "default".into(),
        cfg: logcl_config(opts),
        checkpoint: None,
        train: None,
    };
    let server = Server::start(serve_cfg, ds, vec![spec]).map_err(|e| e.to_string())?;
    let addr = server.addr().to_string();
    println!(
        "booted durable in-process server on {addr} (WAL in {}, online steps {})",
        wal_dir.display(),
        opts.online_steps
    );

    let cfg = freshness::FreshnessConfig {
        addr,
        rounds: opts.freshness_rounds,
        slo_ms: opts.freshness_slo_ms,
        update: true,
        io_timeout: std::time::Duration::from_secs(60),
        num_entities,
        num_rels,
    };
    let result = freshness::run(&cfg);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&wal_dir);
    let report = result.map_err(|e| e.to_string())?;
    for (i, r) in report.rounds.iter().enumerate() {
        println!(
            "round {i}: append t={} acked in {:.2}ms, visible in {:.2}ms ({} poll{})",
            r.ingest_time,
            r.ingest_micros as f64 / 1_000.0,
            r.visible_micros as f64 / 1_000.0,
            r.polls,
            if r.polls == 1 { "" } else { "s" }
        );
    }
    let violations = report.violations();
    println!(
        "freshness: {} rounds, max ingest-to-visible {:.2}ms, SLO {}ms, {violations} violation{}",
        report.rounds.len(),
        report.max_visible_micros() as f64 / 1_000.0,
        report.slo_ms,
        if violations == 1 { "" } else { "s" }
    );
    if violations > 0 {
        return Err(format!(
            "{violations} round(s) exceeded the {}ms ingest-to-visible SLO",
            report.slo_ms
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::CliOptions;

    fn opts(extra: &[&str]) -> CliOptions {
        let mut args = vec![
            "--preset".to_string(),
            "icews14".to_string(),
            "--scale".to_string(),
            "0.15".to_string(),
            "--dim".to_string(),
            "8".to_string(),
            "--m".to_string(),
            "2".to_string(),
            "--epochs".to_string(),
            "1".to_string(),
        ];
        args.extend(extra.iter().map(|s| s.to_string()));
        CliOptions::parse(&args).unwrap()
    }

    #[test]
    fn generate_info_round_trip() {
        let dir = std::env::temp_dir().join("logcl-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let out = dir.join("ds").to_string_lossy().to_string();
        let mut o = opts(&[]);
        o.out = Some(out.clone());
        generate(&o).unwrap();
        let mut o2 = opts(&[]);
        o2.preset = None;
        o2.data = Some(out);
        info(&o2).unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn train_save_then_eval_load() {
        let dir = std::env::temp_dir().join("logcl-cli-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("m.json").to_string_lossy().to_string();
        let mut o = opts(&[]);
        o.save = Some(ckpt.clone());
        train(&o).unwrap();
        let mut o2 = opts(&[]);
        o2.load = Some(ckpt);
        eval(&o2).unwrap();
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn predict_resolves_names() {
        let o = opts(&[
            "--subject",
            "China",
            "--relation",
            "0",
            "--topk",
            "3",
            "--time",
            "5",
        ]);
        predict(&o).unwrap();
    }

    #[test]
    fn train_with_checkpoint_writes_resumable_state() {
        let dir = std::env::temp_dir().join("logcl-cli-train-ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ck").to_string_lossy().to_string();
        let mut o = opts(&[]);
        o.checkpoint = Some(path.clone());
        train(&o).unwrap();
        // The checkpoint is a durable container holding full training state.
        let ck: logcl_core::TrainCheckpoint =
            logcl_tensor::serialize::load_json_durable(&path).unwrap();
        assert_eq!(ck.next_epoch, 1);
        assert_eq!(ck.total_epochs, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn checkpoint_flags_are_rejected_for_baselines() {
        let mut o = opts(&[]);
        o.model = "distmult".into();
        o.checkpoint = Some("/tmp/never-written.ck".into());
        let err = train(&o).unwrap_err();
        assert!(err.contains("logcl"), "{err}");
    }

    #[test]
    fn resume_with_mismatched_flags_is_explained() {
        let dir = std::env::temp_dir().join("logcl-cli-resume-mismatch");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("train.ck").to_string_lossy().to_string();
        let mut o = opts(&[]);
        o.checkpoint = Some(path.clone());
        train(&o).unwrap();
        // Same checkpoint, different epoch budget: refused with a remedy.
        let mut o2 = opts(&[]);
        o2.epochs = 9;
        o2.resume = Some(path);
        let err = train(&o2).unwrap_err();
        assert!(err.contains("cannot resume"), "{err}");
        assert!(err.contains("--epochs"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_model_is_an_error() {
        let mut o = opts(&[]);
        o.model = "alexnet".into();
        assert!(train(&o).is_err());
    }

    #[test]
    fn baseline_models_train_via_cli() {
        for model in ["distmult", "cygnet"] {
            let mut o = opts(&[]);
            o.model = model.into();
            train(&o).unwrap();
        }
    }
}
