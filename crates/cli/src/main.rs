//! `logcl` — the command-line face of the reproduction.
//!
//! ```sh
//! logcl generate --preset icews14 --out data/icews14-s     # write TSV benchmark
//! logcl info --data data/icews14-s                         # dataset statistics
//! logcl train --data data/icews14-s --epochs 20 --save model.json
//! logcl eval --data data/icews14-s --load model.json
//! logcl predict --data data/icews14-s --load model.json \
//!     --subject China --relation Cooperate --time 115 --topk 5
//! logcl serve --data data/icews14-s --load model.json --addr 127.0.0.1:7878
//! logcl serve --data data/icews14-s --load model.json --shard 0/3   # worker
//! logcl router --shards 127.0.0.1:7001,127.0.0.1:7002,127.0.0.1:7003
//! logcl loadgen --rps 200 --duration-ms 5000 --baseline BENCH_serve.json
//! ```

mod args;
mod commands;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let code = match run(&argv) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    };
    std::process::exit(code);
}

fn run(argv: &[String]) -> Result<(), String> {
    let Some(cmd) = argv.first() else {
        return Err(format!("no command given\n{}", args::USAGE));
    };
    let opts = args::CliOptions::parse(&argv[1..])?;
    match cmd.as_str() {
        "generate" => commands::generate(&opts),
        "info" => commands::info(&opts),
        "train" => commands::train(&opts),
        "eval" => commands::eval(&opts),
        "predict" => commands::predict(&opts),
        "serve" => commands::serve(&opts),
        "router" => commands::router(&opts),
        "loadgen" => commands::loadgen(&opts),
        "help" | "--help" | "-h" => {
            println!("{}", args::USAGE);
            Ok(())
        }
        other => Err(format!("unknown command {other}\n{}", args::USAGE)),
    }
}
