//! Micro-benchmarks of the computational substrate: the kernels every
//! experiment spends its time in.

use criterion::{criterion_group, criterion_main, Criterion};
use logcl_gnn::aggregator::{AggregatorKind, EdgeBatch, RelGnn};
use logcl_gnn::ConvTransE;
use logcl_tensor::{Rng, Tensor, Var};
use logcl_tkg::{HistoryIndex, SyntheticPreset};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = Rng::seed(1);
    let a = Tensor::randn(&[128, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 128], 1.0, &mut rng);
    c.bench_function("matmul_128x64x128", |bench| {
        bench.iter(|| std::hint::black_box(a.matmul(&b)))
    });
}

fn bench_rgcn_forward_backward(c: &mut Criterion) {
    let mut rng = Rng::seed(2);
    let gnn = RelGnn::new(AggregatorKind::Rgcn, 64, 2, &mut rng);
    let h = Var::param(Tensor::randn(&[300, 64], 0.3, &mut rng));
    let rel = Var::param(Tensor::randn(&[48, 64], 0.3, &mut rng));
    let s: Vec<usize> = (0..200).map(|i| i % 300).collect();
    let r: Vec<usize> = (0..200).map(|i| i % 48).collect();
    let o: Vec<usize> = (0..200).map(|i| (i * 7) % 300).collect();
    let edges = EdgeBatch {
        subjects: &s,
        relations: &r,
        objects: &o,
        num_entities: 300,
    };
    c.bench_function("rgcn_2layer_fwd_bwd_300e_200edges", |bench| {
        bench.iter(|| {
            let out = gnn.forward(&h, &rel, &edges);
            out.sum().backward();
            h.zero_grad();
            rel.zero_grad();
        })
    });
}

fn bench_conv_transe_decode(c: &mut Criterion) {
    let mut rng = Rng::seed(3);
    let dec = ConvTransE::new(64, 50, 0.0, &mut rng);
    let e = Var::constant(Tensor::randn(&[64, 64], 0.3, &mut rng));
    let r = Var::constant(Tensor::randn(&[64, 64], 0.3, &mut rng));
    let ents = Var::constant(Tensor::randn(&[300, 64], 0.3, &mut rng));
    c.bench_function("conv_transe_decode_b64_d64_k50", |bench| {
        bench.iter(|| std::hint::black_box(dec.forward(&e, &r, &ents, false, &mut rng).to_tensor()))
    });
}

fn bench_history_subgraph(c: &mut Criterion) {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.5);
    let snaps = ds.snapshots();
    let hist = HistoryIndex::build(&snaps[..snaps.len() / 2]);
    let queries: Vec<(usize, usize)> = ds.train.iter().take(64).map(|q| (q.s, q.r)).collect();
    c.bench_function("two_hop_query_subgraph_64q", |bench| {
        bench.iter(|| {
            for &(s, r) in &queries {
                std::hint::black_box(hist.query_subgraph(s, r, 60));
            }
        })
    });
}

fn bench_time_aware_ranking(c: &mut Criterion) {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.5);
    let mut rng = Rng::seed(4);
    let scores: Vec<Vec<f32>> = (0..64)
        .map(|_| {
            (0..ds.num_entities)
                .map(|_| rng.uniform(0.0, 1.0))
                .collect()
        })
        .collect();
    let t = ds.test[0].t;
    let truth = ds.facts_at(t);
    let queries: Vec<_> = ds.test.iter().take(64).copied().collect();
    c.bench_function("time_aware_rank_64q", |bench| {
        bench.iter(|| {
            for (q, s) in queries.iter().zip(&scores) {
                std::hint::black_box(logcl_tkg::eval::rank_time_aware(s, q, &truth));
            }
        })
    });
}

criterion_group! {
    name = substrate;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_matmul, bench_rgcn_forward_backward, bench_conv_transe_decode, bench_history_subgraph, bench_time_aware_ranking
}
criterion_main!(substrate);
