//! One Criterion benchmark per paper table/figure, measuring the core
//! computational unit that experiment repeats (a training step, a scoring
//! pass, a noisy forward, …) at micro scale. The *results* of each
//! experiment are produced by the `experiments` binary; these benches track
//! the cost of regenerating them.

use criterion::{criterion_group, criterion_main, Criterion};
use logcl_baselines::{CyGNet, ReGcn, TirgnLite};
use logcl_core::{ContrastStrategy, EvalContext, LogCl, LogClConfig, Phase, TkgModel};
use logcl_gnn::AggregatorKind;
use logcl_tkg::{HistoryIndex, NoiseSpec, SyntheticPreset, TkgDataset};

struct Fixture {
    ds: TkgDataset,
    snapshots: Vec<logcl_tkg::Snapshot>,
    history: HistoryIndex,
    t: usize,
    queries: Vec<logcl_tkg::Quad>,
}

fn fixture() -> Fixture {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.2);
    let snapshots = ds.snapshots();
    let t = ds.train_end_time() / 2;
    let history = HistoryIndex::build(&snapshots[..t]);
    let queries: Vec<_> = ds
        .train
        .iter()
        .filter(|q| q.t == t)
        .take(16)
        .copied()
        .collect();
    Fixture {
        ds,
        snapshots,
        history,
        t,
        queries,
    }
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 32,
        time_bank: 8,
        channels: 8,
        m: 3,
        ..Default::default()
    }
}

/// Table III: one full-roster scoring pass (the unit the main-results sweep
/// repeats per model and timestamp).
fn bench_table3(c: &mut Criterion) {
    let f = fixture();
    let mut logcl = LogCl::new(&f.ds, tiny_cfg());
    let mut regcn = ReGcn::new(&f.ds, 32, 3, 8, 1);
    let mut cygnet = CyGNet::new(&f.ds, 32, 0.8, 1);
    c.bench_function("table3_score_pass_logcl", |b| {
        b.iter(|| {
            let ctx = EvalContext {
                ds: &f.ds,
                snapshots: &f.snapshots,
                history: &f.history,
                t: f.t,
            };
            std::hint::black_box(logcl.score(&ctx, &f.queries));
        })
    });
    c.bench_function("table3_score_pass_regcn", |b| {
        b.iter(|| {
            let ctx = EvalContext {
                ds: &f.ds,
                snapshots: &f.snapshots,
                history: &f.history,
                t: f.t,
            };
            std::hint::black_box(regcn.score(&ctx, &f.queries));
        })
    });
    c.bench_function("table3_score_pass_cygnet", |b| {
        b.iter(|| {
            let ctx = EvalContext {
                ds: &f.ds,
                snapshots: &f.snapshots,
                history: &f.history,
                t: f.t,
            };
            std::hint::black_box(cygnet.score(&ctx, &f.queries));
        })
    });
}

/// Table IV: the ablated forwards (what the ablation grid re-runs).
fn bench_table4(c: &mut Criterion) {
    let f = fixture();
    for (label, cfg) in [
        ("full", tiny_cfg()),
        ("wo_global", tiny_cfg().without_global()),
        ("wo_eatt", tiny_cfg().without_entity_attention()),
    ] {
        let mut model = LogCl::new(&f.ds, cfg);
        c.bench_function(&format!("table4_forward_{label}"), |b| {
            b.iter(|| {
                let shared = model.encode(&f.snapshots, f.t, true);
                std::hint::black_box(model.forward_queries(&shared, &f.history, &f.queries, true));
            })
        });
    }
}

/// Table V: one forward per aggregator kind.
fn bench_table5(c: &mut Criterion) {
    let f = fixture();
    for kind in AggregatorKind::ALL {
        let cfg = LogClConfig {
            aggregator: kind,
            ..tiny_cfg()
        };
        let mut model = LogCl::new(&f.ds, cfg);
        c.bench_function(&format!("table5_forward_{}", kind.name()), |b| {
            b.iter(|| {
                let shared = model.encode(&f.snapshots, f.t, true);
                std::hint::black_box(model.forward_queries(&shared, &f.history, &f.queries, true));
            })
        });
    }
}

/// Table VI: a top-k prediction (the case-study unit).
fn bench_table6(c: &mut Criterion) {
    let f = fixture();
    let mut model = LogCl::new(&f.ds, tiny_cfg());
    let q = f.queries[0];
    c.bench_function("table6_predict_top5", |b| {
        b.iter(|| {
            std::hint::black_box(
                logcl_core::predict_topk(&mut model, &f.ds, q.s, q.r, f.t, 5)
                    .expect("prediction failed"),
            )
        })
    });
}

/// Table VII: single-phase vs two-phase evaluation of one timestamp.
fn bench_table7(c: &mut Criterion) {
    let f = fixture();
    let mut model = LogCl::new(&f.ds, tiny_cfg());
    let quads: Vec<_> = f.queries.clone();
    for (label, phase) in [("both", Phase::Both), ("fp", Phase::FirstOnly)] {
        c.bench_function(&format!("table7_eval_{label}"), |b| {
            b.iter(|| {
                std::hint::black_box(logcl_core::evaluate_with_phase(
                    &mut model, &f.ds, &quads, phase, false,
                ))
            })
        });
    }
}

/// Figs. 2 & 5: a noisy forward pass (the robustness unit).
fn bench_fig2_fig5(c: &mut Criterion) {
    let f = fixture();
    let mut clean = LogCl::new(&f.ds, tiny_cfg());
    let mut noisy = LogCl::new(
        &f.ds,
        LogClConfig {
            noise: NoiseSpec::with_std(1.0),
            ..tiny_cfg()
        },
    );
    let mut tirgn = TirgnLite::new(&f.ds, 32, 3, 8, 1);
    tirgn.noise = NoiseSpec::with_std(1.0);
    c.bench_function("fig5_forward_clean", |b| {
        b.iter(|| {
            let ctx = EvalContext {
                ds: &f.ds,
                snapshots: &f.snapshots,
                history: &f.history,
                t: f.t,
            };
            std::hint::black_box(clean.score(&ctx, &f.queries));
        })
    });
    c.bench_function("fig2_forward_noisy_logcl", |b| {
        b.iter(|| {
            let ctx = EvalContext {
                ds: &f.ds,
                snapshots: &f.snapshots,
                history: &f.history,
                t: f.t,
            };
            std::hint::black_box(noisy.score(&ctx, &f.queries));
        })
    });
    c.bench_function("fig2_forward_noisy_tirgn", |b| {
        b.iter(|| {
            let ctx = EvalContext {
                ds: &f.ds,
                snapshots: &f.snapshots,
                history: &f.history,
                t: f.t,
            };
            std::hint::black_box(tirgn.score(&ctx, &f.queries));
        })
    });
}

/// Fig. 6: global encoder depth 1 vs 3.
fn bench_fig6(c: &mut Criterion) {
    let f = fixture();
    for layers in [1usize, 3] {
        let cfg = LogClConfig {
            global_layers: layers,
            ..tiny_cfg()
        };
        let mut model = LogCl::new(&f.ds, cfg);
        c.bench_function(&format!("fig6_forward_{layers}layers"), |b| {
            b.iter(|| {
                let shared = model.encode(&f.snapshots, f.t, true);
                std::hint::black_box(model.forward_queries(&shared, &f.history, &f.queries, true));
            })
        });
    }
}

/// Figs. 7 & 9: the contrastive loss under different strategies and
/// temperatures.
fn bench_fig7_fig9(c: &mut Criterion) {
    let mut rng = logcl_tensor::Rng::seed(5);
    let zl = logcl_tensor::Var::constant(logcl_tensor::Tensor::randn(&[64, 32], 1.0, &mut rng))
        .l2_normalize_rows();
    let zg = logcl_tensor::Var::constant(logcl_tensor::Tensor::randn(&[64, 32], 1.0, &mut rng))
        .l2_normalize_rows();
    for strategy in [ContrastStrategy::All, ContrastStrategy::Lg] {
        c.bench_function(&format!("fig7_contrast_{}", strategy.name()), |b| {
            b.iter(|| {
                std::hint::black_box(
                    logcl_core::contrast::contrastive_loss(&zl, &zg, 0.03, strategy).item(),
                )
            })
        });
    }
    c.bench_function("fig9_contrast_tau_sweep_unit", |b| {
        b.iter(|| {
            for tau in [0.01f32, 0.07, 1.0] {
                std::hint::black_box(
                    logcl_core::contrast::contrastive_loss(&zl, &zg, tau, ContrastStrategy::Lg)
                        .item(),
                );
            }
        })
    });
}

/// Fig. 8: the fusion at different λ.
fn bench_fig8(c: &mut Criterion) {
    let f = fixture();
    for lambda in [0.0f32, 0.9] {
        let cfg = LogClConfig {
            lambda,
            ..tiny_cfg()
        };
        let mut model = LogCl::new(&f.ds, cfg);
        c.bench_function(&format!("fig8_forward_lambda{lambda:.1}"), |b| {
            b.iter(|| {
                let shared = model.encode(&f.snapshots, f.t, true);
                std::hint::black_box(model.forward_queries(&shared, &f.history, &f.queries, true));
            })
        });
    }
}

/// Fig. 10: one online adaptation step (the unit the online protocol adds).
fn bench_fig10(c: &mut Criterion) {
    let f = fixture();
    let mut model = LogCl::new(&f.ds, tiny_cfg());
    c.bench_function("fig10_online_update_step", |b| {
        b.iter(|| {
            let ctx = EvalContext {
                ds: &f.ds,
                snapshots: &f.snapshots,
                history: &f.history,
                t: f.t,
            };
            model.online_update(&ctx, &f.queries);
        })
    });
}

criterion_group! {
    name = paper;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_table3, bench_table4, bench_table5, bench_table6, bench_table7,
              bench_fig2_fig5, bench_fig6, bench_fig7_fig9, bench_fig8, bench_fig10
}
criterion_main!(paper);
