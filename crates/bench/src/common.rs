//! Shared plumbing for the experiment binary: run configuration, model
//! fitting helpers, table rendering and JSON result dumps.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use logcl_baselines::BaselineKind;
use logcl_core::{evaluate, LogCl, LogClConfig, TkgModel, TrainOptions};
use logcl_tkg::eval::Metrics;
use logcl_tkg::{SyntheticPreset, TkgDataset};
use serde::Serialize;

/// Knobs every experiment shares, parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Dataset scale in `(0, 1]` (1.0 = the full DESIGN.md presets).
    pub scale: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Embedding dimensionality.
    pub dim: usize,
    /// ConvTransE kernels.
    pub channels: usize,
    /// Seed for model initialisation.
    pub seed: u64,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
    /// Optional preset filter (names like `icews14`).
    pub presets: Option<Vec<String>>,
    /// Optional model-name filter for table 3.
    pub models: Option<Vec<String>>,
    /// Tune LogCL's λ on the validation split (the paper's per-dataset
    /// hyper-parameter protocol); baselines keep their defaults.
    pub tune: bool,
    /// Seeds to average over (one full train+eval per seed per model).
    pub seeds: Vec<u64>,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            scale: 0.4,
            epochs: 6,
            dim: 48,
            channels: 16,
            seed: 42,
            out_dir: PathBuf::from("results"),
            presets: None,
            models: None,
            tune: false,
            seeds: vec![42],
        }
    }
}

impl RunConfig {
    /// Parses `--key value` style arguments.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--scale" => cfg.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
                "--epochs" => {
                    cfg.epochs = value("--epochs")?.parse().map_err(|e| format!("{e}"))?
                }
                "--dim" => cfg.dim = value("--dim")?.parse().map_err(|e| format!("{e}"))?,
                "--channels" => {
                    cfg.channels = value("--channels")?.parse().map_err(|e| format!("{e}"))?
                }
                "--seed" => cfg.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
                "--out" => cfg.out_dir = PathBuf::from(value("--out")?),
                "--presets" => {
                    cfg.presets = Some(
                        value("--presets")?
                            .split(',')
                            .map(|s| s.to_lowercase())
                            .collect(),
                    )
                }
                "--models" => {
                    cfg.models = Some(
                        value("--models")?
                            .split(',')
                            .map(|s| s.to_lowercase())
                            .collect(),
                    )
                }
                "--tune" => cfg.tune = true,
                "--seeds" => {
                    cfg.seeds = value("--seeds")?
                        .split(',')
                        .map(|x| x.parse().map_err(|e| format!("bad seed {x}: {e}")))
                        .collect::<Result<Vec<u64>, String>>()?;
                    if cfg.seeds.is_empty() {
                        return Err("--seeds needs at least one seed".into());
                    }
                }
                other => return Err(format!("unknown argument {other}")),
            }
        }
        if !(0.0..=1.0).contains(&cfg.scale) || cfg.scale == 0.0 {
            return Err("--scale must be in (0, 1]".into());
        }
        Ok(cfg)
    }

    /// The local history window per preset (paper: 7/7/9/7, scaled down
    /// with the rest of the reproduction).
    pub fn window(&self, preset: SyntheticPreset) -> usize {
        match preset {
            SyntheticPreset::Icews0515 => 6,
            _ => 4,
        }
    }

    /// The contrastive temperature per preset (paper: 0.03/0.03/0.07/0.07).
    pub fn tau(&self, preset: SyntheticPreset) -> f32 {
        match preset {
            SyntheticPreset::Icews14 | SyntheticPreset::Icews18 => 0.03,
            _ => 0.07,
        }
    }

    /// Generates a preset's dataset at the configured scale.
    pub fn dataset(&self, preset: SyntheticPreset) -> TkgDataset {
        preset.generate_scaled(self.scale)
    }

    /// Whether a preset passes the `--presets` filter.
    pub fn preset_enabled(&self, preset: SyntheticPreset) -> bool {
        match &self.presets {
            None => true,
            Some(list) => {
                let name = preset.name().to_lowercase();
                list.iter().any(|p| name.contains(p))
            }
        }
    }

    /// Whether a model passes the `--models` filter.
    pub fn model_enabled(&self, name: &str) -> bool {
        match &self.models {
            None => true,
            Some(list) => {
                let name = name.to_lowercase();
                list.iter().any(|m| name.contains(m))
            }
        }
    }

    /// Training options derived from the knobs.
    pub fn train_options(&self) -> TrainOptions {
        TrainOptions {
            epochs: self.epochs,
            ..Default::default()
        }
    }

    /// A LogCL config tuned for `preset` at this run's size.
    pub fn logcl_config(&self, preset: SyntheticPreset) -> LogClConfig {
        LogClConfig {
            dim: self.dim,
            time_bank: (self.dim / 4).max(4),
            channels: self.channels,
            m: self.window(preset),
            tau: self.tau(preset),
            seed: self.seed,
            ..Default::default()
        }
    }

    /// Builds a Table III roster model for `preset`.
    pub fn build_baseline(
        &self,
        kind: BaselineKind,
        ds: &TkgDataset,
        preset: SyntheticPreset,
    ) -> Box<dyn TkgModel> {
        if kind == BaselineKind::LogCl {
            Box::new(LogCl::new(ds, self.logcl_config(preset)))
        } else {
            kind.build(ds, self.dim, self.window(preset), self.channels, self.seed)
        }
    }
}

/// Trains LogCL over a small λ grid, selecting by validation MRR — the
/// paper's per-dataset hyper-parameter tuning, applied to our model only
/// (baselines run at their defaults, as the paper reports them).
pub fn fit_tuned_logcl(
    cfg: &RunConfig,
    ds: &TkgDataset,
    preset: SyntheticPreset,
    opts: &TrainOptions,
) -> LogCl {
    let mut best: Option<(f64, LogCl)> = None;
    for lambda in [0.7f32, 0.8, 0.9] {
        let config = LogClConfig {
            lambda,
            ..cfg.logcl_config(preset)
        };
        let mut model = LogCl::new(ds, config);
        model.fit(ds, opts).expect("training failed");
        let valid = evaluate(&mut model, ds, &ds.valid.clone());
        eprintln!("    LogCL λ={lambda}: valid {valid}");
        if best.as_ref().is_none_or(|(b, _)| valid.mrr > *b) {
            best = Some((valid.mrr, model));
        }
    }
    best.expect("at least one candidate").1
}

/// Element-wise mean of a set of metric measurements (equal weights; the
/// seed-averaged numbers the multi-seed runs report).
pub fn mean_metrics(ms: &[Metrics]) -> Metrics {
    assert!(!ms.is_empty(), "mean of no measurements");
    let n = ms.len() as f64;
    Metrics {
        mrr: ms.iter().map(|m| m.mrr).sum::<f64>() / n,
        hits1: ms.iter().map(|m| m.hits1).sum::<f64>() / n,
        hits3: ms.iter().map(|m| m.hits3).sum::<f64>() / n,
        hits10: ms.iter().map(|m| m.hits10).sum::<f64>() / n,
        count: ms[0].count,
    }
}

/// Fits and evaluates one model, logging wall time.
pub fn fit_and_eval(model: &mut dyn TkgModel, ds: &TkgDataset, opts: &TrainOptions) -> Metrics {
    let start = Instant::now();
    model.fit(ds, opts).expect("training failed");
    let train_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let metrics = evaluate(model, ds, &ds.test.clone());
    eprintln!(
        "    {} on {}: train {:.1}s, eval {:.1}s -> {}",
        model.name(),
        ds.name,
        train_secs,
        start.elapsed().as_secs_f64(),
        metrics
    );
    metrics
}

/// One labelled result row.
#[derive(Debug, Clone, Serialize)]
pub struct Row {
    /// Row label (model / variant / sweep value).
    pub label: String,
    /// Dataset name.
    pub dataset: String,
    /// The metrics.
    pub mrr: f64,
    /// Hits@1.
    pub hits1: f64,
    /// Hits@3.
    pub hits3: f64,
    /// Hits@10.
    pub hits10: f64,
}

impl Row {
    /// Builds a row from metrics.
    pub fn new(label: impl Into<String>, dataset: impl Into<String>, m: &Metrics) -> Self {
        Self {
            label: label.into(),
            dataset: dataset.into(),
            mrr: m.mrr,
            hits1: m.hits1,
            hits3: m.hits3,
            hits10: m.hits10,
        }
    }
}

/// Renders rows grouped by dataset as a paper-style text table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut by_ds: BTreeMap<&str, Vec<&Row>> = BTreeMap::new();
    for r in rows {
        by_ds.entry(r.dataset.as_str()).or_default().push(r);
    }
    for (ds, rows) in by_ds {
        println!("\n[{ds}]");
        println!(
            "{:<22} {:>7} {:>7} {:>7} {:>8}",
            "model", "MRR", "H@1", "H@3", "H@10"
        );
        for r in rows {
            println!(
                "{:<22} {:>7.2} {:>7.2} {:>7.2} {:>8.2}",
                r.label, r.mrr, r.hits1, r.hits3, r.hits10
            );
        }
    }
}

/// Dumps rows (plus the run config summary) as JSON under the out dir.
pub fn dump_json(cfg: &RunConfig, name: &str, rows: &[Row]) {
    #[derive(Serialize)]
    struct Dump<'a> {
        experiment: &'a str,
        scale: f64,
        epochs: usize,
        dim: usize,
        rows: &'a [Row],
    }
    let dump = Dump {
        experiment: name,
        scale: cfg.scale,
        epochs: cfg.epochs,
        dim: cfg.dim,
        rows,
    };
    if let Err(e) = fs::create_dir_all(&cfg.out_dir) {
        eprintln!("warning: cannot create {}: {e}", cfg.out_dir.display());
        return;
    }
    let path = cfg.out_dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(&dump) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                eprintln!("    wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: JSON serialisation failed: {e}"),
    }
}

/// The presets an experiment iterates, honouring the filter.
pub fn presets(cfg: &RunConfig, all: &[SyntheticPreset]) -> Vec<SyntheticPreset> {
    all.iter()
        .copied()
        .filter(|p| cfg.preset_enabled(*p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_accepts_every_flag() {
        let cfg = RunConfig::parse(&strs(&[
            "--scale",
            "0.5",
            "--epochs",
            "9",
            "--dim",
            "32",
            "--channels",
            "8",
            "--seed",
            "3",
            "--out",
            "/tmp/x",
            "--presets",
            "icews14,gdelt",
            "--models",
            "logcl",
            "--tune",
            "--seeds",
            "1,2,3",
        ]))
        .unwrap();
        assert_eq!(cfg.scale, 0.5);
        assert_eq!(cfg.epochs, 9);
        assert!(cfg.tune);
        assert_eq!(cfg.seeds, vec![1, 2, 3]);
        assert!(cfg.preset_enabled(SyntheticPreset::Icews14));
        assert!(!cfg.preset_enabled(SyntheticPreset::Icews18));
        assert!(cfg.model_enabled("LogCL"));
        assert!(!cfg.model_enabled("RE-GCN"));
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(RunConfig::parse(&strs(&["--scale", "0"])).is_err());
        assert!(RunConfig::parse(&strs(&["--bogus"])).is_err());
        assert!(RunConfig::parse(&strs(&["--epochs"])).is_err());
        assert!(RunConfig::parse(&strs(&["--seeds", "x"])).is_err());
    }

    #[test]
    fn paper_hyperparams_per_preset() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.window(SyntheticPreset::Icews0515), 6);
        assert_eq!(cfg.window(SyntheticPreset::Icews14), 4);
        assert_eq!(cfg.tau(SyntheticPreset::Icews14), 0.03);
        assert_eq!(cfg.tau(SyntheticPreset::Gdelt), 0.07);
    }

    #[test]
    fn mean_metrics_averages() {
        let a = Metrics {
            mrr: 10.0,
            hits1: 5.0,
            hits3: 10.0,
            hits10: 20.0,
            count: 4,
        };
        let b = Metrics {
            mrr: 30.0,
            hits1: 15.0,
            hits3: 30.0,
            hits10: 40.0,
            count: 4,
        };
        let m = mean_metrics(&[a, b]);
        assert_eq!(m.mrr, 20.0);
        assert_eq!(m.hits1, 10.0);
        assert_eq!(m.count, 4);
    }
}
