//! The experiment harness: regenerates every table and figure of the LogCL
//! paper's evaluation on the synthetic benchmark stand-ins.
//!
//! ```sh
//! cargo run --release -p logcl-bench --bin experiments -- table3 --scale 0.4 --epochs 6
//! cargo run --release -p logcl-bench --bin experiments -- all
//! ```
//!
//! Common flags: `--scale` (dataset scale, default 0.4), `--epochs`,
//! `--dim`, `--channels`, `--seed`, `--out <dir>` (JSON results),
//! `--presets icews14,gdelt`, `--models logcl,re-gcn`.

mod common;
mod exps;

use common::RunConfig;

const USAGE: &str = "usage: experiments <table3|table4|table5|table6|table7|fig2|fig5|fig6|fig7|fig8|fig9|fig10|all> [--scale S] [--epochs N] [--dim D] [--channels C] [--seed K] [--out DIR] [--presets a,b] [--models a,b]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let cfg = match RunConfig::parse(&args[1..]) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "run config: scale={} epochs={} dim={} channels={} seed={}",
        cfg.scale, cfg.epochs, cfg.dim, cfg.channels, cfg.seed
    );
    let start = std::time::Instant::now();
    match cmd.as_str() {
        "table3" => exps::table3::run(&cfg),
        "table4" => exps::table4::run(&cfg),
        "table5" => exps::table5::run(&cfg),
        "table6" => exps::table6::run(&cfg),
        "table7" => exps::table7::run(&cfg),
        "fig2" => exps::fig2::run(&cfg),
        "fig5" => exps::fig5::run(&cfg),
        "fig6" => exps::fig6::run(&cfg),
        "fig7" => exps::fig7::run(&cfg),
        "fig8" => exps::fig8::run(&cfg),
        "fig9" => exps::fig9::run(&cfg),
        "fig10" => exps::fig10::run(&cfg),
        "all" => {
            exps::table3::run(&cfg);
            exps::table4::run(&cfg);
            exps::table5::run(&cfg);
            exps::table6::run(&cfg);
            exps::table7::run(&cfg);
            exps::fig2::run(&cfg);
            exps::fig5::run(&cfg);
            exps::fig6::run(&cfg);
            exps::fig7::run(&cfg);
            exps::fig8::run(&cfg);
            exps::fig9::run(&cfg);
            exps::fig10::run(&cfg);
        }
        other => {
            eprintln!("unknown experiment {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
    eprintln!("\ntotal wall time: {:.1}s", start.elapsed().as_secs_f64());
}
