//! `bench` — microbenchmarks for the pluggable kernel backend.
//!
//! ```sh
//! cargo run --release -p logcl-bench --bin bench -- kernels
//! cargo run --release -p logcl-bench --bin bench -- epoch --threads 1,2,4
//! ```
//!
//! `bench kernels` times every major kernel entry point on each backend and
//! writes `BENCH_kernels.json`; `bench epoch` times a full training epoch
//! end to end and writes `BENCH_epoch.json`. Speedups are reported against
//! the serial backend — whose output every parallel run must also match
//! bit-for-bit, which this harness asserts as it measures.
//!
//! Records carry `host_threads` (the machine's available parallelism) so a
//! reader can tell a kernel that failed to scale from a host with nothing
//! to scale onto: on a single-core container every speedup is pinned ≈ 1.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use logcl_core::{LogCl, LogClConfig, TkgModel, TrainOptions};
use logcl_tensor::kernels::{ops, Backend, Parallel, Serial};
use logcl_tensor::{Rng, Tensor};
use logcl_tkg::SyntheticPreset;
use serde::Serialize;

const USAGE: &str = "usage: bench <kernels|epoch|ingest> [--threads 1,2,4] [--min-ms MS] \
                     [--scale S] [--dim D] [--epochs N] [--out DIR]";

/// One measurement row in the emitted JSON.
#[derive(Debug, Clone, Serialize)]
struct Record {
    /// Kernel or stage name (`matmul`, `train_epoch`, ...).
    op: String,
    /// Problem shape, human-readable.
    shape: String,
    /// Backend name (`serial` / `parallel`).
    backend: String,
    /// Compute threads the backend was built with.
    threads: usize,
    /// Mean wall time per iteration.
    ns_per_iter: f64,
    /// `serial ns_per_iter / this ns_per_iter` for the same op + shape.
    speedup_vs_serial: f64,
}

#[derive(Debug, Clone, Serialize)]
struct Dump {
    command: String,
    /// Available parallelism of the machine that produced the numbers.
    host_threads: usize,
    records: Vec<Record>,
}

#[derive(Debug, Clone)]
struct BenchConfig {
    threads: Vec<usize>,
    min_ms: u64,
    scale: f64,
    dim: usize,
    epochs: usize,
    out_dir: PathBuf,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            threads: vec![1, 2, 4],
            min_ms: 200,
            scale: 0.3,
            dim: 48,
            epochs: 1,
            out_dir: PathBuf::from("."),
        }
    }
}

impl BenchConfig {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut cfg = Self::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("missing value for {name}"))
            };
            match arg.as_str() {
                "--threads" => {
                    cfg.threads = value("--threads")?
                        .split(',')
                        .map(|x| x.parse().map_err(|e| format!("bad thread count {x}: {e}")))
                        .collect::<Result<Vec<usize>, String>>()?;
                    if cfg.threads.is_empty() || cfg.threads.contains(&0) {
                        return Err("--threads needs positive counts".into());
                    }
                }
                "--min-ms" => {
                    cfg.min_ms = value("--min-ms")?.parse().map_err(|e| format!("{e}"))?
                }
                "--scale" => cfg.scale = value("--scale")?.parse().map_err(|e| format!("{e}"))?,
                "--dim" => cfg.dim = value("--dim")?.parse().map_err(|e| format!("{e}"))?,
                "--epochs" => {
                    cfg.epochs = value("--epochs")?.parse().map_err(|e| format!("{e}"))?
                }
                "--out" => cfg.out_dir = PathBuf::from(value("--out")?),
                other => return Err(format!("unknown argument {other}")),
            }
        }
        if !cfg.threads.contains(&1) {
            // Speedups are defined against serial, so it always runs.
            cfg.threads.insert(0, 1);
        }
        cfg.threads.sort_unstable();
        cfg.threads.dedup();
        Ok(cfg)
    }

    fn backends(&self) -> Vec<Arc<dyn Backend>> {
        self.threads
            .iter()
            .map(|&t| -> Arc<dyn Backend> {
                if t == 1 {
                    Arc::new(Serial)
                } else {
                    Arc::new(Parallel::new(t))
                }
            })
            .collect()
    }
}

fn host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `f` repeatedly for at least `min_ms` (after one warmup call) and
/// returns the mean wall time per call in nanoseconds.
fn time_ns(min_ms: u64, mut f: impl FnMut()) -> f64 {
    f(); // warmup: faults pages, primes the pool
    let budget = Duration::from_millis(min_ms);
    let start = Instant::now();
    let mut iters: u64 = 0;
    while start.elapsed() < budget {
        f();
        iters += 1;
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn randn(n: usize, rng: &mut Rng) -> Vec<f32> {
    Tensor::randn(&[n], 1.0, rng).data().to_vec()
}

/// One kernel case: a name, a shape label, and a runner returning the
/// output (used both for timing and for the serial bit-identity check).
type KernelRun = Box<dyn Fn(&dyn Backend) -> Vec<f32>>;

struct Case {
    op: &'static str,
    shape: String,
    run: KernelRun,
}

fn kernel_cases() -> Vec<Case> {
    let mut rng = Rng::seed(7);
    let a256 = randn(256 * 256, &mut rng);
    let b256 = randn(256 * 256, &mut rng);
    let a_tall = randn(4096 * 64, &mut rng);
    let b_small = randn(64 * 64, &mut rng);
    let x1m = randn(1 << 20, &mut rng);
    let y1m = randn(1 << 20, &mut rng);
    let soft = randn(512 * 512, &mut rng);
    let table = randn(4096 * 64, &mut rng);
    // Deterministic pseudo-random row indices (Knuth multiplicative hash).
    let idx: Vec<usize> = (0..65536usize)
        .map(|i| (i.wrapping_mul(2654435761)) % 4096)
        .collect();
    let scatter_src = randn(65536 * 64, &mut rng);

    vec![
        Case {
            op: "matmul",
            shape: "256x256 . 256x256".into(),
            run: {
                let (a, b) = (a256.clone(), b256.clone());
                Box::new(move |bk| ops::matmul(bk, &a, &b, 256, 256, 256))
            },
        },
        Case {
            op: "matmul",
            shape: "4096x64 . 64x64".into(),
            run: {
                let (a, b) = (a_tall.clone(), b_small.clone());
                Box::new(move |bk| ops::matmul(bk, &a, &b, 4096, 64, 64))
            },
        },
        Case {
            op: "matmul_sparse_lhs",
            shape: "4096x64 . 64x64".into(),
            run: {
                let (a, b) = (a_tall, b_small);
                Box::new(move |bk| ops::matmul_sparse_lhs(bk, &a, &b, 4096, 64, 64))
            },
        },
        Case {
            op: "unary_sigmoid",
            shape: "1048576".into(),
            run: {
                let x = x1m.clone();
                Box::new(move |bk| ops::unary(bk, logcl_tensor::kernels::Unary::Sigmoid, &x))
            },
        },
        Case {
            op: "binary_add",
            shape: "1048576".into(),
            run: {
                let (x, y) = (x1m.clone(), y1m);
                Box::new(move |bk| ops::binary(bk, logcl_tensor::kernels::Binary::Add, &x, &y))
            },
        },
        Case {
            op: "sum",
            shape: "1048576".into(),
            run: {
                let x = x1m;
                Box::new(move |bk| vec![ops::sum(bk, &x)])
            },
        },
        Case {
            op: "softmax_rows",
            shape: "512x512".into(),
            run: {
                let x = soft;
                Box::new(move |bk| ops::softmax_rows(bk, &x, 512, 512))
            },
        },
        Case {
            op: "gather_rows",
            shape: "65536 of 4096x64".into(),
            run: {
                let (x, idx) = (table, idx.clone());
                Box::new(move |bk| ops::gather_rows(bk, &x, 64, &idx))
            },
        },
        Case {
            op: "scatter_add_rows",
            shape: "65536 -> 4096x64".into(),
            run: {
                let (src, idx) = (scatter_src, idx);
                Box::new(move |bk| ops::scatter_add_rows(bk, &src, 64, &idx, 4096))
            },
        },
    ]
}

fn bench_kernels(cfg: &BenchConfig) -> Vec<Record> {
    let backends = cfg.backends();
    let mut records = Vec::new();
    for case in kernel_cases() {
        let reference = (case.run)(&Serial);
        let mut serial_ns = f64::NAN;
        for bk in &backends {
            // Bit-identity is part of the backend contract; assert it on the
            // exact inputs being timed before trusting the numbers.
            let got = (case.run)(bk.as_ref());
            assert_eq!(got.len(), reference.len(), "{}: length mismatch", case.op);
            for (i, (g, r)) in got.iter().zip(&reference).enumerate() {
                assert_eq!(
                    g.to_bits(),
                    r.to_bits(),
                    "{} [{}] diverged from serial at element {i} on {} threads",
                    case.op,
                    case.shape,
                    bk.threads()
                );
            }
            let ns = time_ns(cfg.min_ms, || {
                std::hint::black_box((case.run)(bk.as_ref()));
            });
            if bk.threads() == 1 {
                serial_ns = ns;
            }
            let record = Record {
                op: case.op.into(),
                shape: case.shape.clone(),
                backend: bk.name().into(),
                threads: bk.threads(),
                ns_per_iter: ns,
                speedup_vs_serial: serial_ns / ns,
            };
            eprintln!(
                "  {:<18} {:<20} {:>8} t={:<2} {:>12.0} ns/iter  {:>5.2}x",
                record.op,
                record.shape,
                record.backend,
                record.threads,
                record.ns_per_iter,
                record.speedup_vs_serial
            );
            records.push(record);
        }
    }
    records
}

fn bench_epoch(cfg: &BenchConfig) -> Vec<Record> {
    let ds = SyntheticPreset::Icews14.generate_scaled(cfg.scale);
    eprintln!("  dataset: {ds}");
    let shape = format!(
        "icews14@{} dim={} epochs={}",
        cfg.scale, cfg.dim, cfg.epochs
    );
    let opts = TrainOptions {
        epochs: cfg.epochs,
        verbose: false,
        ..Default::default()
    };
    let mut records = Vec::new();
    let mut serial_ns = f64::NAN;
    for &t in &cfg.threads {
        let model_cfg = LogClConfig {
            dim: cfg.dim,
            time_bank: (cfg.dim / 4).max(4),
            m: 4,
            threads: t,
            ..Default::default()
        };
        // `LogCl::new` selects the process-wide backend from the config.
        let mut model = LogCl::new(&ds, model_cfg);
        let start = Instant::now();
        model.fit(&ds, &opts).expect("training failed");
        let ns = start.elapsed().as_nanos() as f64 / cfg.epochs as f64;
        if t == 1 {
            serial_ns = ns;
        }
        let record = Record {
            op: "train_epoch".into(),
            shape: shape.clone(),
            backend: if t == 1 { "serial" } else { "parallel" }.into(),
            threads: t,
            ns_per_iter: ns,
            speedup_vs_serial: serial_ns / ns,
        };
        eprintln!(
            "  {:<18} {:>8} t={:<2} {:>12.0} ns/epoch  {:>5.2}x",
            record.op, record.backend, record.threads, record.ns_per_iter, record.speedup_vs_serial
        );
        records.push(record);
    }
    records
}

/// Incremental streaming ingest vs from-scratch re-encode, at growing
/// history depths.
///
/// `advance` is the serving ingest path: one [`LogCl::advance_encoder_state`]
/// plus one [`HistoryIndex::advance`] absorbing a head snapshot into live
/// structures — O(|Δ|) whatever the depth. `reencode` builds the same two
/// structures from scratch over the full prefix ([`LogCl::init_encoder_state`]
/// and [`HistoryIndex::build`]) — O(T·|Δ|), the cost every head append would
/// pay without the streaming refactor (and what the rare backfill path
/// still pays). The `speedup_vs_serial` column on `advance` rows is
/// re-encode time over advance time at the same depth; O(Δ) holds iff it
/// grows linearly with depth.
fn bench_ingest(cfg: &BenchConfig) -> Vec<Record> {
    let ds = SyntheticPreset::Icews14.generate_scaled(cfg.scale);
    eprintln!("  dataset: {ds}");
    let snapshots = ds.snapshots();
    let depths: Vec<usize> = [4, 8, 16, 32, 64]
        .into_iter()
        .filter(|&d| d <= ds.num_times)
        .collect();
    let model_cfg = LogClConfig {
        dim: cfg.dim,
        time_bank: (cfg.dim / 4).max(4),
        m: 4,
        threads: 1,
        ..Default::default()
    };
    let mut model = LogCl::new(&ds, model_cfg);
    let mut records = Vec::new();
    for &depth in &depths {
        let delta_edges = snapshots[depth - 1].edges.len();
        let shape = format!("depth={depth} dim={} |delta|={delta_edges}", cfg.dim);

        // From-scratch path: rebuild streaming state + history index over
        // the whole prefix, as every ingest did before the refactor.
        let reencode_ns = time_ns(cfg.min_ms, || {
            std::hint::black_box(model.init_encoder_state(&snapshots[..depth]));
            std::hint::black_box(logcl_tkg::HistoryIndex::build(&snapshots[..depth]));
        });

        // Streaming path: absorb one head snapshot into live state. The
        // delta keeps the depth-(T-1) snapshot's edge list but must carry a
        // strictly increasing timestamp ([`HistoryIndex::advance`] enforces
        // time order), so the horizon walks forward across iterations while
        // every iteration still pays exactly one O(|Δ|) absorb.
        let mut state = model.init_encoder_state(&snapshots[..depth - 1]);
        let mut history = logcl_tkg::HistoryIndex::build(&snapshots[..depth - 1]);
        let mut delta = snapshots[depth - 1].clone();
        let advance_ns = time_ns(cfg.min_ms, || {
            model.advance_encoder_state(&mut state, &delta);
            history.advance(&delta);
            delta.t += 1;
        });

        for (op, backend, ns, speedup) in [
            ("ingest", "reencode", reencode_ns, 1.0),
            ("ingest", "advance", advance_ns, reencode_ns / advance_ns),
        ] {
            let record = Record {
                op: op.into(),
                shape: shape.clone(),
                backend: backend.into(),
                threads: 1,
                ns_per_iter: ns,
                speedup_vs_serial: speedup,
            };
            eprintln!(
                "  {:<18} {:<28} {:>8} {:>12.0} ns/ingest  {:>6.2}x",
                record.op,
                record.shape,
                record.backend,
                record.ns_per_iter,
                record.speedup_vs_serial
            );
            records.push(record);
        }
    }
    records
}

fn write_dump(cfg: &BenchConfig, name: &str, command: &str, records: Vec<Record>) {
    let dump = Dump {
        command: command.into(),
        host_threads: host_threads(),
        records,
    };
    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!("warning: cannot create {}: {e}", cfg.out_dir.display());
        return;
    }
    let path = cfg.out_dir.join(name);
    let json = serde_json::to_string_pretty(&dump).expect("serialise records");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };
    let cfg = match BenchConfig::parse(&args[1..]) {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            std::process::exit(2);
        }
    };
    eprintln!(
        "bench {cmd}: threads={:?} host_threads={}",
        cfg.threads,
        host_threads()
    );
    match cmd.as_str() {
        "kernels" => {
            let records = bench_kernels(&cfg);
            write_dump(&cfg, "BENCH_kernels.json", "kernels", records);
        }
        "epoch" => {
            let records = bench_epoch(&cfg);
            write_dump(&cfg, "BENCH_epoch.json", "epoch", records);
        }
        "ingest" => {
            let records = bench_ingest(&cfg);
            write_dump(&cfg, "BENCH_ingest.json", "ingest", records);
        }
        other => {
            eprintln!("unknown command {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
