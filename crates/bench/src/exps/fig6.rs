//! Fig. 6 — depth of the R-GCN in the global entity-aware attention
//! encoder (1–4 layers = subgraph hops) on ICEWS14/18 stand-ins.

use logcl_core::{LogCl, LogClConfig};
use logcl_tkg::SyntheticPreset;

use crate::common::{dump_json, fit_and_eval, presets, print_table, Row, RunConfig};

const PRESETS: [SyntheticPreset; 2] = [SyntheticPreset::Icews14, SyntheticPreset::Icews18];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[fig6] {ds}");
        for layers in 1..=4usize {
            let config = LogClConfig {
                global_layers: layers,
                ..cfg.logcl_config(preset)
            };
            let mut model = LogCl::new(&ds, config);
            let metrics = fit_and_eval(&mut model, &ds, &cfg.train_options());
            rows.push(Row::new(
                format!("{layers} layer(s)"),
                preset.name(),
                &metrics,
            ));
        }
    }
    print_table("Fig. 6: global-encoder R-GCN depth", &rows);
    dump_json(cfg, "fig6", &rows);
    println!(
        "\nExpected shape (paper): 2 layers (two hops) beat 1; deeper than 2 \
         plateaus on ICEWS14 and hurts on ICEWS18."
    );
}
