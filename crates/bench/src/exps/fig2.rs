//! Fig. 2 — the motivating robustness probe: RE-GCN, TiRGN and LogCL
//! evaluated clean versus with Gaussian noise on the entity inputs, on the
//! ICEWS14 and ICEWS18 stand-ins.

use logcl_baselines::{ReGcn, TirgnLite};
use logcl_core::{LogCl, LogClConfig, TkgModel};
use logcl_tkg::{NoiseSpec, SyntheticPreset};

use crate::common::{dump_json, fit_and_eval, presets, Row, RunConfig};

const PRESETS: [SyntheticPreset; 2] = [SyntheticPreset::Icews14, SyntheticPreset::Icews18];
const NOISE_STD: f32 = 1.0;

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    println!("\n=== Fig. 2: MRR degradation under Gaussian noise (σ={NOISE_STD}) ===");
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[fig2] {ds}");
        println!("\n[{}]", preset.name());
        println!(
            "{:<10} {:>10} {:>10} {:>9}",
            "model", "clean MRR", "noisy MRR", "drop %"
        );
        for which in ["RE-GCN", "TiRGN", "LogCL"] {
            if !cfg.model_enabled(which) {
                continue;
            }
            let mut results = Vec::new();
            for noise in [NoiseSpec::CLEAN, NoiseSpec::with_std(NOISE_STD)] {
                let mut model: Box<dyn TkgModel> = match which {
                    "RE-GCN" => {
                        let mut m =
                            ReGcn::new(&ds, cfg.dim, cfg.window(preset), cfg.channels, cfg.seed);
                        m.noise = noise;
                        Box::new(m)
                    }
                    "TiRGN" => {
                        let mut m = TirgnLite::new(
                            &ds,
                            cfg.dim,
                            cfg.window(preset),
                            cfg.channels,
                            cfg.seed,
                        );
                        m.noise = noise;
                        Box::new(m)
                    }
                    _ => {
                        let config = LogClConfig {
                            noise,
                            ..cfg.logcl_config(preset)
                        };
                        Box::new(LogCl::new(&ds, config))
                    }
                };
                let metrics = fit_and_eval(model.as_mut(), &ds, &cfg.train_options());
                let tag = if noise.is_clean() { "clean" } else { "noisy" };
                rows.push(Row::new(
                    format!("{which} ({tag})"),
                    preset.name(),
                    &metrics,
                ));
                results.push(metrics.mrr);
            }
            let drop = 100.0 * (results[0] - results[1]) / results[0].max(1e-9);
            println!(
                "{:<10} {:>10.2} {:>10.2} {:>8.1}%",
                which, results[0], results[1], drop
            );
        }
    }
    dump_json(cfg, "fig2", &rows);
    println!(
        "\nExpected shape (paper): all models degrade; RE-GCN collapses hardest, \
         TiRGN less, LogCL least (its contrast module filters the noise)."
    );
}
