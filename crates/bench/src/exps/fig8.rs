//! Fig. 8 — the λ sweep: trading off local versus global representations
//! in the decoder fusion (Eq. 19) on ICEWS14/18 stand-ins.
//!
//! λ is the *local* share (Fig. 8's orientation; see DESIGN.md on the
//! paper's inconsistency): λ = 0 is purely global, λ = 1 purely local.

use logcl_core::{LogCl, LogClConfig};
use logcl_tkg::SyntheticPreset;

use crate::common::{dump_json, fit_and_eval, presets, print_table, Row, RunConfig};

const PRESETS: [SyntheticPreset; 2] = [SyntheticPreset::Icews14, SyntheticPreset::Icews18];
const LAMBDAS: [f32; 6] = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[fig8] {ds}");
        for lambda in LAMBDAS {
            let config = LogClConfig {
                lambda,
                ..cfg.logcl_config(preset)
            };
            let mut model = LogCl::new(&ds, config);
            let metrics = fit_and_eval(&mut model, &ds, &cfg.train_options());
            rows.push(Row::new(format!("λ={lambda:.1}"), preset.name(), &metrics));
        }
    }
    print_table("Fig. 8: λ (local share) sweep", &rows);
    dump_json(cfg, "fig8", &rows);
    println!(
        "\nExpected shape (paper): performance rises then falls — neither pure \
         local (λ=1) nor pure global (λ=0) wins; a high-but-not-total local \
         share is best."
    );
}
