//! One module per table/figure of the paper's evaluation section.

pub mod fig10;
pub mod fig2;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
