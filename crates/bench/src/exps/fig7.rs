//! Fig. 7 — query-contrast strategy study: training with only one of
//! `L_lg`, `L_gl`, `L_ll`, `L_gg` on ICEWS14/18 stand-ins.

use logcl_core::{ContrastStrategy, LogCl, LogClConfig};
use logcl_tkg::SyntheticPreset;

use crate::common::{dump_json, fit_and_eval, presets, print_table, Row, RunConfig};

const PRESETS: [SyntheticPreset; 2] = [SyntheticPreset::Icews14, SyntheticPreset::Icews18];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[fig7] {ds}");
        for strategy in ContrastStrategy::SINGLES {
            let config = LogClConfig {
                contrast: strategy,
                ..cfg.logcl_config(preset)
            };
            let mut model = LogCl::new(&ds, config);
            let metrics = fit_and_eval(&mut model, &ds, &cfg.train_options());
            rows.push(Row::new(strategy.name(), preset.name(), &metrics));
        }
    }
    print_table("Fig. 7: query-contrast strategies (MRR / Hits@1)", &rows);
    dump_json(cfg, "fig7", &rows);
    println!(
        "\nExpected shape (paper): the cross-view losses (lg, gl) edge out the \
         within-view ones (ll, gg) — contrasting local against global is what \
         pays."
    );
}
