//! Table III — main results: MRR / Hits@1/3/10 for the whole model roster
//! on all four benchmark stand-ins, time-aware filtered.

use logcl_baselines::BaselineKind;
use logcl_tkg::SyntheticPreset;

use crate::common::{
    dump_json, fit_and_eval, fit_tuned_logcl, mean_metrics, presets, print_table, Row, RunConfig,
};
use logcl_core::evaluate;

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &SyntheticPreset::ALL) {
        let ds = cfg.dataset(preset);
        eprintln!("[table3] {ds}");
        for kind in BaselineKind::TABLE3 {
            if !cfg.model_enabled(kind.name()) {
                continue;
            }
            let mut runs = Vec::with_capacity(cfg.seeds.len());
            for &seed in &cfg.seeds {
                let mut cfg_seed = cfg.clone();
                cfg_seed.seed = seed;
                let m = if kind == BaselineKind::LogCl && cfg.tune {
                    let mut model =
                        fit_tuned_logcl(&cfg_seed, &ds, preset, &cfg_seed.train_options());
                    let m = evaluate(&mut model, &ds, &ds.test.clone());
                    eprintln!("    LogCL (tuned, seed {seed}) on {}: {m}", ds.name);
                    m
                } else {
                    let mut model = cfg_seed.build_baseline(kind, &ds, preset);
                    fit_and_eval(model.as_mut(), &ds, &cfg_seed.train_options())
                };
                runs.push(m);
            }
            let metrics = mean_metrics(&runs);
            rows.push(Row::new(
                format!("{:<14} [{}]", kind.name(), kind.category()),
                preset.name(),
                &metrics,
            ));
        }
    }
    print_table("Table III: main results (time-aware filtered)", &rows);
    dump_json(cfg, "table3", &rows);
    println!(
        "\nExpected shape (paper): Static < Interpolation < single-view \
         extrapolation < local+global (TiRGN) < LogCL, on every dataset."
    );
}
