//! Fig. 10 — online training: CEN, RETIA (≈ RE-GCN with online updates,
//! see DESIGN.md) and LogCL, offline versus online, on ICEWS14/18/05-15
//! stand-ins.

use logcl_baselines::{CenLite, ReGcn};
use logcl_core::{evaluate, evaluate_online, LogCl, TkgModel};
use logcl_tkg::{SyntheticPreset, TkgDataset};

use crate::common::{dump_json, presets, Row, RunConfig};

const PRESETS: [SyntheticPreset; 3] = [
    SyntheticPreset::Icews14,
    SyntheticPreset::Icews18,
    SyntheticPreset::Icews0515,
];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    println!("\n=== Fig. 10: offline vs online training (MRR / Hits@1) ===");
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[fig10] {ds}");
        println!("\n[{}]", preset.name());
        println!(
            "{:<8} {:>9} {:>8} | {:>9} {:>8}",
            "model", "off MRR", "off H@1", "on MRR", "on H@1"
        );
        for which in ["CEN", "RETIA", "LogCL"] {
            if !cfg.model_enabled(which) {
                continue;
            }
            let build = |ds: &TkgDataset| -> Box<dyn TkgModel> {
                match which {
                    "CEN" => Box::new(CenLite::new(
                        ds,
                        cfg.dim,
                        cfg.window(preset),
                        cfg.channels,
                        cfg.seed,
                    )),
                    "RETIA" => Box::new(ReGcn::new(
                        ds,
                        cfg.dim,
                        cfg.window(preset),
                        cfg.channels,
                        cfg.seed,
                    )),
                    _ => Box::new(LogCl::new(ds, cfg.logcl_config(preset))),
                }
            };
            let test = ds.test.clone();
            let mut offline = build(&ds);
            offline
                .fit(&ds, &cfg.train_options())
                .expect("training failed");
            let m_off = evaluate(offline.as_mut(), &ds, &test);
            let mut online = build(&ds);
            online
                .fit(&ds, &cfg.train_options())
                .expect("training failed");
            let m_on = evaluate_online(online.as_mut(), &ds, &test);
            println!(
                "{:<8} {:>9.2} {:>8.2} | {:>9.2} {:>8.2}",
                which, m_off.mrr, m_off.hits1, m_on.mrr, m_on.hits1
            );
            rows.push(Row::new(
                format!("{which} (offline)"),
                preset.name(),
                &m_off,
            ));
            rows.push(Row::new(format!("{which} (online)"), preset.name(), &m_on));
        }
    }
    dump_json(cfg, "fig10", &rows);
    println!(
        "\nExpected shape (paper): online beats offline for every model \
         (emerging facts get absorbed), and LogCL gains the most."
    );
}
