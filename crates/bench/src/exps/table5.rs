//! Table V — swapping the relational GNN inside both encoders: R-GCN,
//! CompGCN-sub, CompGCN-mult, KBGAT.

use logcl_core::{LogCl, LogClConfig};
use logcl_gnn::AggregatorKind;
use logcl_tkg::SyntheticPreset;

use crate::common::{dump_json, fit_and_eval, presets, print_table, Row, RunConfig};

const PRESETS: [SyntheticPreset; 3] = [
    SyntheticPreset::Icews14,
    SyntheticPreset::Icews18,
    SyntheticPreset::Icews0515,
];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[table5] {ds}");
        for kind in AggregatorKind::ALL {
            if !cfg.model_enabled(kind.name()) {
                continue;
            }
            let config = LogClConfig {
                aggregator: kind,
                ..cfg.logcl_config(preset)
            };
            let mut model = LogCl::new(&ds, config);
            let metrics = fit_and_eval(&mut model, &ds, &cfg.train_options());
            rows.push(Row::new(
                format!("LogCL ({})", kind.name()),
                preset.name(),
                &metrics,
            ));
        }
    }
    print_table("Table V: GNN aggregator study", &rows);
    dump_json(cfg, "table5", &rows);
    println!(
        "\nExpected shape (paper): all four aggregators land close together, \
         with R-GCN strongest overall."
    );
}
