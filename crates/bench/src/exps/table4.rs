//! Table IV — ablation study: LogCL against LogCL-G, LogCL-L,
//! LogCL-w/o-eatt (and its one-encoder combinations) and LogCL-w/o-cl.

use logcl_core::{LogCl, LogClConfig};
use logcl_tkg::SyntheticPreset;

use crate::common::{dump_json, fit_and_eval, presets, print_table, Row, RunConfig};

const PRESETS: [SyntheticPreset; 3] = [
    SyntheticPreset::Icews14,
    SyntheticPreset::Icews18,
    SyntheticPreset::Icews0515,
];

/// The paper's seven Table IV variants applied to a base config.
pub fn variants(base: &LogClConfig) -> Vec<LogClConfig> {
    vec![
        base.clone(),
        base.clone().without_local(),
        base.clone().without_global(),
        base.clone().without_entity_attention(),
        base.clone().without_local().without_entity_attention(),
        base.clone().without_global().without_entity_attention(),
        base.clone().without_contrast(),
    ]
}

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[table4] {ds}");
        for variant in variants(&cfg.logcl_config(preset)) {
            let name = variant.variant_name();
            if !cfg.model_enabled(&name) {
                continue;
            }
            let mut model = LogCl::new(&ds, variant);
            let metrics = fit_and_eval(&mut model, &ds, &cfg.train_options());
            rows.push(Row::new(name, preset.name(), &metrics));
        }
    }
    print_table("Table IV: ablation study", &rows);
    dump_json(cfg, "table4", &rows);
    println!(
        "\nExpected shape (paper): every ablation hurts; removing entity-aware \
         attention hurts most, removing the global encoder hurts more than \
         removing the local one is *not* the case — LogCL-G (no local) is the \
         weaker single-encoder variant."
    );
}
