//! Table VII — the two-phase propagation study: the full protocol versus
//! evaluating only the original query set (LogCL-FP) or only the inverse
//! query set (LogCL-SP).

use logcl_core::{evaluate_with_phase, LogCl, Phase, TkgModel};
use logcl_tkg::SyntheticPreset;

use crate::common::{dump_json, presets, print_table, Row, RunConfig};

const PRESETS: [SyntheticPreset; 3] = [
    SyntheticPreset::Icews14,
    SyntheticPreset::Icews18,
    SyntheticPreset::Icews0515,
];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[table7] {ds}");
        let mut model = LogCl::new(&ds, cfg.logcl_config(preset));
        model
            .fit(&ds, &cfg.train_options())
            .expect("training failed");
        let test = ds.test.clone();
        for (label, phase) in [
            ("LogCL", Phase::Both),
            ("LogCL-FP", Phase::FirstOnly),
            ("LogCL-SP", Phase::SecondOnly),
        ] {
            let metrics = evaluate_with_phase(&mut model, &ds, &test, phase, false);
            eprintln!("    {label}: {metrics}");
            rows.push(Row::new(label, preset.name(), &metrics));
        }
    }
    print_table("Table VII: two-phase propagation", &rows);
    dump_json(cfg, "table7", &rows);
    println!(
        "\nExpected shape (paper): LogCL-FP (original queries) > LogCL (both) > \
         LogCL-SP (inverse queries): the inverse-query set carries a direction \
         bias."
    );
}
