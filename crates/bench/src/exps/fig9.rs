//! Fig. 9 — the temperature sweep: contrastive τ on ICEWS14/18 stand-ins.

use logcl_core::{LogCl, LogClConfig};
use logcl_tkg::SyntheticPreset;

use crate::common::{dump_json, fit_and_eval, presets, print_table, Row, RunConfig};

const PRESETS: [SyntheticPreset; 2] = [SyntheticPreset::Icews14, SyntheticPreset::Icews18];
const TAUS: [f32; 6] = [0.01, 0.03, 0.07, 0.1, 0.3, 1.0];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[fig9] {ds}");
        for tau in TAUS {
            let config = LogClConfig {
                tau,
                ..cfg.logcl_config(preset)
            };
            let mut model = LogCl::new(&ds, config);
            let metrics = fit_and_eval(&mut model, &ds, &cfg.train_options());
            rows.push(Row::new(format!("τ={tau}"), preset.name(), &metrics));
        }
    }
    print_table("Fig. 9: temperature τ sweep", &rows);
    dump_json(cfg, "fig9", &rows);
    println!(
        "\nExpected shape (paper): a dataset-dependent sweet spot at small τ \
         (0.03–0.07); very large τ flattens the contrast and drifts toward \
         the w/o-cl result."
    );
}
