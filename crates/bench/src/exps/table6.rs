//! Table VI — case study: top-5 predictions of LogCL, LogCL-w/o-eatt and
//! LogCL-w/o-cl on two concrete test queries, with readable names.

use logcl_core::{predict_topk, LogCl, TkgModel};
use logcl_tkg::{Quad, SyntheticPreset, TkgDataset};

use crate::common::RunConfig;

/// Picks case-study queries: test facts whose `(s, r)` has training history
/// (so the models have something to reason from), preferring named actors
/// echoing the paper's China/Iran examples.
fn pick_queries(ds: &TkgDataset, n: usize) -> Vec<Quad> {
    let mut picked = Vec::new();
    let has_history = |q: &Quad| ds.train.iter().filter(|p| p.s == q.s && p.r == q.r).count() >= 2;
    // Preferred actors, in homage to the paper's case study.
    for want in ["China", "Iran"] {
        if let Some(q) = ds
            .test
            .iter()
            .find(|q| ds.entity_name(q.s).starts_with(want) && has_history(q))
        {
            picked.push(*q);
        }
    }
    for q in ds.test.iter() {
        if picked.len() >= n {
            break;
        }
        if has_history(q) && !picked.contains(q) {
            picked.push(*q);
        }
    }
    picked.truncate(n);
    picked
}

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let preset = SyntheticPreset::Icews14;
    let ds = cfg.dataset(preset);
    eprintln!("[table6] {ds}");
    let opts = cfg.train_options();

    let base = cfg.logcl_config(preset);
    let mut full = LogCl::new(&ds, base.clone());
    full.fit(&ds, &opts).expect("training failed");
    let mut no_eatt = LogCl::new(&ds, base.clone().without_entity_attention());
    no_eatt.fit(&ds, &opts).expect("training failed");
    let mut no_cl = LogCl::new(&ds, base.without_contrast());
    no_cl.fit(&ds, &opts).expect("training failed");

    println!("\n=== Table VI: case study (top-5 predictions) ===");
    for q in pick_queries(&ds, 2) {
        println!(
            "\nQuery: ({}, {}, ?, t={})   Answer: {}",
            ds.entity_name(q.s),
            ds.rel_name(q.r),
            q.t,
            ds.entity_name(q.o)
        );
        for (label, model) in [
            ("LogCL", &mut full as &mut dyn TkgModel),
            ("LogCL-w/o-eatt", &mut no_eatt as &mut dyn TkgModel),
            ("LogCL-w/o-cl", &mut no_cl as &mut dyn TkgModel),
        ] {
            let preds = predict_topk(model, &ds, q.s, q.r, q.t, 5).expect("prediction failed");
            println!("  {label}:");
            for p in preds {
                let marker = if p.entity == q.o { "  <- answer" } else { "" };
                println!("    {:<28} {:.3}{marker}", p.name, p.probability);
            }
        }
    }
    println!(
        "\nExpected shape (paper): the full model ranks the answer highest and \
         most confidently; -w/o-eatt misses or down-ranks answers that need \
         query-relevant snapshot selection."
    );
}
