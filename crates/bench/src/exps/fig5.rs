//! Fig. 5 — noise-intensity sweep: LogCL versus LogCL-w/o-cl at four
//! Gaussian noise levels on ICEWS14/18/05-15 stand-ins (MRR and Hits@1).

use logcl_core::{LogCl, LogClConfig};
use logcl_tkg::{NoiseSpec, SyntheticPreset};

use crate::common::{dump_json, fit_and_eval, presets, Row, RunConfig};

const PRESETS: [SyntheticPreset; 3] = [
    SyntheticPreset::Icews14,
    SyntheticPreset::Icews18,
    SyntheticPreset::Icews0515,
];

/// Runs the experiment.
pub fn run(cfg: &RunConfig) {
    let mut rows = Vec::new();
    println!("\n=== Fig. 5: noise-intensity sweep, LogCL vs LogCL-w/o-cl ===");
    for preset in presets(cfg, &PRESETS) {
        let ds = cfg.dataset(preset);
        eprintln!("[fig5] {ds}");
        println!("\n[{}]", preset.name());
        println!(
            "{:<10} {:>9} {:>8} | {:>12} {:>8}",
            "noise σ", "LogCL MRR", "H@1", "w/o-cl MRR", "H@1"
        );
        for noise in NoiseSpec::fig5_sweep() {
            let mut with_cl = LogCl::new(
                &ds,
                LogClConfig {
                    noise,
                    ..cfg.logcl_config(preset)
                },
            );
            let m_cl = fit_and_eval(&mut with_cl, &ds, &cfg.train_options());
            let mut without = LogCl::new(
                &ds,
                LogClConfig {
                    noise,
                    ..cfg.logcl_config(preset).without_contrast()
                },
            );
            let m_no = fit_and_eval(&mut without, &ds, &cfg.train_options());
            println!(
                "{:<10.3} {:>9.2} {:>8.2} | {:>12.2} {:>8.2}",
                noise.std, m_cl.mrr, m_cl.hits1, m_no.mrr, m_no.hits1
            );
            rows.push(Row::new(
                format!("LogCL σ={:.3}", noise.std),
                preset.name(),
                &m_cl,
            ));
            rows.push(Row::new(
                format!("LogCL-w/o-cl σ={:.3}", noise.std),
                preset.name(),
                &m_no,
            ));
        }
    }
    dump_json(cfg, "fig5", &rows);
    println!(
        "\nExpected shape (paper): both columns fall as σ grows, the w/o-cl \
         column faster — the query-contrast module buys noise resistance."
    );
}
