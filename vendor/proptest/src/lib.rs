//! Offline stand-in for `proptest`.
//!
//! Runs each property over a fixed number of deterministically generated
//! random cases. Unlike real proptest there is no shrinking: a failing case
//! reports its case index and seed, and the deterministic generator means
//! re-running reproduces it exactly. The strategy combinators cover what
//! the workspace uses: integer/float ranges, tuples, `prop_map`, and
//! `prop::collection::vec`.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    self.start + rng.below((self.end - self.start) as u64) as $t
                }
            }
        )*};
    }

    impl_int_range!(u8, u16, u32, u64, usize);

    impl Strategy for Range<i64> {
        type Value = i64;

        fn generate(&self, rng: &mut TestRng) -> i64 {
            assert!(self.start < self.end, "empty strategy range");
            let span = self.end.wrapping_sub(self.start) as u64;
            self.start.wrapping_add(rng.below(span) as i64)
        }
    }

    impl Strategy for Range<i32> {
        type Value = i32;

        fn generate(&self, rng: &mut TestRng) -> i32 {
            assert!(self.start < self.end, "empty strategy range");
            let span = (self.end as i64 - self.start as i64) as u64;
            (self.start as i64 + rng.below(span) as i64) as i32
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f32() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A: 0);
    impl_tuple!(A: 0, B: 1);
    impl_tuple!(A: 0, B: 1, C: 2);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
    impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

    /// Always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// How many elements a generated collection may have.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n as u64,
                hi: n as u64,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start as u64,
                hi: r.end as u64 - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start() as u64,
                hi: *r.end() as u64,
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The [`vec`] strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Configuration, error type and the case-loop driver.
pub mod test_runner {
    /// Per-property configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            Self { msg: msg.into() }
        }

        /// Real proptest distinguishes rejects from failures; the stand-in
        /// treats both as failures.
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::fail(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Deterministic value-generation RNG (SplitMix64-seeded xoshiro256++,
    /// the workspace's pinned generator family).
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// Seeds from an arbitrary byte string plus a case counter.
        pub fn seed(name: &str, case: u32) -> Self {
            let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                acc = (acc ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
            }
            let mut sm = acc ^ ((case as u64) << 32 | case as u64);
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Raw xoshiro256++ output.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Debiased sample in `[0, span)`.
        pub fn below(&mut self, span: u64) -> u64 {
            assert!(span > 0, "below(0) is undefined");
            let zone = u64::MAX - (u64::MAX - span + 1) % span;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % span;
                }
            }
        }

        /// Uniform f32 in `[0, 1)`.
        pub fn unit_f32(&mut self) -> f32 {
            (((self.next_u64() >> 32) as u32) >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Runs `body` over `config.cases` deterministic cases, panicking (to
    /// fail the enclosing `#[test]`) on the first case error.
    pub fn run<F>(config: Config, name: &str, mut body: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        for case in 0..config.cases {
            let mut rng = TestRng::seed(name, case);
            if let Err(e) = body(&mut rng) {
                panic!(
                    "property {name} failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespaced strategy modules (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::test_runner::run(
                    $cfg,
                    concat!(module_path!(), "::", stringify!($name)),
                    |__proptest_rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            __proptest_rng,
                        );)+
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = prop::collection::vec((0usize..8, 0.0f32..1.0), 3..10);
        let a = strat.generate(&mut TestRng::seed("x", 4));
        let b = strat.generate(&mut TestRng::seed("x", 4));
        assert_eq!(a, b);
        let c = strat.generate(&mut TestRng::seed("x", 5));
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_hold(n in 1usize..50, f in -2.0f64..2.0, pair in (0u32..4, 0u64..9)) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((-2.0..2.0).contains(&f));
            prop_assert!(pair.0 < 4 && pair.1 < 9);
        }

        #[test]
        fn vec_sizes_hold(xs in prop::collection::vec(0usize..5, 2..6)) {
            prop_assert!((2..6).contains(&xs.len()));
            for x in &xs {
                prop_assert!(*x < 5);
            }
        }

        #[test]
        fn prop_map_applies(doubled in (0u64..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!(doubled < 20);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_context() {
        crate::test_runner::run(
            ProptestConfig::with_cases(4),
            "always_fails",
            |_rng| -> Result<(), TestCaseError> {
                prop_assert!(false, "intentional");
                Ok(())
            },
        );
    }
}
