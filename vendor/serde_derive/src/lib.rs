//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize` / `Deserialize` impls against the stand-in serde's
//! JSON-value data model, using only the compiler's `proc_macro` API (no
//! syn/quote). Supports exactly the shapes this workspace derives on:
//!
//! - structs with named fields (optionally lifetime-generic, e.g.
//!   `Dump<'a>` — Serialize only);
//! - enums whose variants are all units (serialized as the variant name);
//! - the field attribute `#[serde(default)]` and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Unknown input fields are ignored on deserialize, like real serde.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let generics = &item.generics;
    let name_ty = format!("{}{}", item.name, generics);
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inserts = String::new();
            for f in fields {
                let insert = format!(
                    "map.insert(::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::serialize_value(&self.{n}));",
                    n = f.name
                );
                if let Some(path) = &f.skip_serializing_if {
                    inserts.push_str(&format!("if !{path}(&self.{n}) {{ {insert} }}", n = f.name));
                } else {
                    inserts.push_str(&insert);
                }
            }
            format!("let mut map = ::serde::Map::new(); {inserts} ::serde::Value::Object(map)")
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("Self::{v} => \"{v}\","))
                .collect();
            format!("::serde::Value::String(::std::string::String::from(match self {{ {arms} }}))")
        }
    };
    format!(
        "impl{generics} ::serde::Serialize for {name_ty} {{ \
           fn serialize_value(&self) -> ::serde::Value {{ {body} }} \
         }}"
    )
    .parse()
    .expect("derive(Serialize) generated invalid Rust")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    assert!(
        item.generics.is_empty(),
        "derive(Deserialize) supports non-generic types only"
    );
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut inits = String::new();
            for f in fields {
                let absent = if f.default {
                    "::std::default::Default::default()".to_string()
                } else {
                    format!("return Err(::serde::Error::missing_field(\"{}\"))", f.name)
                };
                inits.push_str(&format!(
                    "{n}: match obj.get(\"{n}\") {{ \
                       Some(x) => ::serde::Deserialize::deserialize_value(x)?, \
                       None => {absent}, \
                     }},",
                    n = f.name
                ));
            }
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\
                   format!(\"expected object for {name}, got {{}}\", v.kind())))?; \
                 Ok(Self {{ {inits} }})"
            )
        }
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok(Self::{v}),"))
                .collect();
            format!(
                "match v.as_str() {{ \
                   Some(s) => match s {{ \
                     {arms} \
                     other => Err(::serde::Error::custom(\
                       format!(\"unknown {name} variant {{other:?}}\"))), \
                   }}, \
                   None => Err(::serde::Error::custom(\
                     format!(\"expected string for {name}, got {{}}\", v.kind()))), \
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
           fn deserialize_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }} \
         }}"
    )
    .parse()
    .expect("derive(Deserialize) generated invalid Rust")
}

// --------------------------------------------------------------- parsing

struct Item {
    name: String,
    /// Raw generics text including angle brackets (`<'a>`), or empty.
    generics: String,
    shape: Shape,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<String>),
}

struct Field {
    name: String,
    default: bool,
    skip_serializing_if: Option<String>,
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Outer attributes and visibility.
    skip_attrs(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" || id.to_string() == "enum" => {
            let k = id.to_string();
            i += 1;
            k
        }
        other => panic!("derive expects a struct or enum, found {other}"),
    };
    let name = match &tokens[i] {
        TokenTree::Ident(id) => {
            i += 1;
            id.to_string()
        }
        other => panic!("expected type name, found {other}"),
    };

    // Optional generics: collect raw tokens between matching < and >.
    let mut generics = String::new();
    if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == '<') {
        let mut depth = 0usize;
        let start = i;
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        generics = tokens[start..i]
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("");
    }

    // The body brace group (skipping any where clause would go here; the
    // workspace derives on no such types).
    let body = loop {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => break g.stream(),
            TokenTree::Punct(p) if p.as_char() == ';' => {
                panic!("derive does not support unit or tuple structs")
            }
            _ => i += 1,
        }
    };

    let shape = if kind == "struct" {
        Shape::Struct(parse_fields(body))
    } else {
        Shape::Enum(parse_variants(body))
    };
    Item {
        name,
        generics,
        shape,
    }
}

fn parse_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (default, skip) = field_attrs(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = match &tokens[i] {
            TokenTree::Ident(id) => {
                i += 1;
                id.to_string()
            }
            other => panic!("expected field name, found {other}"),
        };
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other}"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle = 0isize;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default,
            skip_serializing_if: skip,
        });
    }
    fields
}

fn parse_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        match &tokens[i] {
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
            }
            other => panic!("expected enum variant, found {other}"),
        }
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!("derive supports unit enum variants only, found {other}"),
        }
    }
    variants
}

/// Skips attributes, returning the parsed `#[serde(...)]` field options.
fn field_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut default = false;
    let mut skip = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
            parse_serde_attr(g.stream(), &mut default, &mut skip);
        }
        *i += 2;
    }
    (default, skip)
}

/// Parses `serde(default, skip_serializing_if = "path")` inside one `#[...]`.
fn parse_serde_attr(attr: TokenStream, default: &mut bool, skip: &mut Option<String>) {
    let tokens: Vec<TokenTree> = attr.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // a doc comment or some other attribute
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < args.len() {
        match &args[j] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                *default = true;
                j += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "skip_serializing_if" => {
                match (args.get(j + 1), args.get(j + 2)) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit)))
                        if eq.as_char() == '=' =>
                    {
                        let quoted = lit.to_string();
                        *skip = Some(quoted.trim_matches('"').to_string());
                        j += 3;
                    }
                    _ => panic!("skip_serializing_if expects a quoted path"),
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            other => panic!("unsupported serde attribute `{other}`"),
        }
    }
}

fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 2; // `#` plus the bracket group
    }
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            tokens.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1; // pub(crate) and friends
        }
    }
}
