//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins every recorded seed to one concrete generator:
//! SplitMix64-seeded xoshiro256++ (see `crates/tensor/src/rng.rs`, whose
//! `matches_rand_stdrng_streams` test asserts stream equality against this
//! crate). `StdRng` here *is* that generator, with the exact sampling
//! formulas the inline implementation uses:
//!
//! - `seed_from_u64` fills the four state words with SplitMix64 outputs;
//! - `gen_range(a..b)` over floats is `a + unit * (b - a)` with a
//!   24-bit (`f32`) or 53-bit (`f64`) unit sample;
//! - `gen_range` over integers is debiased rejection sampling on the raw
//!   64-bit output;
//! - `gen_bool(p)` compares a 53-bit unit sample against `p`.
//!
//! Only the API surface the workspace actually uses is provided.

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw output word.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface.
pub trait SeedableRng: Sized {
    /// Builds a generator whose state derives from `seed` via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range.
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p.clamp(0.0, 1.0)
    }

    /// Sample from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        T: distributions::Standard,
    {
        T::sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (((rng.next_u64() >> 32) as u32) >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Debiased integer sample in `[0, span)` via rejection sampling.
fn below_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    assert!(span > 0, "cannot sample an empty integer range");
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// SplitMix64-seeded xoshiro256++ — the workspace's pinned generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Range and standard-distribution sampling.
pub mod distributions {
    use super::{below_u64, unit_f32, unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// A range a value can be uniformly sampled from.
    pub trait SampleRange<T> {
        /// Draws one uniform sample.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl SampleRange<f32> for Range<f32> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f32(rng) * (self.end - self.start)
        }
    }

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + unit_f64(rng) * (self.end - self.start)
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end - self.start) as u64;
                    self.start + below_u64(rng, span) as $t
                }
            }

            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = ((hi - lo) as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-width inclusive range: every output is valid.
                        return rng.next_u64() as $t;
                    }
                    lo + below_u64(rng, span) as $t
                }
            }
        )*};
    }

    impl_int_ranges!(usize, u64, u32, u16, u8);

    /// Types samplable from their "standard" distribution (`rng.gen()`).
    pub trait Standard: Sized {
        /// Draws one sample.
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl Standard for u64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl Standard for u32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u64() >> 32) as u32
        }
    }

    impl Standard for f32 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f32(rng)
        }
    }

    impl Standard for f64 {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            unit_f64(rng)
        }
    }

    impl Standard for bool {
        fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64() & 1 == 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng as _, SeedableRng};

    // Reference values computed from the xoshiro256++ definition with
    // SplitMix64 seeding from seed 0 (matches crates/tensor/src/rng.rs).
    #[test]
    fn stream_is_stable() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(xs[0], c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..500 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
