//! Offline stand-in for `criterion`.
//!
//! Provides the `criterion_group!` / `criterion_main!` / `bench_function`
//! surface the workspace's `harness = false` benches compile against, with
//! a simple mean-of-N wall-clock measurement instead of criterion's full
//! statistical machinery.

use std::time::{Duration, Instant};

/// How long each benchmark is measured for, after warm-up.
const TARGET_MEASURE: Duration = Duration::from_millis(300);
const TARGET_WARMUP: Duration = Duration::from_millis(50);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Self { _private: () }
    }
}

impl Criterion {
    /// Accepted for API compatibility; the stand-in ignores sample counts
    /// (it measures for a fixed wall-clock window instead).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility; warm-up length is fixed.
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; measurement length is fixed.
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        // Warm-up (measurements discarded).
        let warm_until = Instant::now() + TARGET_WARMUP;
        while Instant::now() < warm_until {
            f(&mut b);
        }
        b.total = Duration::ZERO;
        b.iters = 0;
        let measure_until = Instant::now() + TARGET_MEASURE;
        while Instant::now() < measure_until {
            f(&mut b);
        }
        if b.iters > 0 {
            let ns = b.total.as_nanos() as f64 / b.iters as f64;
            println!("{name:<40} {ns:>14.1} ns/iter ({} iters)", b.iters);
        } else {
            println!("{name:<40} (no iterations recorded)");
        }
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures one batch of calls to `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        self.total += start.elapsed();
        self.iters += 1;
        black_box(out);
    }
}

/// Opaque-to-the-optimizer identity, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    // Long form: `name = g; config = expr; targets = a, b, c`.
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config;
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_routine() {
        let mut calls = 0u64;
        Criterion::default().bench_function("noop", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
    }
}
