//! Offline stand-in for `serde` (+ the JSON half of `serde_json`).
//!
//! The real serde models serialization as a visitor pipeline between a data
//! structure and a format backend. This workspace only ever serializes to
//! and from JSON, so the stand-in collapses the pipeline to one concrete
//! data model: [`Value`], a JSON tree. `Serialize` renders a type into a
//! `Value`; `Deserialize` rebuilds a type from one. The `serde_json` facade
//! crate supplies the text encoding on top.
//!
//! Numbers preserve 64-bit integer precision exactly ([`Number::PosInt`] /
//! [`Number::NegInt`]): RNG state words round-trip through checkpoints
//! bit-for-bit, which crash-safe training resume depends on.

pub use serde_derive::{Deserialize, Serialize};

mod text;
mod value;

pub use text::{parse_str, write_compact, write_pretty};
pub use value::{Map, Number, Value};

/// Serialization / deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// A required field was absent from the input object.
    pub fn missing_field(name: &str) -> Self {
        Self {
            msg: format!("missing field `{name}`"),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable into a JSON [`Value`].
pub trait Serialize {
    /// Renders `self` as a JSON value.
    fn serialize_value(&self) -> Value;
}

/// Types rebuildable from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON value.
    fn deserialize_value(v: &Value) -> Result<Self, Error>;
}

/// Deserialization traits, mirroring serde's module layout.
pub mod de {
    /// Marker for deserializable owned types (`serde::de::DeserializeOwned`
    /// bounds in the workspace resolve here).
    pub trait DeserializeOwned: crate::Deserialize {}

    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

// ------------------------------------------------------------ Serialize

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
    )*};
}

impl_ser_uint!(u8, u16, u32, u64, usize);
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::from_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::from_f64(*self)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        self.as_slice().serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------- Deserialize

impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, got {}", v.kind())))?;
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_de_uint!(u8, u16, u32, u64, usize);
impl_de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", v.kind())))
    }
}

impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        f64::deserialize_value(v).map(|f| f as f32)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn deserialize_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, x)| Ok((k.clone(), V::deserialize_value(x)?)))
                .collect(),
            other => Err(Error::custom(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let v = 123_456_789_012_345_u64.serialize_value();
        assert_eq!(u64::deserialize_value(&v), Ok(123_456_789_012_345));
        let v = (-42i64).serialize_value();
        assert_eq!(i64::deserialize_value(&v), Ok(-42));
        let v = 0.25f32.serialize_value();
        assert_eq!(f32::deserialize_value(&v), Ok(0.25));
        let v = Some("x".to_string()).serialize_value();
        assert_eq!(
            Option::<String>::deserialize_value(&v),
            Ok(Some("x".to_string()))
        );
        assert_eq!(Option::<String>::deserialize_value(&Value::Null), Ok(None));
    }

    #[test]
    fn u64_precision_is_exact() {
        for n in [u64::MAX, u64::MAX - 1, (1u64 << 53) + 1] {
            let v = n.serialize_value();
            assert_eq!(u64::deserialize_value(&v), Ok(n));
        }
    }

    #[test]
    fn wrong_shapes_error() {
        assert!(bool::deserialize_value(&Value::Null).is_err());
        assert!(u8::deserialize_value(&256u64.serialize_value()).is_err());
        assert!(Vec::<u64>::deserialize_value(&Value::Bool(true)).is_err());
    }
}
