//! The JSON tree: [`Value`], [`Number`] and the object [`Map`].

/// JSON objects. Sorted keys, matching serde_json's default `Map` ordering.
pub type Map = std::collections::BTreeMap<String, Value>;

/// A JSON number, keeping 64-bit integers exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// Anything with a fractional part or exponent.
    Float(f64),
}

impl Number {
    /// The value as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(*n).ok(),
            Number::NegInt(n) => Some(*n),
            Number::Float(_) => None,
        }
    }

    /// The value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Number::PosInt(n) => Some(*n as f64),
            Number::NegInt(n) => Some(*n as f64),
            Number::Float(f) => Some(*f),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(Map),
}

impl Value {
    /// Wraps an `f64`, demoting non-finite values to `null` (JSON has no
    /// NaN/Infinity; serde_json does the same for such floats).
    pub fn from_f64(f: f64) -> Value {
        if f.is_finite() {
            Value::Number(Number::Float(f))
        } else {
            Value::Null
        }
    }

    /// Object field lookup; `None` on non-objects and absent keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key→value map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short noun for error messages ("string", "object", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl std::fmt::Display for Value {
    /// Compact JSON encoding (what `serde_json::Value::to_string` gives).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        crate::text::write_compact(self, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Bool(true));
        let v = Value::Object(m);
        assert_eq!(v.get("k").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Value::Null.get("k"), None);
        assert_eq!(Value::Number(Number::PosInt(7)).as_u64(), Some(7));
        assert_eq!(Value::Number(Number::NegInt(-7)).as_u64(), None);
        assert_eq!(Value::Number(Number::NegInt(-7)).as_i64(), Some(-7));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert!(Value::from_f64(f64::NAN).is_null());
        assert!(Value::from_f64(f64::INFINITY).is_null());
        assert!(!Value::from_f64(0.0).is_null());
    }
}
