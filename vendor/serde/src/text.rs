//! JSON text encoding and decoding for [`Value`].

use crate::value::{Map, Number, Value};
use crate::Error;

/// Parser recursion ceiling: bodies come off the network, and a deeply
/// nested `[[[[…]]]]` must produce an error, not a stack overflow.
const MAX_DEPTH: usize = 128;

// -------------------------------------------------------------- writing

/// Appends the compact encoding of `v` to `out`.
pub fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(x, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_compact(x, out);
            }
            out.push('}');
        }
    }
}

/// Appends the two-space-indented encoding of `v` to `out`.
pub fn write_pretty(v: &Value, out: &mut String, indent: usize) {
    match v {
        Value::Array(xs) if !xs.is_empty() => {
            out.push_str("[\n");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(x, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, x)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(k, out);
                out.push_str(": ");
                write_pretty(x, out, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_number(n: &Number, out: &mut String) {
    use std::fmt::Write as _;
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        // Debug float formatting is shortest-round-trip and always keeps a
        // decimal point or exponent, so the value re-parses as a float.
        Number::Float(v) => {
            let _ = write!(out, "{v:?}");
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

/// Parses one JSON document (surrounding whitespace allowed, trailing
/// garbage rejected).
pub fn parse_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(self.err("recursion limit exceeded"));
        }
        match self.peek() {
            Some(b'n') => self.expect("null").map(|()| Value::Null),
            Some(b't') => self.expect("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '['
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(xs));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.pos += 1; // consume '{'
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(m));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            m.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(m));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.pos += 1; // consume '"'
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?;
                s.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut s)?;
                }
                Some(_) => return Err(self.err("raw control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, s: &mut String) -> Result<(), Error> {
        let c = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
        self.pos += 1;
        match c {
            b'"' => s.push('"'),
            b'\\' => s.push('\\'),
            b'/' => s.push('/'),
            b'n' => s.push('\n'),
            b'r' => s.push('\r'),
            b't' => s.push('\t'),
            b'b' => s.push('\u{08}'),
            b'f' => s.push('\u{0c}'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.expect("\\u").is_err() {
                        return Err(self.err("unpaired surrogate in \\u escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate in \\u escape"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                s.push(char::from_u32(code).ok_or_else(|| self.err("invalid \\u escape"))?);
            }
            _ => return Err(self.err("unknown escape")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(n)));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Number(Number::NegInt(n)));
            }
        }
        let f: f64 = text
            .parse()
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))?;
        if !f.is_finite() {
            return Err(Error::custom(format!("number `{text}` overflows f64")));
        }
        Ok(Value::Number(Number::Float(f)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(src: &str) -> String {
        parse_str(src).unwrap().to_string()
    }

    #[test]
    fn scalars() {
        assert_eq!(round_trip("null"), "null");
        assert_eq!(round_trip("true"), "true");
        assert_eq!(round_trip(" 42 "), "42");
        assert_eq!(round_trip("-7"), "-7");
        assert_eq!(round_trip("1.5"), "1.5");
        assert_eq!(round_trip("\"a\\nb\""), "\"a\\nb\"");
        assert_eq!(round_trip("18446744073709551615"), "18446744073709551615");
    }

    #[test]
    fn composites() {
        assert_eq!(round_trip("[1, 2, [3]]"), "[1,2,[3]]");
        assert_eq!(round_trip("{\"b\":1,\"a\":{}}"), "{\"a\":{},\"b\":1}");
        assert_eq!(round_trip("[]"), "[]");
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_78] {
            let text = Value::from_f64(f).to_string();
            let back = parse_str(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse_str("\"\\u00e9\\uD83D\\uDE00\"").unwrap(),
            Value::String("é😀".to_string())
        );
        assert!(parse_str("\"\\uD800\"").is_err());
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1 2", "\"", "nul"] {
            assert!(parse_str(bad).is_err(), "{bad:?} must not parse");
        }
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(parse_str(&deep).is_err(), "depth limit must hold");
    }

    #[test]
    fn pretty_prints_nested() {
        let v = parse_str("{\"a\":[1,2],\"b\":{}}").unwrap();
        let mut out = String::new();
        write_pretty(&v, &mut out, 0);
        assert_eq!(out, "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}");
    }
}
