//! Offline stand-in for the `rustc-hash` crate.
//!
//! Implements the same FxHash algorithm (the Firefox / rustc hasher): a
//! multiply-and-rotate word hash. Deterministic across runs and platforms
//! for a given input on a given word size, which is what the workspace
//! relies on (no per-process SipHash randomisation).

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed by FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed by FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// Deterministic `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The FxHash word hasher.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut m: FxHashMap<&str, usize> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"hello world");
        h2.write(b"hello world");
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn set_alias_works() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
