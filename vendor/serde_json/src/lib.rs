//! Offline stand-in for `serde_json`.
//!
//! The JSON tree type lives in the stand-in `serde` crate (the two crates
//! share one data model); this facade provides the familiar `serde_json`
//! entry points on top: [`to_string`], [`to_string_pretty`], [`from_str`],
//! [`from_slice`], [`json!`] and the re-exported [`Value`] family.

pub use serde::{Error, Map, Number, Value};

/// Renders `value` as compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_compact(&value.serialize_value(), &mut out);
    Ok(out)
}

/// Renders `value` as two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    serde::write_pretty(&value.serialize_value(), &mut out, 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Parses `T` from JSON text.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T, Error> {
    T::deserialize_value(&serde::parse_str(s)?)
}

/// Parses `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

/// Builds a [`Value`] from an object / array / expression literal.
///
/// Values inside `{ ... }` and `[ ... ]` are arbitrary serializable
/// expressions; nest further objects with explicit inner `json!` calls
/// (the style used throughout this workspace).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $(map.insert(::std::string::String::from($key), $crate::to_value(&$val));)*
        $crate::Value::Object(map)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![$($crate::to_value(&$elem)),*])
    };
    ($other:expr) => {
        $crate::to_value(&$other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let inner = json!({ "a": 1u64 });
        let v = json!({
            "s": "text",
            "n": 2.5f64,
            "b": true,
            "nested": inner,
            "list": vec![json!(1u64), json!(2u64)],
        });
        assert_eq!(
            v.to_string(),
            "{\"b\":true,\"list\":[1,2],\"n\":2.5,\"nested\":{\"a\":1},\"s\":\"text\"}"
        );
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!([1u64, 2u64]).to_string(), "[1,2]");
        assert_eq!(json!({}).to_string(), "{}");
    }

    #[test]
    fn from_str_into_value_and_back() {
        let v: Value = from_str("{\"x\": [1, 2.0, \"three\"]}").unwrap();
        assert_eq!(v.get("x").and_then(Value::as_array).unwrap().len(), 3);
        assert_eq!(to_string(&v).unwrap(), "{\"x\":[1,2.0,\"three\"]}");
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_slice::<Value>(&[0xff, 0xfe]).is_err());
    }
}
