#!/usr/bin/env bash
# Kill-9 durability smoke against the REAL binary: boot `logcl serve` with a
# WAL, ack a few ingests, SIGKILL the process (no drain, no flush beyond the
# per-ack group commit), restart on the same WAL directory, and assert via
# /metrics that every acked fact came back — plus that the idempotency
# window survived the crash (a resent ingest id answers deduplicated).
#
# Usage: scripts_durability_smoke.sh [BIN] (default ./target/release/logcl)
set -euo pipefail

BIN=${1:-./target/release/logcl}
ADDR=${ADDR:-127.0.0.1:7917}
WORK=$(mktemp -d)
SRV_PID=""
trap '[ -n "$SRV_PID" ] && kill -9 "$SRV_PID" 2>/dev/null; rm -rf "$WORK"' EXIT

MODEL_FLAGS=(--preset icews14 --scale 0.15 --dim 8 --m 2 --threads 1)

wait_healthz() {
  for _ in $(seq 1 150); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: server did not come up on $ADDR" >&2
  exit 1
}

horizon() {
  curl -sf "http://$ADDR/healthz" | sed -n 's/.*"horizon":\([0-9]*\).*/\1/p'
}

ingest() { # ingest <id> ; sends 2 facts at the current horizon
  local id=$1 t body
  t=$(horizon)
  body=$(curl -sf -X POST "http://$ADDR/ingest" \
    -H "X-LogCL-Ingest-Id: $id" \
    -d "{\"time\": $t, \"facts\": [[1, 0, 2], [3, 1, 4]], \"update\": false}")
  echo "$body"
}

echo "== train a small checkpoint =="
"$BIN" train "${MODEL_FLAGS[@]}" --epochs 1 --save "$WORK/model.json"

echo "== boot with WAL, ack 3 ingests =="
"$BIN" serve "${MODEL_FLAGS[@]}" --load "$WORK/model.json" \
  --addr "$ADDR" --wal-dir "$WORK/wal" &
SRV_PID=$!
wait_healthz
for i in 1 2 3; do
  body=$(ingest "smoke-$i")
  echo "ingest smoke-$i -> $body"
  echo "$body" | grep -q '"durable":true' || {
    echo "FAIL: ingest smoke-$i was not acked durable" >&2
    exit 1
  }
done

echo "== kill -9 mid-flight =="
kill -9 "$SRV_PID"
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""

echo "== restart on the same WAL dir =="
"$BIN" serve "${MODEL_FLAGS[@]}" --load "$WORK/model.json" \
  --addr "$ADDR" --wal-dir "$WORK/wal" &
SRV_PID=$!
wait_healthz

metrics=$(curl -sf "http://$ADDR/metrics")
replayed=$(echo "$metrics" | sed -n 's/^logcl_wal_frames_total{kind="replayed"} //p')
recovered=$(echo "$metrics" | sed -n 's/^logcl_wal_recovered_facts_total //p')
[ "$replayed" = "3" ] || {
  echo "FAIL: expected 3 replayed WAL frames, got '$replayed'" >&2
  exit 1
}
[ "$recovered" = "6" ] || {
  echo "FAIL: expected 6 recovered facts, got '$recovered'" >&2
  exit 1
}
echo "recovered: $replayed frames, $recovered facts"

echo "== resent ingest id must dedup across the crash =="
body=$(ingest "smoke-1")
echo "ingest smoke-1 (resend) -> $body"
echo "$body" | grep -q '"deduplicated":true' || {
  echo "FAIL: resent ingest id smoke-1 was re-applied after recovery" >&2
  exit 1
}

curl -sf -X POST "http://$ADDR/shutdown" >/dev/null
wait "$SRV_PID" 2>/dev/null || true
SRV_PID=""
echo "OK: durability smoke passed"
