#!/usr/bin/env python3
"""Renders the final Table III (markdown) from the recorded JSON dumps."""
import json, sys, os

ORDER = ["DistMult", "Conv-TransE", "TTransE", "CyGNet", "RE-NET", "RE-GCN",
         "CEN", "TiRGN", "HisMatch", "CENET", "LogCL"]
DATASETS = ["ICEWS14-s", "ICEWS18-s", "ICEWS05-15-s", "GDELT-s"]

rows = {}
for path in sys.argv[1:]:
    if not os.path.exists(path):
        continue
    d = json.load(open(path))
    for r in d["rows"]:
        label = r["label"].split("[")[0].strip()
        rows[(label, r["dataset"])] = r

print("| Model |" + "".join(f" {ds.replace('-s','‑s')} MRR / H@1 / H@3 / H@10 |" for ds in DATASETS))
print("|---|" + "---|" * len(DATASETS))
for model in ORDER:
    cells = []
    for ds in DATASETS:
        r = rows.get((model, ds))
        cells.append(
            f" {r['mrr']:.2f} / {r['hits1']:.2f} / {r['hits3']:.2f} / {r['hits10']:.2f} |"
            if r else " – |")
    print(f"| {model} |" + "".join(cells))
