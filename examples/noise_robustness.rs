//! Noise robustness — the paper's second contribution (Figs. 2 & 5).
//!
//! Trains LogCL and its contrast-free ablation under increasing Gaussian
//! input noise and shows that the local-global query contrast module slows
//! the degradation.
//!
//! ```sh
//! cargo run --release --example noise_robustness
//! ```

use logcl::prelude::*;

fn run(ds: &TkgDataset, use_contrast: bool, noise: NoiseSpec) -> Metrics {
    let cfg = LogClConfig {
        dim: 32,
        time_bank: 8,
        channels: 12,
        use_contrast,
        noise,
        ..Default::default()
    };
    let mut model = LogCl::new(ds, cfg);
    model
        .fit(ds, &TrainOptions::epochs(6))
        .expect("training failed");
    evaluate(&mut model, ds, &ds.test.clone())
}

fn main() {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.25);
    println!("dataset: {ds}\n");
    println!(
        "{:<10} {:>8} {:>8} | {:>8} {:>8}",
        "noise σ", "MRR", "H@1", "MRR-w/o-cl", "H@1"
    );
    for noise in NoiseSpec::fig5_sweep() {
        let with_cl = run(&ds, true, noise);
        let without_cl = run(&ds, false, noise);
        println!(
            "{:<10.3} {:>8.2} {:>8.2} | {:>10.2} {:>8.2}",
            noise.std, with_cl.mrr, with_cl.hits1, without_cl.mrr, without_cl.hits1
        );
    }
    println!("\nExpected shape: both degrade with σ, the w/o-cl column faster (Fig. 5).");
}
