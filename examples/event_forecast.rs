//! Political-event forecasting — the paper's motivating scenario (Fig. 1).
//!
//! Trains LogCL and two baselines on the ICEWS18 stand-in, then walks the
//! test timeline asking "who will `China` `Cooperate` with tomorrow?" style
//! queries, contrasting a pure copy model (CyGNet), a pure local-evolution
//! model (RE-GCN) and LogCL's fusion of both.
//!
//! ```sh
//! cargo run --release --example event_forecast
//! ```

use logcl::baselines::{CyGNet, ReGcn};
use logcl::prelude::*;

fn main() {
    let ds = SyntheticPreset::Icews18.generate_scaled(0.25);
    println!("dataset: {ds}\n");

    let opts = TrainOptions::epochs(6);
    let test = ds.test.clone();

    let mut cygnet = CyGNet::new(&ds, 32, 0.8, 7);
    cygnet.fit(&ds, &opts).expect("training failed");
    let m_cyg = evaluate(&mut cygnet, &ds, &test);

    let mut regcn = ReGcn::new(&ds, 32, 4, 12, 7);
    regcn.fit(&ds, &opts).expect("training failed");
    let m_regcn = evaluate(&mut regcn, &ds, &test);

    let cfg = LogClConfig {
        dim: 32,
        time_bank: 8,
        channels: 12,
        ..Default::default()
    };
    let mut logcl = LogCl::new(&ds, cfg);
    logcl.fit(&ds, &opts).expect("training failed");
    let m_logcl = evaluate(&mut logcl, &ds, &test);

    println!("{:<10} {}", "CyGNet", m_cyg);
    println!("{:<10} {}", "RE-GCN", m_regcn);
    println!("{:<10} {}", "LogCL", m_logcl);

    // A concrete forecast comparison on one repeated-event query.
    let q = test
        .iter()
        .find(|q| {
            // Prefer a query whose answer has historical support, so the
            // models' different mechanisms are visible.
            ds.train.iter().any(|p| p.s == q.s && p.r == q.r)
        })
        .unwrap_or(&test[0]);
    println!(
        "\nforecast for ({}, {}, ?, t={}), truth = {}",
        ds.entity_name(q.s),
        ds.rel_name(q.r),
        q.t,
        ds.entity_name(q.o)
    );
    for (name, model) in [
        ("CyGNet", &mut cygnet as &mut dyn TkgModel),
        ("RE-GCN", &mut regcn as &mut dyn TkgModel),
        ("LogCL", &mut logcl as &mut dyn TkgModel),
    ] {
        let top = predict_topk(model, &ds, q.s, q.r, q.t, 3).expect("prediction failed");
        let preds: Vec<String> = top
            .iter()
            .map(|p| format!("{} ({:.2})", p.name, p.probability))
            .collect();
        println!("  {:<8} -> {}", name, preds.join(", "));
    }
}
