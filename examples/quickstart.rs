//! Quickstart: train LogCL on the ICEWS14 stand-in and report time-aware
//! filtered metrics next to an untrained baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use logcl::prelude::*;

fn main() {
    // A reduced-scale synthetic ICEWS14 (fast enough for a demo run; drop
    // `generate_scaled` for the full preset).
    let ds = SyntheticPreset::Icews14.generate_scaled(0.3);
    println!("dataset: {ds}");

    let cfg = LogClConfig {
        dim: 32,
        time_bank: 8,
        channels: 12,
        ..Default::default()
    };
    let mut model = LogCl::new(&ds, cfg);
    println!("LogCL with {} trainable weights", model.num_weights());

    let test = ds.test.clone();
    let before = evaluate(&mut model, &ds, &test);
    println!("before training: {before}");

    let opts = TrainOptions {
        epochs: 8,
        verbose: true,
        ..Default::default()
    };
    model.fit(&ds, &opts).expect("training failed");

    let after = evaluate(&mut model, &ds, &test);
    println!("after training:  {after}");

    // Peek at a concrete forecast, Table-VI style.
    let q = &test[0];
    println!(
        "\nquery: ({}, {}, ?, t={})  — true answer: {}",
        ds.entity_name(q.s),
        ds.rel_name(q.r),
        q.t,
        ds.entity_name(q.o)
    );
    for p in predict_topk(&mut model, &ds, q.s, q.r, q.t, 5).expect("prediction failed") {
        println!("  {:<28} {:.3}", p.name, p.probability);
    }
}
