//! Online learning (Fig. 10): models keep adapting to emerging facts while
//! the test timeline unfolds, instead of staying frozen after training.
//!
//! ```sh
//! cargo run --release --example online_learning
//! ```

use logcl::baselines::CenLite;
use logcl::prelude::*;

fn main() {
    let ds = SyntheticPreset::Icews14.generate_scaled(0.25);
    println!("dataset: {ds}\n");
    let opts = TrainOptions::epochs(6);
    let test = ds.test.clone();

    println!(
        "{:<8} {:>10} {:>10} {:>8}",
        "model", "offline", "online", "Δ MRR"
    );
    for which in ["CEN", "LogCL"] {
        let (offline, online) = match which {
            "CEN" => {
                let mut a = CenLite::new(&ds, 32, 4, 12, 7);
                a.fit(&ds, &opts).expect("training failed");
                let off = evaluate(&mut a, &ds, &test);
                let mut b = CenLite::new(&ds, 32, 4, 12, 7);
                b.fit(&ds, &opts).expect("training failed");
                let on = evaluate_online(&mut b, &ds, &test);
                (off, on)
            }
            _ => {
                let cfg = LogClConfig {
                    dim: 32,
                    time_bank: 8,
                    channels: 12,
                    ..Default::default()
                };
                let mut a = LogCl::new(&ds, cfg.clone());
                a.fit(&ds, &opts).expect("training failed");
                let off = evaluate(&mut a, &ds, &test);
                let mut b = LogCl::new(&ds, cfg);
                b.fit(&ds, &opts).expect("training failed");
                let on = evaluate_online(&mut b, &ds, &test);
                (off, on)
            }
        };
        println!(
            "{:<8} {:>10.2} {:>10.2} {:>+8.2}",
            which,
            offline.mrr,
            online.mrr,
            online.mrr - offline.mrr
        );
    }
    println!("\nExpected shape: online ≥ offline for both, LogCL best overall (Fig. 10).");
}
