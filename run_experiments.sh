#!/bin/bash
# Regenerates every table and figure. Stdout is the paper-style report.
set -u
BIN="cargo run --release -q -p logcl-bench --bin experiments --"
$BIN table3 --scale 0.3 --epochs 24 --dim 48 --channels 12
$BIN table4 --scale 0.25 --epochs 16 --dim 48 --channels 12
$BIN table5 --scale 0.25 --epochs 14 --dim 48 --channels 12
$BIN table6 --scale 0.3 --epochs 16 --dim 48 --channels 12
$BIN table7 --scale 0.25 --epochs 16 --dim 48 --channels 12
$BIN fig2  --scale 0.25 --epochs 14 --dim 48 --channels 12
$BIN fig5  --scale 0.2  --epochs 12 --dim 48 --channels 12
$BIN fig6  --scale 0.25 --epochs 14 --dim 48 --channels 12
$BIN fig7  --scale 0.25 --epochs 14 --dim 48 --channels 12
$BIN fig8  --scale 0.25 --epochs 14 --dim 48 --channels 12
$BIN fig9  --scale 0.25 --epochs 14 --dim 48 --channels 12
$BIN fig10 --scale 0.25 --epochs 14 --dim 48 --channels 12
echo "ALL_EXPERIMENTS_DONE"
