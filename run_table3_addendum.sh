#!/bin/bash
# Addendum: the two baselines added after the main recorded run started
# (RE-NET-lite, HisMatch-lite) on the three presets the first invocation
# covered; ICEWS05-15-s already includes them (full roster at rebuild).
set -u
BIN="cargo run --release -q -p logcl-bench --bin experiments --"
$BIN table3 --scale 0.3 --epochs 24 --dim 48 --channels 12 --seeds 42,7 --models re-net,hismatch --presets icews14,icews18,gdelt --out results/final_c
echo "ADDENDUM_DONE"
