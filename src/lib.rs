//! # logcl
//!
//! A complete Rust reproduction of **LogCL** — *Local-Global History-aware
//! Contrastive Learning for Temporal Knowledge Graph Reasoning* (Chen et
//! al., ICDE 2024) — including the tensor/autograd substrate, the TKG data
//! layer, the model, ten baselines, and a harness regenerating every
//! table and figure of the paper's evaluation.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`tensor`] — dense `f32` tensors with reverse-mode autograd, layers,
//!   optimizers ([`logcl_tensor`]).
//! * [`tkg`] — quadruples, snapshots, synthetic benchmark generators,
//!   history indexes, time-aware filtered evaluation ([`logcl_tkg`]).
//! * [`gnn`] — R-GCN/CompGCN/KBGAT layers, GRU, time gates, entity-aware
//!   attention, ConvTransE ([`logcl_gnn`]).
//! * [`core`] — the LogCL model, config/ablations, trainer, evaluation
//!   driver ([`logcl_core`]).
//! * [`baselines`] — DistMult, Conv-TransE, TTransE, CyGNet, CENET-lite,
//!   RE-NET-lite, RE-GCN, CEN-lite, TiRGN-lite, HisMatch-lite
//!   ([`logcl_baselines`]).
//! * [`serve`] — std-only HTTP inference server with snapshot-encoding
//!   caching, micro-batching and online ingestion ([`logcl_serve`]).
//!
//! ## Quickstart
//!
//! ```no_run
//! use logcl::prelude::*;
//!
//! // A synthetic stand-in for ICEWS14 (see DESIGN.md).
//! let ds = SyntheticPreset::Icews14.generate_scaled(0.3);
//! let mut model = LogCl::new(&ds, LogClConfig::default());
//! model.fit(&ds, &TrainOptions::epochs(10)).expect("training failed");
//! let metrics = evaluate(&mut model, &ds, &ds.test.clone());
//! println!("{metrics}");
//! ```

pub use logcl_baselines as baselines;
pub use logcl_core as core;
pub use logcl_gnn as gnn;
pub use logcl_serve as serve;
pub use logcl_tensor as tensor;
pub use logcl_tkg as tkg;

/// The most common imports in one place.
pub mod prelude {
    pub use logcl_baselines::BaselineKind;
    pub use logcl_core::{
        evaluate, evaluate_detailed, evaluate_online, evaluate_with_phase, predict_topk,
        ContrastStrategy, DetailedReport, EvalContext, LogCl, LogClConfig, Phase, TkgModel,
        TrainOptions,
    };
    pub use logcl_serve::{ModelSpec, ServeConfig, Server};
    pub use logcl_tensor::{Rng, Tensor, Var};
    pub use logcl_tkg::{
        Metrics, NoiseSpec, Quad, Snapshot, SyntheticConfig, SyntheticPreset, TkgDataset,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_everything() {
        let ds = SyntheticPreset::Icews14.generate_scaled(0.15);
        let cfg = LogClConfig {
            dim: 8,
            time_bank: 4,
            channels: 3,
            ..Default::default()
        };
        let model = LogCl::new(&ds, cfg);
        assert_eq!(model.name(), "LogCL");
        let _ = BaselineKind::TABLE3;
        let _ = NoiseSpec::CLEAN;
    }
}
