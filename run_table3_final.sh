#!/bin/bash
set -u
BIN="cargo run --release -q -p logcl-bench --bin experiments --"
$BIN table3 --scale 0.3 --epochs 24 --dim 48 --channels 12 --tune --seeds 42,7 --presets icews14,icews18,gdelt --out results/final_a
$BIN table3 --scale 0.3 --epochs 24 --dim 48 --channels 12 --tune --seeds 42 --presets icews05 --out results/final_b
echo "TABLE3_FINAL_DONE"
