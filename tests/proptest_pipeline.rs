//! Property-based tests over the data→evaluation pipeline.

use logcl::prelude::*;
use logcl::tkg::RankAccumulator;
use proptest::prelude::*;
use strategies::quad_strategy;

/// Input strategies.
mod strategies {
    use super::*;

    /// Strategy: a random consistent quad list over a small vocabulary.
    pub fn quad_strategy() -> impl Strategy<Value = Vec<Quad>> {
        prop::collection::vec((0usize..8, 0usize..3, 0usize..8, 0usize..20), 10..80).prop_map(|v| {
            v.into_iter()
                .map(|(s, r, o, t)| Quad::new(s, r, o, t))
                .collect()
        })
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dataset_split_is_a_partition_ordered_by_time(quads in quad_strategy()) {
        let ds = TkgDataset::from_quads("prop", 8, 3, quads.clone());
        let total = ds.train.len() + ds.valid.len() + ds.test.len();
        let mut dedup = quads.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(total, dedup.len());
        // Time ordering between splits.
        let max_train = ds.train.iter().map(|q| q.t).max();
        let min_valid = ds.valid.iter().map(|q| q.t).min();
        let max_valid = ds.valid.iter().map(|q| q.t).max();
        let min_test = ds.test.iter().map(|q| q.t).min();
        if let (Some(a), Some(b)) = (max_train, min_valid) {
            prop_assert!(a < b);
        }
        if let (Some(a), Some(b)) = (max_valid, min_test) {
            prop_assert!(a < b);
        }
    }

    #[test]
    fn inverse_closure_is_involutive(quads in quad_strategy()) {
        let ds = TkgDataset::from_quads("prop", 8, 3, quads);
        let inv = ds.with_inverses(&ds.train);
        prop_assert_eq!(inv.len(), ds.train.len() * 2);
        for pair in inv.chunks(2) {
            prop_assert_eq!(pair[1].inverse(ds.num_rels), pair[0]);
        }
    }

    #[test]
    fn snapshots_preserve_every_fact(quads in quad_strategy()) {
        let ds = TkgDataset::from_quads("prop", 8, 3, quads);
        let snaps = ds.snapshots();
        let total: usize = snaps.iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, 2 * (ds.train.len() + ds.valid.len() + ds.test.len()));
        for (t, s) in snaps.iter().enumerate() {
            prop_assert_eq!(s.t, t);
        }
    }

    #[test]
    fn history_counts_match_brute_force(quads in quad_strategy()) {
        let ds = TkgDataset::from_quads("prop", 8, 3, quads);
        let snaps = ds.snapshots();
        let cut = snaps.len() / 2;
        let hist = logcl::tkg::HistoryIndex::build(&snaps[..cut]);
        // Brute force recount.
        for q in ds.train.iter().take(10) {
            let expected = snaps[..cut]
                .iter()
                .flat_map(|s| &s.edges)
                .filter(|&&(s2, r2, o2)| (s2, r2, o2) == (q.s, q.r, q.o))
                .count() as u32;
            prop_assert_eq!(hist.count(q.s, q.r, q.o), expected);
        }
    }

    #[test]
    fn filtered_rank_never_worse_than_raw(quads in quad_strategy(), seed in 0u64..1000) {
        let ds = TkgDataset::from_quads("prop", 8, 3, quads);
        if ds.test.is_empty() {
            return Ok(());
        }
        let mut rng = logcl::tensor::Rng::seed(seed);
        let scores: Vec<f32> = (0..ds.num_entities).map(|_| rng.uniform(0.0, 1.0)).collect();
        let q = ds.test[0];
        let truth = ds.facts_at(q.t);
        let filtered = logcl::tkg::eval::rank_time_aware(&scores, &q, &truth);
        let raw = logcl::tkg::eval::rank_raw(&scores, q.o);
        prop_assert!(filtered <= raw, "filtering can only improve the rank");
        prop_assert!(filtered >= 1);
    }

    #[test]
    fn metrics_are_monotone_in_rank_quality(ranks in prop::collection::vec(1usize..50, 1..40)) {
        let mut acc = RankAccumulator::new();
        for &r in &ranks {
            acc.push(r);
        }
        let m = acc.finish();
        prop_assert!(m.hits1 <= m.hits3 + 1e-9);
        prop_assert!(m.hits3 <= m.hits10 + 1e-9);
        prop_assert!(m.mrr > 0.0 && m.mrr <= 100.0);
        // Improving every rank by clamping at 1 cannot lower any metric.
        let mut best = RankAccumulator::new();
        for _ in &ranks {
            best.push(1);
        }
        let b = best.finish();
        prop_assert!(b.mrr >= m.mrr && b.hits1 >= m.hits1);
    }

    #[test]
    fn subgraph_entities_are_subset_of_vocabulary(quads in quad_strategy()) {
        let ds = TkgDataset::from_quads("prop", 8, 3, quads);
        let snaps = ds.snapshots();
        let hist = logcl::tkg::HistoryIndex::build(&snaps);
        for s in 0..ds.num_entities {
            let g = hist.query_subgraph(s, 0, 30);
            prop_assert!(g.len() <= 30);
            for e in g.entities() {
                prop_assert!(e < ds.num_entities);
            }
        }
    }
}
