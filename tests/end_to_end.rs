//! End-to-end integration tests spanning every crate: dataset generation →
//! model training → two-phase time-aware evaluation → prediction.

use logcl::prelude::*;

fn tiny_ds() -> TkgDataset {
    SyntheticPreset::Icews14.generate_scaled(0.15)
}

fn tiny_cfg() -> LogClConfig {
    LogClConfig {
        dim: 16,
        time_bank: 4,
        channels: 6,
        m: 3,
        ..Default::default()
    }
}

#[test]
fn logcl_end_to_end_beats_chance_and_fresh_model() {
    let ds = tiny_ds();
    let mut model = LogCl::new(&ds, tiny_cfg());
    let test = ds.test.clone();
    let fresh = evaluate(&mut model, &ds, &test);
    model
        .fit(&ds, &TrainOptions::epochs(5))
        .expect("training failed");
    let trained = evaluate(&mut model, &ds, &test);
    // Chance MRR on |E| candidates is ≈ (ln E)/E — a few percent here.
    assert!(trained.mrr > 10.0, "trained MRR {}", trained.mrr);
    assert!(trained.mrr > fresh.mrr, "{} -> {}", fresh.mrr, trained.mrr);
    assert_eq!(trained.count, 2 * test.len(), "two-phase evaluation count");
}

#[test]
fn full_roster_trains_and_produces_sane_metrics() {
    let ds = tiny_ds();
    for kind in BaselineKind::TABLE3 {
        let mut model = kind.build(&ds, 12, 2, 4, 3);
        model
            .fit(&ds, &TrainOptions::epochs(2))
            .expect("training failed");
        let m = evaluate(model.as_mut(), &ds, &ds.test.clone());
        assert!(
            m.mrr > 0.0 && m.mrr <= 100.0 && m.hits1 <= m.hits3 && m.hits3 <= m.hits10,
            "{}: {m}",
            kind.name()
        );
    }
}

#[test]
fn ablations_do_not_exceed_reasonable_bounds() {
    // Structural sanity: every ablated variant still trains and scores;
    // the full model is not catastrophically below its ablations.
    let ds = tiny_ds();
    let opts = TrainOptions::epochs(4);
    let mut full = LogCl::new(&ds, tiny_cfg());
    full.fit(&ds, &opts).expect("training failed");
    let m_full = evaluate(&mut full, &ds, &ds.test.clone());
    for cfg in [
        tiny_cfg().without_global(),
        tiny_cfg().without_local(),
        tiny_cfg().without_contrast(),
        tiny_cfg().without_entity_attention(),
    ] {
        let name = cfg.variant_name();
        let mut variant = LogCl::new(&ds, cfg);
        variant.fit(&ds, &opts).expect("training failed");
        let m = evaluate(&mut variant, &ds, &ds.test.clone());
        assert!(m.mrr > 0.0, "{name} failed to learn");
        assert!(
            m_full.mrr > m.mrr * 0.5,
            "full model far below {name}: {} vs {}",
            m_full.mrr,
            m.mrr
        );
    }
}

#[test]
fn two_phase_counts_and_ordering() {
    let ds = tiny_ds();
    let mut model = LogCl::new(&ds, tiny_cfg());
    model
        .fit(&ds, &TrainOptions::epochs(3))
        .expect("training failed");
    let test = ds.test.clone();
    let both = evaluate_with_phase(&mut model, &ds, &test, Phase::Both, false);
    let fp = evaluate_with_phase(&mut model, &ds, &test, Phase::FirstOnly, false);
    let sp = evaluate_with_phase(&mut model, &ds, &test, Phase::SecondOnly, false);
    assert_eq!(both.count, fp.count + sp.count);
    // The combined MRR is the query-weighted mean of the phases.
    let expected = (fp.mrr * fp.count as f64 + sp.mrr * sp.count as f64) / both.count as f64;
    assert!((both.mrr - expected).abs() < 1e-6);
}

#[test]
fn predictions_are_consistent_with_scores() {
    let ds = tiny_ds();
    let mut model = LogCl::new(&ds, tiny_cfg());
    model
        .fit(&ds, &TrainOptions::epochs(3))
        .expect("training failed");
    let q = ds.test[0];
    let preds = predict_topk(&mut model, &ds, q.s, q.r, q.t, 10).expect("prediction failed");
    assert_eq!(preds.len(), 10);
    assert!(preds
        .windows(2)
        .all(|w| w[0].probability >= w[1].probability));
    let total: f32 = preds.iter().map(|p| p.probability).sum();
    assert!(total <= 1.0 + 1e-4);
    // Names resolve through the dataset vocabulary.
    assert!(preds.iter().all(|p| !p.name.is_empty()));
}

#[test]
fn noise_degrades_performance() {
    let ds = tiny_ds();
    let opts = TrainOptions::epochs(4);
    let mut clean = LogCl::new(&ds, tiny_cfg());
    clean.fit(&ds, &opts).expect("training failed");
    let m_clean = evaluate(&mut clean, &ds, &ds.test.clone());
    let mut noisy = LogCl::new(
        &ds,
        LogClConfig {
            noise: NoiseSpec::with_std(3.0),
            ..tiny_cfg()
        },
    );
    noisy.fit(&ds, &opts).expect("training failed");
    let m_noisy = evaluate(&mut noisy, &ds, &ds.test.clone());
    assert!(
        m_noisy.mrr < m_clean.mrr,
        "strong noise must hurt: clean {} vs noisy {}",
        m_clean.mrr,
        m_noisy.mrr
    );
}

#[test]
fn static_kg_refinement_trains_end_to_end() {
    let ds = tiny_ds();
    assert!(!ds.static_facts.is_empty(), "presets carry static facts");
    let cfg = LogClConfig {
        use_static: true,
        ..tiny_cfg()
    };
    let mut model = LogCl::new(&ds, cfg);
    model
        .fit(&ds, &TrainOptions::epochs(4))
        .expect("training failed");
    let m = evaluate(&mut model, &ds, &ds.test.clone());
    assert!(
        m.mrr > 10.0,
        "static-refined model must still learn: {}",
        m.mrr
    );
}

#[test]
fn online_evaluation_runs_for_adaptive_models() {
    let ds = tiny_ds();
    let mut model = LogCl::new(&ds, tiny_cfg());
    model
        .fit(&ds, &TrainOptions::epochs(3))
        .expect("training failed");
    let m = evaluate_online(&mut model, &ds, &ds.test.clone());
    assert!(m.mrr > 0.0 && m.count == 2 * ds.test.len());
}

#[test]
fn training_is_deterministic_given_seed() {
    let ds = tiny_ds();
    let run = || {
        let mut model = LogCl::new(&ds, tiny_cfg());
        let mut opts = TrainOptions::epochs(2);
        opts.select_on_valid = false;
        model.fit(&ds, &opts).expect("training failed");
        evaluate(&mut model, &ds, &ds.test.clone())
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give identical metrics");
}

#[test]
fn checkpoint_round_trip_preserves_predictions() {
    let ds = tiny_ds();
    let mut model = LogCl::new(&ds, tiny_cfg());
    model
        .fit(&ds, &TrainOptions::epochs(2))
        .expect("training failed");
    let dir = std::env::temp_dir().join("logcl-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    logcl::tensor::serialize::save(&model.params, &path).unwrap();

    let before = evaluate(&mut model, &ds, &ds.test.clone());
    let mut restored = LogCl::new(&ds, tiny_cfg());
    logcl::tensor::serialize::load(&restored.params, &path).unwrap();
    let after = evaluate(&mut restored, &ds, &ds.test.clone());
    assert_eq!(before, after, "restored model must score identically");
    std::fs::remove_file(path).ok();
}
