//! Edge-case and failure-injection tests: degenerate datasets, corrupted
//! checkpoints, and boundary conditions the happy-path tests never hit.

use logcl::prelude::*;

fn micro_cfg() -> LogClConfig {
    LogClConfig {
        dim: 8,
        time_bank: 4,
        channels: 3,
        m: 2,
        ..Default::default()
    }
}

/// A minimal hand-built dataset: 2 entities ping-ponging one relation.
fn ping_pong(times: usize) -> TkgDataset {
    let quads: Vec<Quad> = (0..times)
        .map(|t| Quad::new(t % 2, 0, (t + 1) % 2, t))
        .collect();
    TkgDataset::from_quads("pingpong", 2, 1, quads)
}

#[test]
fn model_survives_two_entity_graph() {
    let ds = ping_pong(20);
    let mut model = LogCl::new(&ds, micro_cfg());
    model
        .fit(&ds, &TrainOptions::epochs(3))
        .expect("training failed");
    let m = evaluate(&mut model, &ds, &ds.test.clone());
    assert!(m.mrr > 0.0 && m.mrr <= 100.0);
}

#[test]
fn queries_at_time_zero_have_no_history() {
    // Scoring at t=0 must not read any snapshot or panic.
    let ds = ping_pong(20);
    let snaps = ds.snapshots();
    let history = logcl::tkg::HistoryIndex::new();
    let mut model = LogCl::new(&ds, micro_cfg());
    let q = Quad::new(0, 0, 1, 0);
    let ctx = EvalContext {
        ds: &ds,
        snapshots: &snaps,
        history: &history,
        t: 0,
    };
    let scores = model.score(&ctx, &[q]);
    assert_eq!(scores[0].len(), ds.num_entities);
    assert!(scores[0].iter().all(|v| v.is_finite()));
}

#[test]
fn window_longer_than_history_clips() {
    let ds = ping_pong(20);
    let cfg = LogClConfig {
        m: 50,
        ..micro_cfg()
    }; // window >> timeline
    let mut model = LogCl::new(&ds, cfg);
    model
        .fit(&ds, &TrainOptions::epochs(2))
        .expect("training failed");
    let m = evaluate(&mut model, &ds, &ds.test.clone());
    assert!(m.mrr.is_finite());
}

#[test]
fn empty_query_batches_are_fine() {
    let ds = ping_pong(20);
    let snaps = ds.snapshots();
    let history = logcl::tkg::HistoryIndex::new();
    let mut model = LogCl::new(&ds, micro_cfg());
    let ctx = EvalContext {
        ds: &ds,
        snapshots: &snaps,
        history: &history,
        t: 1,
    };
    assert!(model.score(&ctx, &[]).is_empty());
}

#[test]
fn corrupted_checkpoint_is_rejected_not_loaded() {
    let ds = ping_pong(20);
    let model = LogCl::new(&ds, micro_cfg());
    let dir = std::env::temp_dir().join("logcl-edge");
    std::fs::create_dir_all(&dir).unwrap();

    // Truncated JSON.
    let path = dir.join("truncated.json");
    std::fs::write(&path, "{\"params\": {\"ent.weight\": {\"shape\": [2,").unwrap();
    assert!(logcl::tensor::serialize::load(&model.params, &path).is_err());

    // Wrong-model checkpoint (valid JSON, mismatched parameter set).
    let other = LogCl::new(
        &ds,
        LogClConfig {
            dim: 16,
            ..micro_cfg()
        },
    );
    let path2 = dir.join("wrong.json");
    logcl::tensor::serialize::save(&other.params, &path2).unwrap();
    assert!(
        logcl::tensor::serialize::load(&model.params, &path2).is_err(),
        "dim-16 checkpoint must not load into dim-8 model"
    );
}

#[test]
fn single_timestamp_dataset_trains_without_panic() {
    // Everything lands at t=0: no temporal structure at all.
    let quads: Vec<Quad> = (0..10)
        .map(|i| Quad::new(i % 3, 0, (i + 1) % 3, 0))
        .collect();
    let ds = TkgDataset::from_quads("flat", 3, 1, quads);
    let mut model = LogCl::new(&ds, micro_cfg());
    model
        .fit(&ds, &TrainOptions::epochs(2))
        .expect("training failed"); // train split may be empty — must not panic
}

#[test]
fn self_loop_facts_are_handled() {
    // Facts where subject == object (reflexive events).
    let quads: Vec<Quad> = (0..20).map(|t| Quad::new(t % 3, 0, t % 3, t)).collect();
    let ds = TkgDataset::from_quads("selfloop", 3, 1, quads);
    let mut model = LogCl::new(&ds, micro_cfg());
    model
        .fit(&ds, &TrainOptions::epochs(2))
        .expect("training failed");
    let m = evaluate(&mut model, &ds, &ds.test.clone());
    assert!(m.mrr > 0.0, "reflexive pattern is perfectly predictable");
}

#[test]
fn dense_duplicate_facts_are_deduplicated() {
    let mut quads = Vec::new();
    for t in 0..10 {
        for _ in 0..5 {
            quads.push(Quad::new(0, 0, 1, t)); // 5 copies each
        }
    }
    let ds = TkgDataset::from_quads("dups", 2, 1, quads);
    assert_eq!(ds.train.len() + ds.valid.len() + ds.test.len(), 10);
}

#[test]
fn all_models_handle_unseen_entities_in_queries() {
    // Entity 7 never appears in training; querying it must not panic and
    // must return finite scores.
    let mut quads: Vec<Quad> = (0..30)
        .map(|t| Quad::new(t % 3, 0, (t + 1) % 3, t))
        .collect();
    quads.push(Quad::new(7, 0, 0, 29)); // appears only at the last (test) step
    let ds = TkgDataset::from_quads("unseen", 8, 1, quads);
    for kind in BaselineKind::TABLE3 {
        let mut model = kind.build(&ds, 8, 2, 3, 1);
        model
            .fit(&ds, &TrainOptions::epochs(1))
            .expect("training failed");
        let m = evaluate(model.as_mut(), &ds, &ds.test.clone());
        assert!(m.mrr.is_finite(), "{} broke on unseen entity", kind.name());
    }
}
